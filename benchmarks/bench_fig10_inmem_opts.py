"""Figure 10: in-memory optimisation speedups.

For four applications (biased / unbiased neighbor sampling, forest fire and
layer sampling) on every in-memory graph, compares repeated sampling (the
baseline), updated sampling, bipartite region search, and bipartite region
search plus the strided bitmap.  The paper reports average speedups of 1.7x /
1.17x / 1.4x / 1.7x for bipartite region search on the four applications and
a further small gain from the bitmap.
"""

import numpy as np

from repro.bench import figures


def test_fig10_inmemory_optimisations(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: figures.fig10_inmemory_speedups(scale), rounds=1, iterations=1
    )
    table = report("fig10_inmem_opts", rows)
    assert len(table.rows) == len(scale.in_memory_graphs) * 4

    # Bipartite region search must beat repeated sampling on average, with
    # the biggest gains on the biased applications.
    biased = [r for r in table.rows if r["application"] == "biased_neighbor_sampling"]
    assert float(np.mean([r["speedup_bipartite"] for r in biased])) > 1.1
    overall = float(np.mean([r["speedup_bipartite"] for r in table.rows]))
    assert overall > 1.0
    # The bitmap variant must not regress meaningfully relative to bipartite.
    with_bitmap = float(np.mean([r["speedup_bipartite+bitmap"] for r in table.rows]))
    assert with_bitmap > 0.95 * overall
