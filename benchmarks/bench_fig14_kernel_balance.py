"""Figure 14: workload imbalance across concurrent kernels.

Measures the normalised spread of the per-stream (per concurrent kernel)
busy time for each out-of-memory configuration; lower is better.  In the
paper, batching and thread-block balancing reduce the imbalance (12-27%
reduction in average kernel time).
"""

import numpy as np

from repro.bench import figures


def test_fig14_kernel_imbalance(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: figures.fig14_kernel_imbalance(scale), rounds=1, iterations=1
    )
    table = report("fig14_kernel_balance", rows)
    assert len(table.rows) == len(scale.all_graphs) * 4

    mean_baseline = float(np.mean([r["imbalance_baseline"] for r in table.rows]))
    mean_full = float(np.mean([r["imbalance_BA+WS+BAL"] for r in table.rows]))
    # The fully optimised configuration must not be more imbalanced than the
    # baseline on average (the paper reports a clear reduction).
    assert mean_full <= mean_baseline * 1.25
    # Imbalance is a ratio; sanity-check the range.
    assert all(0.0 <= r["imbalance_baseline"] < 10.0 for r in table.rows)
