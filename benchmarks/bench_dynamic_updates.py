"""Incremental vs full sampling-structure rebuilds under dynamic updates.

Acceptance benchmark for the dynamic-graph path
(:mod:`repro.graph.delta` + :mod:`repro.selection.incremental`): on a
100k-vertex weighted graph mutated at a 1% update rate, patching only the
touched vertices' ITS prefix sums and alias tables must be at least 3x
faster than rebuilding every vertex's structures from scratch -- while
producing bit-identical structures (spot-checked per run).

Also reports the DeltaGraph mutation + compaction cost itself, so the end
to end "apply a batch of updates and be ready to sample" latency is
visible.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_dynamic_updates.py            # full
    PYTHONPATH=src python benchmarks/bench_dynamic_updates.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.graph.delta import DeltaGraph
from repro.graph.generators import powerlaw_graph
from repro.selection.ctps import CTPS
from repro.selection.alias import build_alias_table
from repro.selection.incremental import VertexAliasCache, VertexITSCache

SPEEDUP_FLOOR = 3.0
UPDATE_RATE = 0.01


def mutate(graph, update_rate, seed):
    """Apply ~update_rate * |V| edge updates; returns (delta, touched)."""
    rng = np.random.default_rng(seed)
    delta = DeltaGraph(graph)
    num_updates = max(1, int(graph.num_vertices * update_rate))
    targets = rng.choice(graph.num_vertices, size=num_updates, replace=False)
    t0 = time.perf_counter()
    for v in targets:
        v = int(v)
        neigh = graph.neighbors(v)
        if neigh.size and rng.uniform() < 0.3:
            delta.remove_edge(v, int(neigh[0]))
        else:
            delta.add_edge(v, int(rng.integers(graph.num_vertices)),
                           float(rng.uniform(0.1, 2.0)))
    mutate_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    touched = delta.compact()
    compact_s = time.perf_counter() - t0
    return delta, touched, mutate_s, compact_s


def spot_check(cache, graph, touched, kind, rng):
    """Sampled bit-compat check: touched + random vertices vs fresh builds."""
    probe = list(touched[:16]) + [
        int(v) for v in rng.integers(0, graph.num_vertices, size=16)
    ]
    for v in probe:
        weights = graph.neighbor_weights(int(v))
        if weights.size == 0 or not np.any(weights > 0):
            assert not cache.has(int(v))
            continue
        if kind == "its":
            fresh = CTPS.from_biases(weights)
            assert np.array_equal(cache.ctps(int(v)).boundaries, fresh.boundaries)
        else:
            fresh = build_alias_table(weights)
            assert np.array_equal(cache.table(int(v)).prob, fresh.prob)
            assert np.array_equal(cache.table(int(v)).alias, fresh.alias)


def bench_structure(label, cache_cls, kind, graph, new_graph, touched):
    t0 = time.perf_counter()
    cache = cache_cls.build(graph)
    build_s = time.perf_counter() - t0

    cache.update(graph, np.empty(0, dtype=np.int64))  # warm the update path
    t0 = time.perf_counter()
    rebuilt = cache.update(new_graph, touched)
    update_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cache_cls.build(new_graph)
    full_rebuild_s = time.perf_counter() - t0

    spot_check(cache, new_graph, touched, kind, np.random.default_rng(4))
    speedup = full_rebuild_s / update_s if update_s > 0 else float("inf")
    print(
        f"{label:16s} {build_s:8.2f}s {full_rebuild_s:12.2f}s "
        f"{update_s:11.3f}s {speedup:7.1f}x  ({rebuilt} structures patched)"
    )
    return speedup


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs (no speedup assertion)",
    )
    args = parser.parse_args()

    num_vertices = 5_000 if args.quick else 100_000
    graph = powerlaw_graph(num_vertices, avg_degree=8, seed=1)
    rng = np.random.default_rng(2)
    graph = graph.with_weights(rng.uniform(0.1, 2.0, size=graph.num_edges))

    delta, touched, mutate_s, compact_s = mutate(graph, UPDATE_RATE, seed=3)
    new_graph = delta.base
    print(
        f"graph: {graph}, update rate: {UPDATE_RATE:.0%} "
        f"({touched.size} touched vertices)"
    )
    print(f"mutation buffering: {mutate_s:.3f}s, compaction: {compact_s:.3f}s")
    print(
        f"{'structure':16s} {'build':>9s} {'full rebuild':>13s} "
        f"{'incremental':>12s} {'speedup':>8s}"
    )

    failures = []
    for label, cls, kind in (
        ("ITS prefix sums", VertexITSCache, "its"),
        ("alias tables", VertexAliasCache, "alias"),
    ):
        speedup = bench_structure(label, cls, kind, graph, new_graph, touched)
        if not args.quick and speedup < SPEEDUP_FLOOR:
            failures.append(
                f"{label}: incremental speedup {speedup:.1f}x below the "
                f"{SPEEDUP_FLOOR}x floor"
            )

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("OK" + ("" if args.quick else
                  f": incremental rebuilds >= {SPEEDUP_FLOOR}x full rebuilds"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
