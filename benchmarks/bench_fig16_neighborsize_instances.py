"""Figure 16: sampling time vs NeighborSize and vs the number of instances.

Biased neighbor sampling on every graph, sweeping (a) NeighborSize over
{1, 2, 4, 8} and (b) the instance count.  The paper reports roughly linear
growth of sampling time along both axes, with higher-average-degree graphs
taking longer.
"""

import numpy as np

from repro.bench import figures


def _monotone_fraction(values):
    """Fraction of consecutive pairs that are non-decreasing."""
    pairs = list(zip(values, values[1:]))
    if not pairs:
        return 1.0
    good = sum(1 for a, b in pairs if b >= a * 0.95)
    return good / len(pairs)


def test_fig16_neighborsize_and_instances(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: list(figures.fig16_neighborsize_and_instances(scale)), rounds=1, iterations=1
    )
    table = report("fig16_neighborsize_instances", rows)

    graphs = sorted({r["graph"] for r in table.rows})
    monotone_scores = []
    for graph in graphs:
        ns_times = [
            r["sampling_time_ms"]
            for r in table.rows
            if r["graph"] == graph and r["panel"].startswith("a:")
        ]
        inst_times = [
            r["sampling_time_ms"]
            for r in table.rows
            if r["graph"] == graph and r["panel"].startswith("b:")
        ]
        monotone_scores.append(_monotone_fraction(ns_times))
        monotone_scores.append(_monotone_fraction(inst_times))
    # Sampling time must grow (near-)monotonically with both NeighborSize and
    # the number of instances for the overwhelming majority of graphs.
    assert float(np.mean(monotone_scores)) > 0.85
