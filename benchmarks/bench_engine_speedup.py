"""Batched-engine speedup over the scalar MAIN loop.

Acceptance benchmark for the batched execution engine
(:mod:`repro.engine`): on a 100k-vertex generated graph with 1,000 sampling
instances, the engine must run the MAIN loop at least 5x faster than the
legacy instance-by-instance scalar path while producing bit-identical
samples and cost totals.

Run standalone (it is intentionally not a pytest file -- it measures wall
clock, which the simulated-time benchmarks never do):

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py            # full
    PYTHONPATH=src python benchmarks/bench_engine_speedup.py --quick    # CI smoke

``biased_random_walk`` is reported but excluded from the assertion: its
degree-proportional bias parks most walkers on hub vertices, so both paths
are dominated by the O(degree) CTPS build of a few huge pools and the
engine's batching has little left to amortise.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.graph.generators import powerlaw_graph

#: (algorithm, config overrides, part of the >= 5x assertion)
WORKLOADS = [
    ("simple_random_walk", dict(depth=8), True),
    ("unbiased_neighbor_sampling", dict(depth=2, neighbor_size=4), True),
    ("node2vec", dict(depth=8), True),
    ("biased_random_walk", dict(depth=8), False),
]

SPEEDUP_FLOOR = 5.0


def run_workload(graph, seeds, num_instances, name, overrides):
    info = ALGORITHM_REGISTRY[name]
    config = info.config_factory(seed=1, **overrides)
    timings = {}
    results = {}
    for label, use_engine in (("scalar", False), ("engine", True)):
        best = float("inf")
        for _ in range(2):  # best-of-2 to absorb machine noise
            # use_compiled=False pins the interpreted engine: this benchmark
            # measures the batched engine itself, not the compiled tier on
            # top of it (that is bench_compiled_speedup.py's job).
            sampler = GraphSampler(
                graph, info.program_factory(), config,
                use_engine=use_engine, use_compiled=False,
            )
            start = time.perf_counter()
            results[label] = sampler.run(seeds, num_instances=num_instances)
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    identical = all(
        np.array_equal(a.edges, b.edges)
        for a, b in zip(results["scalar"].samples, results["engine"].samples)
    ) and results["scalar"].cost.as_dict() == results["engine"].cost.as_dict()
    return timings["scalar"], timings["engine"], identical


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs (no speedup assertion)",
    )
    args = parser.parse_args()

    if args.quick:
        num_vertices, num_instances = 5_000, 100
    else:
        num_vertices, num_instances = 100_000, 1_000
    graph = powerlaw_graph(num_vertices, avg_degree=8, seed=1)
    seeds = list(range(0, num_vertices, max(1, num_vertices // 1031)))
    print(f"graph: {graph}, instances: {num_instances}")
    print(f"{'workload':32s} {'scalar':>9s} {'engine':>9s} {'speedup':>8s}  identical")

    failures = []
    for name, overrides, asserted in WORKLOADS:
        t_scalar, t_engine, identical = run_workload(
            graph, seeds, num_instances, name, overrides
        )
        speedup = t_scalar / t_engine if t_engine > 0 else float("inf")
        print(
            f"{name:32s} {t_scalar:8.2f}s {t_engine:8.2f}s {speedup:7.2f}x  {identical}"
        )
        if not identical:
            failures.append(f"{name}: engine result diverged from scalar result")
        if asserted and not args.quick and speedup < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
            )

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("OK" + ("" if args.quick else f": all asserted workloads >= {SPEEDUP_FLOOR}x"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
