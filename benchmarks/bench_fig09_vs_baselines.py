"""Figure 9: C-SAW vs KnightKing (biased random walk) and GraphSAINT (MDRW).

Reports million-SEPS for the KnightKing-like CPU walker engine, the
GraphSAINT-like CPU frontier sampler, and C-SAW on 1 and 6 simulated GPUs,
for every graph.  The paper's headline: C-SAW outperforms both baselines on
every graph (10x / 8.1x on average with one GPU).
"""

import numpy as np

from repro.bench import figures


def test_fig09_vs_knightking_and_graphsaint(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: list(figures.fig09_baseline_comparison(scale)), rounds=1, iterations=1
    )
    table = report("fig09_vs_baselines", rows)

    panel_a = [r for r in table.rows if r["panel"].startswith("a:")]
    panel_b = [r for r in table.rows if r["panel"].startswith("b:")]
    assert len(panel_a) == len(scale.all_graphs)
    assert len(panel_b) == len(scale.all_graphs)

    # C-SAW must beat KnightKing on every graph with a single GPU.
    assert all(r["speedup_1gpu"] > 1.0 for r in panel_a)
    # ... and beat GraphSAINT on every graph.
    assert all(r["speedup_1gpu"] > 1.0 for r in panel_b)
    # Six GPUs must improve on one GPU on average (the paper: 10x -> 14.7x).
    mean_1 = float(np.mean([r["speedup_1gpu"] for r in panel_a]))
    mean_6 = float(np.mean([r["speedup_6gpu"] for r in panel_a]))
    assert mean_6 > mean_1
