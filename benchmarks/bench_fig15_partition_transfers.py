"""Figure 15: partition transfer counts with and without workload-aware scheduling.

Counts host-to-device partition transfers when partitions are scheduled in
active (index) order versus by descending active-vertex count.  The paper
reports 1.1-1.3x fewer transfers with workload-aware scheduling.
"""

import numpy as np

from repro.bench import figures


def test_fig15_partition_transfers(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: figures.fig15_partition_transfers(scale), rounds=1, iterations=1
    )
    table = report("fig15_partition_transfers", rows)
    assert len(table.rows) == len(scale.all_graphs) * 4

    # Workload-aware scheduling never needs more transfers than active-order
    # scheduling, and reduces them on average.
    assert all(
        r["transfers_workload_aware"] <= r["transfers_active"] for r in table.rows
    )
    mean_reduction = float(np.mean([r["reduction"] for r in table.rows]))
    assert mean_reduction >= 1.0
    # Every run needs at least one transfer per scheduled partition.
    assert all(r["transfers_workload_aware"] >= 1 for r in table.rows)
