"""Compiled-tier speedup over the interpreted batched engine.

Acceptance benchmark for the compiled step kernels (:mod:`repro.compiled`):
on a 100k-vertex generated graph with 1,000 sampling instances, **every**
walk workload below must run >= 3x faster on the compiled tier (best
available backend) than on the interpreted engine, the pure-numpy backend
must never be slower than interpretation, and every compiled run must be
bit-identical to its interpreted twin (samples, iteration counts and cost
totals).  The out-of-memory and sharded routes are measured too: their
compiled drains must plan ``step_tier=compiled`` and match their
interpreted twins bit for bit.

Run standalone (it is intentionally not a pytest file -- it measures wall
clock, which the simulated-time benchmarks never do):

    PYTHONPATH=src python benchmarks/bench_compiled_speedup.py            # full
    PYTHONPATH=src python benchmarks/bench_compiled_speedup.py --quick    # CI smoke

The uniform-bias walks win by skipping neighbor materialisation and the
segmented CTPS build entirely (degrees + closed-form charges + one fused
binary search per draw).  The non-uniform kinds win through per-vertex
structure reuse (:mod:`repro.compiled.structures`): the flat bias table and
segmented CTPS prefix are built once per (graph, bias kind) and reused
across every depth step, request and route, so their per-step cost
collapses to the fused SELECT itself.

Full runs append machine-readable rows to
``benchmarks/results/BENCH_planner.json`` (keyed ``(bench, route)``), which
``benchmarks/gate.py`` compares against the saved baselines.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.compiled import available_backends, force_backend
from repro.graph.generators import powerlaw_graph

#: (algorithm, config overrides); every workload carries the >= 3x assertion
#: now that structure reuse covers the non-uniform bias kinds.
WORKLOADS = [
    ("simple_random_walk", dict(depth=8)),
    ("deepwalk", dict(depth=8)),
    ("biased_random_walk", dict(depth=8)),
    ("node2vec", dict(depth=8)),
]

SPEEDUP_FLOOR = 3.0

#: Routes measured beyond the in-memory engine (both on biased_random_walk,
#: the structure-reuse showcase).  Held to bit-identity and a planned
#: compiled step tier, and recorded, but not to the 3x floor: both routes
#: spend real time in partition scheduling / walker migration that the
#: compiled tier does not touch.
ROUTE_ALGORITHM = "biased_random_walk"


def _identical(a, b) -> bool:
    return (
        a.cost.as_dict() == b.cost.as_dict()
        and a.iteration_counts == b.iteration_counts
        and all(
            np.array_equal(x.edges, y.edges) and np.array_equal(x.seeds, y.seeds)
            for x, y in zip(a.samples, b.samples)
        )
    )


def _time_run(graph, seeds, num_instances, info, config, *, use_compiled):
    best, result = float("inf"), None
    for _ in range(2):  # best-of-2 to absorb machine noise
        sampler = GraphSampler(
            graph, info.program_factory(), config, use_compiled=use_compiled
        )
        start = time.perf_counter()
        result = sampler.run(seeds, num_instances=num_instances)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_workload(graph, seeds, num_instances, name, overrides):
    info = ALGORITHM_REGISTRY[name]
    config = info.config_factory(seed=1, **overrides)
    t_interp, r_interp = _time_run(
        graph, seeds, num_instances, info, config, use_compiled=False
    )
    timings = {}
    identical = True
    for backend in available_backends():
        with force_backend(backend):
            t, r = _time_run(
                graph, seeds, num_instances, info, config, use_compiled=True
            )
        timings[backend] = t
        identical = identical and _identical(r_interp, r)
    return t_interp, timings, identical


# --------------------------------------------------------------------------- #
# Route coverage: the compiled kernel inside the OOM and sharded drains
# --------------------------------------------------------------------------- #

def _best_of(runner, repeats=2):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_oom_route(graph, seeds, num_instances, overrides):
    """Interpreted vs compiled partition drains of the OOM scheduler."""
    from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler

    info = ALGORITHM_REGISTRY[ROUTE_ALGORITHM]
    config = info.config_factory(seed=1, **overrides)
    oom = OutOfMemoryConfig.fully_optimized(num_partitions=3)

    def one(use_compiled):
        sampler = OutOfMemorySampler(
            graph, info.program_factory(), config, oom,
            use_compiled=use_compiled,
        )
        return sampler, _best_of(
            lambda: sampler.run(seeds, num_instances=num_instances)
        )

    _, (t_interp, r_interp) = one(False)
    compiled_sampler, (t_comp, r_comp) = one(None)
    plan = compiled_sampler.plan(seeds, num_instances=num_instances)
    assert plan.step_tier == "compiled", plan.compiled_fallback
    identical = _identical(r_interp.sample, r_comp.sample)
    return t_interp, t_comp, identical


def run_sharded_route(graph, seeds, num_instances, overrides):
    """Interpreted vs compiled per-shard engines of the sharded cluster."""
    from repro.distributed import ShardedSamplingCluster

    info = ALGORITHM_REGISTRY[ROUTE_ALGORITHM]
    config = info.config_factory(seed=1, **overrides)

    def one(disable):
        previous = os.environ.get("REPRO_COMPILED")
        if disable:
            os.environ["REPRO_COMPILED"] = "0"
        try:
            cluster = ShardedSamplingCluster(
                graph, ROUTE_ALGORITHM, config, num_shards=3
            )
            if not disable:
                plan = cluster.plan(seeds, num_instances=num_instances)
                assert plan.step_tier == "compiled", plan.compiled_fallback
            return _best_of(
                lambda: cluster.run(seeds, num_instances=num_instances)
            )
        finally:
            if disable:
                if previous is None:
                    os.environ.pop("REPRO_COMPILED", None)
                else:
                    os.environ["REPRO_COMPILED"] = previous

    t_interp, r_interp = one(disable=True)
    t_comp, r_comp = one(disable=False)
    identical = _identical(r_interp.result, r_comp.result)
    return t_interp, t_comp, identical


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs (no speedup assertion, "
             "no record keeping)",
    )
    args = parser.parse_args()

    if args.quick:
        num_vertices, num_instances = 5_000, 100
        route_instances = 30
    else:
        num_vertices, num_instances = 100_000, 1_000
        route_instances = 200
    graph = powerlaw_graph(num_vertices, avg_degree=8, seed=1)
    seeds = list(range(0, num_vertices, max(1, num_vertices // 1031)))
    backends = available_backends()
    print(f"graph: {graph}, instances: {num_instances}, backends: {backends}")
    header = f"{'workload':24s} {'interp':>9s}"
    for backend in backends:
        header += f" {backend:>9s}"
    print(header + f" {'best':>8s}  identical")

    failures = []
    records = []
    for name, overrides in WORKLOADS:
        t_interp, timings, identical = run_workload(
            graph, seeds, num_instances, name, overrides
        )
        t_best = min(timings.values())
        speedup = t_interp / t_best if t_best > 0 else float("inf")
        line = f"{name:24s} {t_interp:8.2f}s"
        for backend in backends:
            line += f" {timings[backend]:8.2f}s"
        print(line + f" {speedup:7.2f}x  {identical}")
        if not identical:
            failures.append(f"{name}: compiled result diverged from interpreted")
        if not args.quick:
            if speedup < SPEEDUP_FLOOR:
                failures.append(
                    f"{name}: compiled speedup {speedup:.2f}x below the "
                    f"{SPEEDUP_FLOOR}x floor"
                )
            if timings["numpy"] > t_interp * 1.10:
                failures.append(
                    f"{name}: numpy backend slower than interpretation "
                    f"({timings['numpy']:.2f}s vs {t_interp:.2f}s)"
                )
            records.append({
                "bench": f"compiled_{name}",
                "route": "in_memory",
                "wall_time_s": t_best,
                "interp_time_s": t_interp,
                "speedup": speedup,
                "identical": identical,
                "num_instances": num_instances,
            })

    route_seeds = seeds[:route_instances]
    for route, runner in (
        ("out_of_memory", run_oom_route),
        ("sharded", run_sharded_route),
    ):
        t_interp, t_comp, identical = runner(
            graph, route_seeds, route_instances, dict(depth=8)
        )
        speedup = t_interp / t_comp if t_comp > 0 else float("inf")
        label = f"{ROUTE_ALGORITHM}/{route}"
        print(
            f"{label:24s} {t_interp:8.2f}s {t_comp:8.2f}s"
            + " " * 10 * (len(backends) - 1)
            + f" {speedup:7.2f}x  {identical}"
        )
        if not identical:
            failures.append(
                f"{label}: compiled result diverged from interpreted"
            )
        if not args.quick:
            if t_comp > t_interp * 1.10:
                failures.append(
                    f"{label}: compiled drain slower than interpretation "
                    f"({t_comp:.2f}s vs {t_interp:.2f}s)"
                )
            records.append({
                "bench": f"compiled_{ROUTE_ALGORITHM}",
                "route": route,
                "wall_time_s": t_comp,
                "interp_time_s": t_interp,
                "speedup": speedup,
                "identical": identical,
                "num_instances": route_instances,
            })

    if records:
        # Running as a script puts benchmarks/ on sys.path, so the pytest
        # conftest's merge helper is importable directly.
        from conftest import RESULTS_DIR, write_planner_records

        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = write_planner_records(RESULTS_DIR, records)
        print(f"recorded {len(records)} rows -> {path}")

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    if not args.quick:
        worst = min(r["speedup"] for r in records if r["route"] == "in_memory")
        print(f"OK: every asserted workload >= {SPEEDUP_FLOOR}x "
              f"(worst {worst:.2f}x)")
    else:
        print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
