"""Compiled-tier speedup over the interpreted batched engine.

Acceptance benchmark for the compiled step kernels (:mod:`repro.compiled`):
on a 100k-vertex generated graph with 1,000 sampling instances, at least one
walk workload must run >= 3x faster on the compiled tier (best available
backend) than on the interpreted engine, the pure-numpy backend must never
be slower than interpretation, and every compiled run must be bit-identical
to its interpreted twin (samples, iteration counts and cost totals).

Run standalone (it is intentionally not a pytest file -- it measures wall
clock, which the simulated-time benchmarks never do):

    PYTHONPATH=src python benchmarks/bench_compiled_speedup.py            # full
    PYTHONPATH=src python benchmarks/bench_compiled_speedup.py --quick    # CI smoke

The uniform-bias walks carry the assertion: their compiled kernel skips
neighbor materialisation and the segmented CTPS build entirely (degrees +
closed-form charges + one fused binary search per draw).  The non-uniform
kinds reuse the segmented numpy SELECT verbatim, so their win is limited to
hook-dispatch and warp-bookkeeping removal -- they are reported, and held to
"no slower", but not to the 3x floor.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.compiled import available_backends, force_backend
from repro.graph.generators import powerlaw_graph

#: (algorithm, config overrides, part of the >= 3x assertion)
WORKLOADS = [
    ("simple_random_walk", dict(depth=8), True),
    ("deepwalk", dict(depth=8), True),
    ("biased_random_walk", dict(depth=8), False),
    ("node2vec", dict(depth=8), False),
]

SPEEDUP_FLOOR = 3.0


def _identical(a, b) -> bool:
    return (
        a.cost.as_dict() == b.cost.as_dict()
        and a.iteration_counts == b.iteration_counts
        and all(
            np.array_equal(x.edges, y.edges) and np.array_equal(x.seeds, y.seeds)
            for x, y in zip(a.samples, b.samples)
        )
    )


def _time_run(graph, seeds, num_instances, info, config, *, use_compiled):
    best, result = float("inf"), None
    for _ in range(2):  # best-of-2 to absorb machine noise
        sampler = GraphSampler(
            graph, info.program_factory(), config, use_compiled=use_compiled
        )
        start = time.perf_counter()
        result = sampler.run(seeds, num_instances=num_instances)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_workload(graph, seeds, num_instances, name, overrides):
    info = ALGORITHM_REGISTRY[name]
    config = info.config_factory(seed=1, **overrides)
    t_interp, r_interp = _time_run(
        graph, seeds, num_instances, info, config, use_compiled=False
    )
    timings = {}
    identical = True
    for backend in available_backends():
        with force_backend(backend):
            t, r = _time_run(
                graph, seeds, num_instances, info, config, use_compiled=True
            )
        timings[backend] = t
        identical = identical and _identical(r_interp, r)
    return t_interp, timings, identical


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs (no speedup assertion)",
    )
    args = parser.parse_args()

    if args.quick:
        num_vertices, num_instances = 5_000, 100
    else:
        num_vertices, num_instances = 100_000, 1_000
    graph = powerlaw_graph(num_vertices, avg_degree=8, seed=1)
    seeds = list(range(0, num_vertices, max(1, num_vertices // 1031)))
    backends = available_backends()
    print(f"graph: {graph}, instances: {num_instances}, backends: {backends}")
    header = f"{'workload':24s} {'interp':>9s}"
    for backend in backends:
        header += f" {backend:>9s}"
    print(header + f" {'best':>8s}  identical")

    failures = []
    best_asserted_speedup = 0.0
    for name, overrides, asserted in WORKLOADS:
        t_interp, timings, identical = run_workload(
            graph, seeds, num_instances, name, overrides
        )
        t_best = min(timings.values())
        speedup = t_interp / t_best if t_best > 0 else float("inf")
        line = f"{name:24s} {t_interp:8.2f}s"
        for backend in backends:
            line += f" {timings[backend]:8.2f}s"
        print(line + f" {speedup:7.2f}x  {identical}")
        if not identical:
            failures.append(f"{name}: compiled result diverged from interpreted")
        if asserted:
            best_asserted_speedup = max(best_asserted_speedup, speedup)
        if not args.quick and timings["numpy"] > t_interp * 1.10:
            failures.append(
                f"{name}: numpy backend slower than interpretation "
                f"({timings['numpy']:.2f}s vs {t_interp:.2f}s)"
            )
    if not args.quick and best_asserted_speedup < SPEEDUP_FLOOR:
        failures.append(
            f"no asserted workload reached the {SPEEDUP_FLOOR}x floor "
            f"(best {best_asserted_speedup:.2f}x)"
        )

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("OK" + ("" if args.quick else
                  f": best asserted speedup {best_asserted_speedup:.2f}x"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
