"""Table I: the sampling / random-walk design space expressed through the API.

Regenerates the paper's Table I by running every registered algorithm through
the C-SAW programming interface on the same graph and reporting its position
in the design space (bias criterion x NeighborSize shape) together with the
number of edges it sampled -- demonstrating that the whole space is
expressible with the three bias functions.
"""

from repro.bench import figures


def test_table1_design_space(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: figures.table1_design_space(scale), rounds=1, iterations=1
    )
    table = report("table1_design_space", rows)
    # Every algorithm of Table I must be expressible and actually sample edges.
    assert len(table.rows) >= 13
    assert all(row["sampled_edges"] > 0 for row in table.rows)
    biases = {row["bias"] for row in table.rows}
    assert biases == {"unbiased", "static", "dynamic"}
