"""CI perf-regression gate: compare benchmark results against saved baselines.

The planner benchmarks record machine-readable rows (route, wall time,
predicted vs actual cost) into ``benchmarks/results/BENCH_planner.json``;
this gate compares a fresh run against the baselines persisted under
``benchmarks/baselines/`` and **fails** (exit code 1) when any record's wall
time regressed by more than the tolerance (default 25%).

Records are keyed by ``(bench, route)``.  Records present only in the
current results (new benchmarks) or only in the baseline (partial runs) are
reported but never fail the gate -- a smoke run of one benchmark must not
trip on the records it did not produce.

When ``BENCH_telemetry.json`` snapshots exist next to the results (written
by the conftest from ``latencies_s`` benchmark records), the per-route
latency percentiles are gated too: a record whose key exists in **both**
the baseline and the current snapshot fails the gate when its p50 or p99
regressed beyond the latency tolerance (default 50% -- percentiles of
five-run samples are noisier than single wall times, so the band is
wider).  One-sided records stay report-only, and ``--update`` persists the
current snapshot as the new latency baseline alongside the wall-time one.

Usage::

    PYTHONPATH=src python benchmarks/gate.py                 # compare
    PYTHONPATH=src python benchmarks/gate.py --tolerance 0.4 # looser gate
    PYTHONPATH=src python benchmarks/gate.py --latency-tolerance 1.0
    PYTHONPATH=src python benchmarks/gate.py --update        # accept current

Exit codes: 0 within tolerance, 1 regression detected, 2 usage error
(missing/unreadable files).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict, List, Tuple

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_RESULTS = BENCH_DIR / "results" / "BENCH_planner.json"
DEFAULT_BASELINE = BENCH_DIR / "baselines" / "BENCH_planner.json"
DEFAULT_TOLERANCE = 0.25
DEFAULT_LATENCY_TOLERANCE = 0.5
DEFAULT_METRIC = "wall_time_s"
TELEMETRY_JSON = "BENCH_telemetry.json"
LATENCY_METRICS = ("p50_s", "p99_s")

Key = Tuple[str, str]


def load_records(path: Path) -> Dict[Key, dict]:
    """Index a benchmark-results JSON list by ``(bench, route)``."""
    rows = json.loads(path.read_text())
    return {(str(r.get("bench")), str(r.get("route"))): r for r in rows}


def compare(
    current: Dict[Key, dict],
    baseline: Dict[Key, dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    metric: str = DEFAULT_METRIC,
) -> Tuple[List[str], List[str]]:
    """Trend lines plus the regressions exceeding the tolerance."""
    lines: List[str] = []
    regressions: List[str] = []
    for key in sorted(set(current) | set(baseline), key=str):
        bench, route = key
        label = f"{bench}/{route}"
        cur = current.get(key)
        base = baseline.get(key)
        if cur is None:
            lines.append(f"  {label:44s} baseline only (not in this run)")
            continue
        if base is None:
            lines.append(f"  {label:44s} new record (no baseline)")
            continue
        cur_v = float(cur.get(metric, 0.0))
        base_v = float(base.get(metric, 0.0))
        if base_v <= 0.0:
            lines.append(f"  {label:44s} baseline {metric} <= 0, skipped")
            continue
        ratio = cur_v / base_v
        delta = (ratio - 1.0) * 100.0
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            regressions.append(
                f"{label}: {metric} {cur_v:.4g}s vs baseline {base_v:.4g}s "
                f"({delta:+.1f}% > +{tolerance * 100:.0f}% tolerance)"
            )
        lines.append(
            f"  {label:44s} {base_v:10.4g}s -> {cur_v:10.4g}s "
            f"({delta:+7.1f}%)  {verdict}"
        )
    return lines, regressions


def load_telemetry(path: Path) -> Dict[Key, dict]:
    """Index a telemetry-snapshot JSON list by ``(bench, route)``; {} when
    the file is absent or unreadable (the snapshots are report-only)."""
    try:
        rows = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return {(str(r.get("bench")), str(r.get("route"))): r for r in rows}


def compare_telemetry(
    current: Dict[Key, dict],
    baseline: Dict[Key, dict],
    *,
    tolerance: float = DEFAULT_LATENCY_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Latency-percentile trends plus regressions beyond the tolerance.

    Only records present on both sides gate: a fresh benchmark (no
    baseline yet) or a partial run (baseline only) is reported, never
    failed -- the baseline appears once ``--update`` persists a snapshot.
    """
    lines: List[str] = []
    regressions: List[str] = []
    for key in sorted(set(current) | set(baseline), key=str):
        bench, route = key
        cur = current.get(key)
        base = baseline.get(key)
        label = f"{bench}/{route}"
        if cur is None:
            lines.append(f"  {label:44s} baseline only (not in this run)")
            continue
        p50 = float(cur.get("p50_s", 0.0))
        p99 = float(cur.get("p99_s", 0.0))
        if base is None:
            lines.append(
                f"  {label:44s} p50 {p50:10.4g}s  p99 {p99:10.4g}s  (new)"
            )
            continue
        verdict = "ok"
        for metric in LATENCY_METRICS:
            cur_v = float(cur.get(metric, 0.0))
            base_v = float(base.get(metric, 0.0))
            if base_v <= 0.0:
                continue
            ratio = cur_v / base_v
            if ratio > 1.0 + tolerance:
                verdict = "REGRESSION"
                regressions.append(
                    f"{label}: {metric} {cur_v:.4g}s vs baseline "
                    f"{base_v:.4g}s ({(ratio - 1.0) * 100:+.1f}% > "
                    f"+{tolerance * 100:.0f}% latency tolerance)"
                )
        lines.append(
            f"  {label:44s} p50 {float(base.get('p50_s', 0.0)):10.4g}s "
            f"-> {p50:10.4g}s  p99 {float(base.get('p99_s', 0.0)):10.4g}s "
            f"-> {p99:10.4g}s  {verdict}"
        )
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results", type=Path, default=DEFAULT_RESULTS,
        help="fresh benchmark results (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="saved baseline to gate against (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional wall-time increase (default: %(default)s)",
    )
    parser.add_argument(
        "--metric", default=DEFAULT_METRIC,
        help="record field to compare (default: %(default)s)",
    )
    parser.add_argument(
        "--latency-tolerance", type=float,
        default=DEFAULT_LATENCY_TOLERANCE,
        help="allowed fractional p50/p99 increase for telemetry latency "
             "snapshots (default: %(default)s)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="accept the current results as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    if not args.results.is_file():
        print(f"gate: results file not found: {args.results}", file=sys.stderr)
        return 2
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.results, args.baseline)
        telemetry_results = args.results.parent / TELEMETRY_JSON
        if telemetry_results.is_file():
            shutil.copyfile(
                telemetry_results, args.baseline.parent / TELEMETRY_JSON
            )
        print(f"gate: baseline updated from {args.results}")
        return 0
    if not args.baseline.is_file():
        print(f"gate: baseline file not found: {args.baseline}", file=sys.stderr)
        return 2
    try:
        current = load_records(args.results)
        baseline = load_records(args.baseline)
    except (json.JSONDecodeError, OSError) as exc:
        print(f"gate: cannot read records: {exc}", file=sys.stderr)
        return 2

    print(
        f"perf gate: {args.metric}, tolerance +{args.tolerance * 100:.0f}% "
        f"({args.results.name} vs baselines/{args.baseline.name})"
    )
    lines, regressions = compare(
        current, baseline, tolerance=args.tolerance, metric=args.metric
    )
    for line in lines:
        print(line)
    current_telemetry = load_telemetry(args.results.parent / TELEMETRY_JSON)
    baseline_telemetry = load_telemetry(args.baseline.parent / TELEMETRY_JSON)
    if current_telemetry or baseline_telemetry:
        print(
            f"telemetry latency percentiles (p50/p99, tolerance "
            f"+{args.latency_tolerance * 100:.0f}%):"
        )
        lat_lines, lat_regressions = compare_telemetry(
            current_telemetry, baseline_telemetry,
            tolerance=args.latency_tolerance,
        )
        for line in lat_lines:
            print(line)
        regressions.extend(lat_regressions)
    if regressions:
        for regression in regressions:
            print("FAIL:", regression)
        return 1
    print("OK: no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
