"""Sampling-service throughput/latency: coalescing vs one-request-per-run.

Closed-loop clients (each thread issues its next request only after the
previous one resolves) hammer a :class:`~repro.service.server.
SamplingService` for a fixed number of requests, sweeping the client count
and worker count.  Two service configurations are compared:

* **coalesced** -- a batching window groups compatible concurrent requests
  into one multi-instance engine run;
* **solo** -- ``batch_window_s=0, max_batch_requests=1``: every request runs
  alone (the one-request-per-run baseline a naive deployment would use).

Reported per cell: requests/sec plus p50/p99 latency.  Acceptance: with >= 4
concurrent clients, coalescing must beat one-request-per-run throughput --
and at 8 clients by >= 2x.

Run standalone (wall clock, intentionally not a pytest file):

    PYTHONPATH=src python benchmarks/bench_service_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.generators import powerlaw_graph
from repro.service import SamplingClient, SamplingService

ALGORITHM = "simple_random_walk"
DEPTH = 8
INSTANCES_PER_REQUEST = 8


def run_cell(
    graph,
    *,
    num_clients: int,
    num_workers: int,
    requests_per_client: int,
    coalesce: bool,
    mode: str,
) -> Tuple[float, float, float]:
    """One configuration cell; returns (requests/sec, p50 ms, p99 ms)."""
    service = SamplingService(
        num_workers=num_workers,
        mode=mode,
        batch_window_s=0.004 if coalesce else 0.0,
        max_batch_requests=256 if coalesce else 1,
        memory_budget_bytes=None,
    )
    try:
        service.load_graph("bench", graph)
        client = SamplingClient(service)
        latencies: List[List[float]] = [[] for _ in range(num_clients)]
        barrier = threading.Barrier(num_clients + 1)

        def client_loop(rank: int) -> None:
            rng = np.random.default_rng(rank)
            barrier.wait()
            for _ in range(requests_per_client):
                seeds = rng.integers(0, graph.num_vertices, INSTANCES_PER_REQUEST)
                start = time.perf_counter()
                # One shared RNG seed across clients: requests stay
                # config-compatible, so concurrent arrivals can coalesce.
                client.sample("bench", ALGORITHM, seeds.tolist(),
                              depth=DEPTH, seed=7, timeout=120)
                latencies[rank].append(time.perf_counter() - start)

        threads = [
            threading.Thread(target=client_loop, args=(rank,))
            for rank in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    finally:
        service.shutdown()
    flat = np.asarray([l for per in latencies for l in per])
    total = num_clients * requests_per_client
    return (
        total / elapsed,
        float(np.percentile(flat, 50)) * 1e3,
        float(np.percentile(flat, 99)) * 1e3,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs (relaxed assertion)")
    parser.add_argument("--mode", default="thread", choices=["thread", "process"],
                        help="worker pool mode (thread isolates the coalescing "
                             "effect; process adds spawn/IPC overhead)")
    args = parser.parse_args()

    if args.quick:
        num_vertices, requests_per_client = 5_000, 8
        client_counts, worker_counts = [4, 8], [1]
    else:
        num_vertices, requests_per_client = 50_000, 25
        client_counts, worker_counts = [1, 4, 8], [1, 2]

    graph = powerlaw_graph(num_vertices, avg_degree=8, seed=1)
    print(f"graph: {graph}, {ALGORITHM} depth={DEPTH} "
          f"x{INSTANCES_PER_REQUEST} instances/request, mode={args.mode}")
    header = (f"{'clients':>7s} {'workers':>7s} | "
              f"{'solo req/s':>10s} {'p50ms':>7s} {'p99ms':>7s} | "
              f"{'coal req/s':>10s} {'p50ms':>7s} {'p99ms':>7s} | {'gain':>6s}")
    print(header)

    cell_gains: Dict[Tuple[int, int], float] = {}
    for num_workers in worker_counts:
        for num_clients in client_counts:
            solo = run_cell(
                graph, num_clients=num_clients, num_workers=num_workers,
                requests_per_client=requests_per_client, coalesce=False,
                mode=args.mode,
            )
            coal = run_cell(
                graph, num_clients=num_clients, num_workers=num_workers,
                requests_per_client=requests_per_client, coalesce=True,
                mode=args.mode,
            )
            gain = coal[0] / solo[0] if solo[0] > 0 else float("inf")
            cell_gains[(num_clients, num_workers)] = gain
            print(f"{num_clients:7d} {num_workers:7d} | "
                  f"{solo[0]:10.1f} {solo[1]:7.1f} {solo[2]:7.1f} | "
                  f"{coal[0]:10.1f} {coal[1]:7.1f} {coal[2]:7.1f} | "
                  f"{gain:5.2f}x")

    failures = []
    for (num_clients, num_workers), gain in sorted(cell_gains.items()):
        if num_clients >= 4 and gain <= 1.0:
            failures.append(
                f"{num_clients} clients / {num_workers} workers: "
                f"coalescing gain {gain:.2f}x <= 1x"
            )
    eight_client = [g for (c, _), g in cell_gains.items() if c == 8]
    if not args.quick and eight_client and max(eight_client) < 2.0:
        failures.append(
            f"8 clients: best coalescing gain {max(eight_client):.2f}x below 2x"
        )

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("OK: coalescing beats one-request-per-run in every >=4-client cell"
          + ("" if args.quick else "; >=2x in the best 8-client cell"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
