"""Planner overhead and predicted-vs-actual cost trajectory.

Acceptance benchmark for the unified execution planner: constructing an
:class:`~repro.planner.plan.ExecutionPlan` (seed validation, routing,
layout sizing, cost prediction) must cost **less than 5%** of actually
executing a 1,000-instance run -- planning is a constant-time decision, not
a second pass over the workload.

The run also records one machine-readable row per route (in-memory,
out-of-memory, sharded) into ``benchmarks/results/BENCH_planner.json`` via
the conftest plumbing: route, wall time, plan-construction time and the
cost model's predicted simulated time against the executed cost's actual
simulated time, so the estimate's drift is tracked across PRs.

Run it explicitly (wall-clock benchmarks are not part of the default
pytest collection)::

    PYTHONPATH=src python -m pytest benchmarks/bench_planner_overhead.py -q
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms.registry import get_algorithm
from repro.api.sampler import GraphSampler
from repro.distributed import ShardedSamplingCluster
from repro.gpusim.device import V100_SPEC
from repro.graph.generators import powerlaw_graph
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler

OVERHEAD_CEILING = 0.05
NUM_VERTICES = 20_000
NUM_INSTANCES = 1_000


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(NUM_VERTICES, avg_degree=8, seed=1)


@pytest.fixture(scope="module")
def seeds(graph):
    return list(range(0, NUM_VERTICES, NUM_VERTICES // NUM_INSTANCES))[:NUM_INSTANCES]


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_plan_construction_under_5_percent(graph, seeds, report, planner_record):
    info = get_algorithm("deepwalk")
    config = info.config_factory(seed=1, depth=8)
    sampler = GraphSampler(graph, info.program_factory(), config)

    result, run_wall = _timed(lambda: sampler.run(seeds))
    assert result.total_sampled_edges > 0

    # Best-of-5 plan construction (includes instance building, plan-time
    # seed validation, routing and the closed-form cost prediction).
    plan_wall = min(_timed(lambda: sampler.plan(seeds))[1] for _ in range(5))
    execution_plan = sampler.plan(seeds)
    ratio = plan_wall / run_wall

    rows = [{
        "route": execution_plan.route,
        "instances": NUM_INSTANCES,
        "run_wall_s": run_wall,
        "plan_wall_s": plan_wall,
        "overhead_fraction": ratio,
        "predicted_time_s": execution_plan.predicted_time_s,
        "actual_time_s": result.cost.simulated_time(V100_SPEC),
    }]
    report("planner_overhead", rows)
    planner_record(
        "planner_overhead",
        route=execution_plan.route,
        num_instances=NUM_INSTANCES,
        wall_time_s=run_wall,
        plan_time_s=plan_wall,
        overhead_fraction=ratio,
        predicted_time_s=execution_plan.predicted_time_s,
        actual_time_s=result.cost.simulated_time(V100_SPEC),
        predicted_sampled_edges=execution_plan.predicted_cost.sampled_edges,
        actual_sampled_edges=result.total_sampled_edges,
    )
    assert ratio < OVERHEAD_CEILING, (
        f"plan construction took {ratio:.1%} of a {NUM_INSTANCES}-instance "
        f"run (ceiling {OVERHEAD_CEILING:.0%})"
    )


def test_route_trajectory_records(graph, planner_record):
    """One predicted-vs-actual record per routed tier (small workloads)."""
    seeds = list(range(0, NUM_VERTICES, NUM_VERTICES // 50))[:50]
    info = get_algorithm("deepwalk")
    config = info.config_factory(seed=3, depth=6)

    def record(route, plan, wall, cost, sampled_edges):
        planner_record(
            "planner_routes",
            route=route,
            num_instances=len(seeds),
            wall_time_s=wall,
            predicted_time_s=plan.predicted_time_s,
            actual_time_s=cost.simulated_time(V100_SPEC),
            predicted_sampled_edges=plan.predicted_cost.sampled_edges,
            actual_sampled_edges=sampled_edges,
        )

    sampler = GraphSampler(graph, info.program_factory(), config)
    result, wall = _timed(lambda: sampler.run(seeds))
    record("in_memory", sampler.plan(seeds), wall, result.cost,
           result.total_sampled_edges)

    oom = OutOfMemorySampler(
        graph, info.program_factory(), config,
        OutOfMemoryConfig.fully_optimized(num_partitions=4),
    )
    oom_result, wall = _timed(lambda: oom.run(seeds))
    record("out_of_memory", oom.plan(seeds), wall, oom_result.cost,
           oom_result.sample.total_sampled_edges)

    cluster = ShardedSamplingCluster(graph, "deepwalk", config, num_shards=4)
    cluster_result, wall = _timed(lambda: cluster.run(seeds))
    record("sharded", cluster.plan(seeds), wall, cluster_result.result.cost,
           cluster_result.result.total_sampled_edges)
