"""Figure 17: multi-GPU scalability.

Biased neighbor sampling scaled from 1 to 6 simulated GPUs for a small and a
large instance count.  The paper reports 1.8x (2,000 instances) and 5.2x
(8,000 instances) speedup on 6 GPUs: the small job cannot saturate six
devices, the large one nearly scales linearly.
"""

import numpy as np

from repro.bench import figures


def test_fig17_multi_gpu_scaling(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: list(figures.fig17_multi_gpu_scaling(scale)), rounds=1, iterations=1
    )
    table = report("fig17_scalability", rows)

    small, large = min(scale.scaling_instances), max(scale.scaling_instances)
    max_gpus = max(scale.gpu_counts)
    small_speedups = [
        r["speedup"] for r in table.rows if r["instances"] == small and r["gpus"] == max_gpus
    ]
    large_speedups = [
        r["speedup"] for r in table.rows if r["instances"] == large and r["gpus"] == max_gpus
    ]
    # More instances -> better scaling (the paper's 1.8x vs 5.2x contrast).
    assert float(np.mean(large_speedups)) > float(np.mean(small_speedups))
    # The large job must show real multi-GPU benefit.
    assert float(np.mean(large_speedups)) > 1.5
    # Speedup never exceeds the GPU count (sanity).
    assert all(r["speedup"] <= max(scale.gpu_counts) + 1e-6 for r in table.rows)
