"""Gateway benchmarks: result-cache speedup and tenant QoS isolation.

Two acceptance checks for the multi-tenant front door:

* **cache** -- a closed-loop client replays a 90%-repeat workload (90% of
  requests re-issue one of a small hot set, 10% are unique) against the same
  service twice: result cache on vs off.  Acceptance: mean latency improves
  by >= 5x with the cache on (hits skip planning, dispatch and execution
  entirely).
* **qos** -- a quota-limited greedy tenant hammers the service while a
  polite unlimited tenant runs its solo workload.  The greedy tenant's
  overflow is shed at the door (before any compute), so the polite tenant's
  mean latency must stay within 10% of its solo baseline (50% under
  ``--quick``, where per-request times are microscopic and noisy).

Run standalone (wall clock, intentionally not a pytest file):

    PYTHONPATH=src python benchmarks/bench_gateway_cache.py            # full
    PYTHONPATH=src python benchmarks/bench_gateway_cache.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import List, Tuple

import numpy as np

from repro.graph.generators import powerlaw_graph
from repro.service import (
    AdmissionRejected,
    SamplingClient,
    SamplingService,
    TenantQuota,
)

ALGORITHM = "simple_random_walk"
DEPTH = 8
INSTANCES_PER_REQUEST = 8
HOT_SET = 10  # distinct requests the repeats draw from


def make_schedule(num_requests: int, num_vertices: int,
                  repeat_fraction: float) -> List[Tuple[int, ...]]:
    """A seed-tuple per request; ``repeat_fraction`` re-issue a hot one."""
    rng = np.random.default_rng(42)
    hot = [tuple(rng.integers(0, num_vertices, INSTANCES_PER_REQUEST).tolist())
           for _ in range(HOT_SET)]
    schedule = []
    for _ in range(num_requests):
        if rng.random() < repeat_fraction:
            schedule.append(hot[int(rng.integers(0, HOT_SET))])
        else:
            schedule.append(tuple(
                rng.integers(0, num_vertices, INSTANCES_PER_REQUEST).tolist()
            ))
    return schedule


def run_cache_cell(graph, schedule, *, cache_bytes) -> Tuple[float, float, float]:
    """Replay the schedule; returns (mean ms, p99 ms, cache hit-rate)."""
    service = SamplingService(
        num_workers=1, mode="thread", batch_window_s=0.0,
        max_batch_requests=1, memory_budget_bytes=None,
        cache_bytes=cache_bytes,
    )
    latencies = []
    try:
        service.load_graph("bench", graph)
        client = SamplingClient(service)
        for seeds in schedule:
            start = time.perf_counter()
            client.sample("bench", ALGORITHM, list(seeds), depth=DEPTH,
                          seed=7, timeout=120)
            latencies.append(time.perf_counter() - start)
        hit_rate = service.stats.snapshot().get("cache_hit_rate", 0.0)
    finally:
        service.shutdown()
    flat = np.asarray(latencies)
    return (float(flat.mean()) * 1e3,
            float(np.percentile(flat, 99)) * 1e3,
            float(hit_rate))


def polite_workload(client: SamplingClient, num_vertices: int,
                    num_requests: int) -> float:
    """The polite tenant's closed loop; returns its mean latency (ms).

    Unique seeds every request: the polite tenant never benefits from the
    result cache, so the comparison isolates the admission-control effect.
    """
    rng = np.random.default_rng(7)
    latencies = []
    for _ in range(num_requests):
        seeds = rng.integers(0, num_vertices, INSTANCES_PER_REQUEST)
        start = time.perf_counter()
        client.sample("bench", ALGORITHM, seeds.tolist(), depth=DEPTH,
                      seed=7, tenant="polite", timeout=120)
        latencies.append(time.perf_counter() - start)
    return float(np.mean(latencies)) * 1e3


def run_qos_cell(graph, *, num_requests: int,
                 greedy: bool) -> Tuple[float, int]:
    """Polite tenant's mean latency (ms) and the greedy tenant's shed count."""
    service = SamplingService(
        num_workers=1, mode="thread", batch_window_s=0.0,
        max_batch_requests=1, memory_budget_bytes=None,
        cache_bytes=None,  # isolate admission control from caching
        quotas={"greedy": TenantQuota(rate=1e-6, burst=1e-6)},
    )
    try:
        service.load_graph("bench", graph)
        client = SamplingClient(service)
        stop = threading.Event()

        def greedy_loop() -> None:
            rng = np.random.default_rng(13)
            while not stop.is_set():
                seeds = rng.integers(0, graph.num_vertices,
                                     INSTANCES_PER_REQUEST)
                try:
                    client.sample("bench", ALGORITHM, seeds.tolist(),
                                  depth=DEPTH, seed=7, tenant="greedy",
                                  timeout=120)
                except AdmissionRejected:
                    # Shed at the door.  A zero-backoff spin would measure
                    # GIL contention from the busy loop itself, not the
                    # gateway; 5ms still re-attempts ~200x/s, orders of
                    # magnitude under the rejection's actual retry-after
                    # hint (which a well-behaved client would sleep out).
                    time.sleep(0.005)

        thread = None
        if greedy:
            thread = threading.Thread(target=greedy_loop, daemon=True)
            thread.start()
        mean_ms = polite_workload(client, graph.num_vertices, num_requests)
        stop.set()
        if thread is not None:
            thread.join(timeout=30.0)
        shed = service.stats.requests_shed
    finally:
        service.shutdown()
    return mean_ms, shed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs (relaxed "
                             "isolation threshold)")
    args = parser.parse_args()

    if args.quick:
        num_vertices, num_requests = 5_000, 80
        isolation_slack = 1.5  # tiny per-request times: scheduler noise wins
        min_speedup = 2.0  # short runs amortise little; relaxed smoke bar
    else:
        num_vertices, num_requests = 50_000, 300
        isolation_slack = 1.1
        min_speedup = 5.0

    graph = powerlaw_graph(num_vertices, avg_degree=8, seed=1)
    print(f"graph: {graph}, {ALGORITHM} depth={DEPTH} "
          f"x{INSTANCES_PER_REQUEST} instances/request")
    failures = []

    # ---------------------------------------------------------------- #
    # Cache: 90%-repeat workload, cache on vs off
    # ---------------------------------------------------------------- #
    schedule = make_schedule(num_requests, num_vertices, repeat_fraction=0.9)
    cold_mean, cold_p99, _ = run_cache_cell(graph, schedule, cache_bytes=None)
    warm_mean, warm_p99, hit_rate = run_cache_cell(
        graph, schedule, cache_bytes=64 * 1024 * 1024
    )
    speedup = cold_mean / warm_mean if warm_mean > 0 else float("inf")
    print(f"cache  | off: mean {cold_mean:7.3f} ms p99 {cold_p99:7.3f} ms | "
          f"on: mean {warm_mean:7.3f} ms p99 {warm_p99:7.3f} ms | "
          f"hit-rate {hit_rate:.2f} | speedup {speedup:.1f}x")
    if hit_rate < 0.5:
        failures.append(f"cache hit-rate {hit_rate:.2f} below 0.5 on a "
                        f"90%-repeat workload")
    if speedup < min_speedup:
        failures.append(f"cache speedup {speedup:.1f}x below the "
                        f"{min_speedup:.0f}x acceptance threshold")

    # ---------------------------------------------------------------- #
    # QoS: polite tenant solo vs alongside a shed greedy tenant
    # ---------------------------------------------------------------- #
    solo_ms, _ = run_qos_cell(graph, num_requests=num_requests, greedy=False)
    contended_ms, shed = run_qos_cell(
        graph, num_requests=num_requests, greedy=True
    )
    ratio = contended_ms / solo_ms if solo_ms > 0 else float("inf")
    print(f"qos    | polite solo: mean {solo_ms:7.3f} ms | with greedy "
          f"tenant: mean {contended_ms:7.3f} ms ({ratio:.2f}x) | "
          f"greedy sheds: {shed}")
    if shed == 0:
        failures.append("the greedy tenant was never shed")
    if ratio > isolation_slack:
        failures.append(
            f"polite tenant degraded {ratio:.2f}x next to a shed greedy "
            f"tenant (threshold {isolation_slack:.2f}x)"
        )

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print(f"OK: >={min_speedup:.0f}x cache speedup on 90%-repeat workload; "
          f"polite tenant within {isolation_slack:.1f}x of solo baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
