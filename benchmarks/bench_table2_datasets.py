"""Table II: evaluated graphs and their statistics.

Regenerates the dataset table by building every synthetic stand-in graph and
comparing its average degree and skew against the statistics the paper
reports for the original SNAP/KONECT datasets.
"""

from repro.bench import figures


def test_table2_datasets(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: figures.table2_datasets(scale), rounds=1, iterations=1
    )
    table = report("table2_datasets", rows)
    assert len(table.rows) == len(scale.all_graphs)
    for row in table.rows:
        # The stand-in's average degree should be within 2x of the paper's
        # figure (dedup of the random multigraph loses some edges).
        ratio = row["repro_avg_degree"] / row["paper_avg_degree"]
        assert 0.3 < ratio < 2.5, f"{row['dataset']}: degree ratio {ratio}"
        # Scale-free stand-ins must be skewed (hubs present).
        assert row["repro_max_degree"] > 5 * row["repro_avg_degree"]
