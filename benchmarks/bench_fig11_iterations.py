"""Figure 11: average selection iterations with and without bipartite region search.

The metric is the trip count of the SELECT do-while loop per sampled vertex.
The paper reports 5.0x / 1.5x / 1.8x / 1.7x reductions for biased neighbor
sampling, forest fire, layer sampling and unbiased neighbor sampling.
"""

import numpy as np

from repro.bench import figures


def test_fig11_iteration_reduction(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: figures.fig11_iteration_counts(scale), rounds=1, iterations=1
    )
    table = report("fig11_iterations", rows)

    # Bipartite region search never needs more iterations than repeated
    # sampling, and reduces them substantially for the biased applications.
    assert all(r["iterations_bipartite"] <= r["iterations_baseline"] + 1e-9 for r in table.rows)
    biased = [r for r in table.rows if r["application"] == "biased_neighbor_sampling"]
    assert float(np.mean([r["reduction"] for r in biased])) > 1.5
