"""Figure 13: out-of-memory optimisation speedups.

For four applications on every graph (small graphs are treated as
out-of-memory, as in the paper), compares the unoptimised partition-transfer
baseline against batched multi-instance sampling (BA), BA plus workload-aware
scheduling (WS) and BA + WS plus thread-block workload balancing (BAL).  The
paper reports average speedups of roughly 2x (BA), 3x (BA+WS) and 3.5x
(all three).
"""

import numpy as np

from repro.bench import figures


def test_fig13_oom_optimisations(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: figures.fig13_oom_speedups(scale), rounds=1, iterations=1
    )
    table = report("fig13_oom_opts", rows)
    assert len(table.rows) == len(scale.all_graphs) * 4

    mean_ba = float(np.mean([r["speedup_BA"] for r in table.rows]))
    mean_ws = float(np.mean([r["speedup_BA+WS"] for r in table.rows]))
    mean_bal = float(np.mean([r["speedup_BA+WS+BAL"] for r in table.rows]))
    # Each optimisation layer must improve (or at least not regress) on the
    # previous one, and batching alone must clearly beat the baseline.
    assert mean_ba > 1.3
    assert mean_ws >= mean_ba * 0.98
    assert mean_bal >= mean_ws * 0.98
