"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through
:mod:`repro.bench.figures`, prints the resulting rows (run pytest with ``-s``
to see them inline) and writes them as CSV under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the numbers.

Planner trajectory: benchmarks that exercise the execution planner record
machine-readable rows through the :func:`planner_record` fixture (route,
wall time, plan-construction time, predicted vs actual cost); at session
end they are merged into ``benchmarks/results/BENCH_planner.json`` keyed by
``(bench, route)``, so the planner's routing decisions and cost-model drift
stay comparable across PRs.

Telemetry trajectory: records that additionally carry a ``latencies_s``
list (per-run wall times) are summarised through a telemetry histogram
into ``benchmarks/results/BENCH_telemetry.json`` (count, mean, p50, p99),
which ``gate.py`` folds into its trend report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.workloads import DEFAULT_SCALE

RESULTS_DIR = Path(__file__).parent / "results"

PLANNER_JSON = "BENCH_planner.json"
TELEMETRY_JSON = "BENCH_telemetry.json"

_planner_records: List[Dict] = []


def write_planner_records(results_dir: Path, records: List[Dict]) -> Path:
    """Merge planner-trajectory records into ``BENCH_planner.json``.

    Existing records with the same ``(bench, route)`` key are replaced;
    everything else is preserved, so partial benchmark runs never erase the
    rest of the trajectory file.
    """
    path = results_dir / PLANNER_JSON
    merged: Dict = {}
    if path.exists():
        for row in json.loads(path.read_text()):
            merged[(row.get("bench"), row.get("route"))] = row
    for row in records:
        merged[(row.get("bench"), row.get("route"))] = row
    ordered = [merged[key] for key in sorted(merged, key=str)]
    path.write_text(json.dumps(ordered, indent=2, sort_keys=True) + "\n")
    return path


def write_telemetry_records(results_dir: Path, records: List[Dict]) -> Path:
    """Summarise per-run latencies into ``BENCH_telemetry.json``.

    Records carrying a ``latencies_s`` list get their latencies folded
    through a telemetry histogram into a p50/p99 snapshot keyed by
    ``(bench, route)`` -- the same merge semantics as the planner file, so
    ``gate.py`` can show latency percentiles in its trend report.
    """
    from repro.telemetry.metrics import Histogram

    path = results_dir / TELEMETRY_JSON
    merged: Dict = {}
    if path.exists():
        for row in json.loads(path.read_text()):
            merged[(row.get("bench"), row.get("route"))] = row
    for row in records:
        latencies = row.get("latencies_s") or []
        if not latencies:
            continue
        histogram = Histogram()
        for value in latencies:
            histogram.observe(float(value))
        merged[(row.get("bench"), row.get("route"))] = {
            "bench": row.get("bench"),
            "route": row.get("route"),
            **histogram.summary(),
        }
    ordered = [merged[key] for key in sorted(merged, key=str)]
    path.write_text(json.dumps(ordered, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def scale():
    """The workload scale used by the full benchmark suite."""
    return DEFAULT_SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the per-figure CSV outputs are written to."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def planner_record(results_dir):
    """Queue one machine-readable planner-trajectory record.

    ``planner_record(bench, route=..., wall_time_s=..., predicted_time_s=...,
    actual_time_s=..., ...)`` -- everything JSON-serialisable.  Records are
    flushed to ``BENCH_planner.json`` when the session finishes.
    """

    def _record(bench: str, **row) -> None:
        _planner_records.append({"bench": bench, **row})

    return _record


def pytest_sessionfinish(session, exitstatus):  # noqa: ARG001 - pytest hook
    if _planner_records:
        write_telemetry_records(RESULTS_DIR, list(_planner_records))
        # latency lists are summarised above; keep the planner file scalar
        rows = [{k: v for k, v in row.items() if k != "latencies_s"}
                for row in _planner_records]
        write_planner_records(RESULTS_DIR, rows)
        _planner_records.clear()


@pytest.fixture()
def report(results_dir):
    """Factory that prints and persists an experiment table."""

    def _report(name: str, rows) -> ExperimentTable:
        table = ExperimentTable(name=name, rows=[dict(r) for r in rows])
        print()
        table.show()
        table.save(results_dir)
        return table

    return _report
