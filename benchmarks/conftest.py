"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through
:mod:`repro.bench.figures`, prints the resulting rows (run pytest with ``-s``
to see them inline) and writes them as CSV under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.workloads import DEFAULT_SCALE

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The workload scale used by the full benchmark suite."""
    return DEFAULT_SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the per-figure CSV outputs are written to."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir):
    """Factory that prints and persists an experiment table."""

    def _report(name: str, rows) -> ExperimentTable:
        table = ExperimentTable(name=name, rows=[dict(r) for r in rows])
        print()
        table.show()
        table.save(results_dir)
        return table

    return _report
