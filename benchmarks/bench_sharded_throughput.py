"""Sharded-cluster throughput: 4 shards vs 1 on a 100k-vertex walk workload.

The sharded tier's scaling claim: shards sample their partitions side by
side, so with enough walkers to fill every shard's device the cluster's
simulated makespan (the slowest shard's kernel time -- the same model the
paper's multi-GPU scaling figure uses) drops near-linearly with the shard
count, while migrations keep every walker's result bit-identical.

The workload is a DeepWalk-style random walk over a uniform-degree
Erdos-Renyi graph: uniform degrees spread walker traffic evenly across the
vertex ranges, isolating the scaling property being measured (on power-law
graphs the hubs concentrate gather traffic on one shard -- that skew is a
property of the workload, not of the tier).

Acceptance (asserted): 4 in-process shards reach >= 2x the single-shard
simulated throughput; results stay bit-identical across the two runs.

Run standalone (simulated time is deterministic; wall clock is informative):

    PYTHONPATH=src python benchmarks/bench_sharded_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_sharded_throughput.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.distributed import ShardedSamplingCluster
from repro.graph.generators import erdos_renyi_graph

ALGORITHM = "deepwalk"


def run_once(graph, num_shards: int, walkers: int):
    seeds = list(range(walkers))
    cluster = ShardedSamplingCluster(graph, ALGORITHM, num_shards=num_shards)
    start = time.perf_counter()
    result = cluster.run(seeds)
    wall = time.perf_counter() - start
    return result, wall


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph / fewer walkers (CI smoke)")
    args = parser.parse_args()

    if args.quick:
        num_vertices, avg_degree, walkers = 20_000, 10.0, 4096
    else:
        num_vertices, avg_degree, walkers = 100_000, 10.0, 8192

    print(f"graph: Erdos-Renyi |V|={num_vertices} avg_degree={avg_degree}, "
          f"{walkers} {ALGORITHM} walkers")
    graph = erdos_renyi_graph(num_vertices, avg_degree, seed=3)

    print(f"{'shards':>6} {'makespan_s':>12} {'seps':>12} {'migrations':>10} "
          f"{'epochs':>6} {'wall_s':>7}")
    results = {}
    for num_shards in (1, 4):
        result, wall = run_once(graph, num_shards, walkers)
        results[num_shards] = result
        summary = result.summary()
        print(f"{num_shards:6d} {summary['makespan_s']:12.3e} "
              f"{summary['seps']:12.3e} {summary['migrations']:10d} "
              f"{summary['epochs']:6d} {wall:7.2f}")

    single, sharded = results[1], results[4]
    speedup = single.makespan() / sharded.makespan()
    print(f"4-shard simulated speedup: {speedup:.2f}x")

    failures = []
    if speedup < 2.0:
        failures.append(f"4-shard speedup {speedup:.2f}x below the 2x bar")
    if sharded.migrations == 0:
        failures.append("4-shard run performed no migrations (not sharded?)")
    identical = all(
        np.array_equal(a.edges, b.edges)
        for a, b in zip(single.result.samples, sharded.result.samples)
    )
    if not identical:
        failures.append("4-shard samples diverged from the single-shard run")

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("OK: >= 2x simulated throughput at 4 shards, results bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
