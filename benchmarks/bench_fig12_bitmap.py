"""Figure 12: collision-search reduction from the strided bitmap.

Compares the number of collision-detection searches performed by the strided
bitmap against the shared-memory linear-search baseline (ratio < 1 means the
bitmap searches less).  The paper reports reductions of 63% / 83% / 71% / 81%
on the four applications.
"""

import numpy as np

from repro.bench import figures


def test_fig12_bitmap_search_reduction(benchmark, scale, report):
    rows = benchmark.pedantic(
        lambda: figures.fig12_search_reduction(scale), rounds=1, iterations=1
    )
    table = report("fig12_bitmap", rows)

    ratios = [r["ratio"] for r in table.rows]
    # The bitmap must never search more than the linear baseline, and must
    # meaningfully reduce searches on average.
    assert all(r <= 1.0 + 1e-9 for r in ratios)
    assert float(np.mean(ratios)) < 0.9
