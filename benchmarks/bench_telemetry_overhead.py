"""Telemetry overhead: the disabled mode must be (near) free.

Acceptance benchmark for the telemetry subsystem: with telemetry disabled
every instrumented call site costs one global check plus one thread-local
read (``span()`` returns a shared no-op object).  The bound asserted here is
**less than 3%** of an instrumented 1,000-instance run: the number of
instrumentation sites an enabled run actually hits, times the measured
per-site disabled cost, must stay under 3% of the disabled run's wall time.

The run also pins the zero-perturbation contract (telemetry on vs off is
bit-identical -- spans observe control flow, never RNG coordinates) and
records per-run latencies through :func:`planner_record`; the conftest
plumbing summarises them into ``benchmarks/results/BENCH_telemetry.json``
(p50/p99) for the perf gate's trend report.

Run it explicitly (wall-clock benchmarks are not part of the default
pytest collection)::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py -q
"""

from __future__ import annotations

import time

import pytest

from repro import telemetry as tel
from repro.algorithms.registry import get_algorithm
from repro.api.sampler import GraphSampler
from repro.graph.generators import powerlaw_graph
from repro.telemetry import trace

OVERHEAD_CEILING = 0.03
NUM_VERTICES = 20_000
NUM_INSTANCES = 1_000
NULL_SPAN_CALLS = 100_000


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(NUM_VERTICES, avg_degree=8, seed=1)


@pytest.fixture(scope="module")
def seeds(graph):
    return list(range(0, NUM_VERTICES, NUM_VERTICES // NUM_INSTANCES))[:NUM_INSTANCES]


@pytest.fixture()
def telemetry_reset():
    was_enabled = tel.enabled()
    tel.disable()
    tel.clear()
    tel.FEEDBACK.clear()
    yield
    if was_enabled:
        tel.enable()
    tel.clear()
    tel.FEEDBACK.clear()


def _sampler(graph):
    info = get_algorithm("deepwalk")
    return GraphSampler(graph, info.program_factory(),
                        info.config_factory(seed=1, depth=8))


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _fingerprint(result):
    return tuple(
        (s.instance_id, tuple(map(int, s.seeds)), tuple(map(tuple, s.edges)))
        for s in result.samples
    )


def test_disabled_mode_under_3_percent(graph, seeds, report, planner_record,
                                       telemetry_reset):
    sampler = _sampler(graph)
    sampler.run(seeds)  # warm the kernel cache and allocator

    _, disabled_wall = _timed(lambda: sampler.run(seeds))

    # Per-site cost of a disabled instrumentation point: the null-span
    # round trip (global check + thread-local read + no-op context manager).
    def null_spans():
        for _ in range(NULL_SPAN_CALLS):
            with trace.span("probe"):
                pass

    _, null_wall = _timed(null_spans)
    per_site_s = null_wall / NULL_SPAN_CALLS

    # How many sites does this workload actually hit? Count the spans an
    # enabled run records -- every one of them is a disabled-mode null call.
    tel.enable()
    try:
        tel.clear()
        result, enabled_wall = _timed(lambda: sampler.run(seeds))
        sites = len(tel.spans())
    finally:
        tel.disable()
    assert sites > 0

    overhead_s = sites * per_site_s
    overhead_fraction = overhead_s / disabled_wall

    latencies = []
    for _ in range(5):
        _, wall = _timed(lambda: sampler.run(seeds))
        latencies.append(wall)

    rows = [{
        "route": "in_memory",
        "instances": NUM_INSTANCES,
        "disabled_wall_s": disabled_wall,
        "enabled_wall_s": enabled_wall,
        "instrumented_sites": sites,
        "per_site_s": per_site_s,
        "overhead_fraction": overhead_fraction,
    }]
    report("telemetry_overhead", rows)
    planner_record(
        "telemetry_overhead",
        route="in_memory",
        num_instances=NUM_INSTANCES,
        wall_time_s=disabled_wall,
        enabled_wall_s=enabled_wall,
        instrumented_sites=sites,
        overhead_fraction=overhead_fraction,
        latencies_s=latencies,
    )
    assert overhead_fraction < OVERHEAD_CEILING, (
        f"disabled telemetry costs {overhead_fraction:.2%} of a "
        f"{NUM_INSTANCES}-instance run (ceiling {OVERHEAD_CEILING:.0%}): "
        f"{sites} sites x {per_site_s * 1e9:.0f} ns"
    )


def test_enabled_telemetry_is_bit_identical(graph, seeds, telemetry_reset):
    # fresh sampler per leg: reusing one advances its RNG run counter
    baseline = _fingerprint(_sampler(graph).run(seeds))
    tel.enable()
    try:
        traced = _fingerprint(_sampler(graph).run(seeds))
        assert tel.spans(), "enabled run recorded no spans"
    finally:
        tel.disable()
    assert baseline == traced
