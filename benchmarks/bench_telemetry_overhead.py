"""Telemetry overhead: the disabled mode must be (near) free.

Acceptance benchmark for the telemetry subsystem: with telemetry disabled
every instrumented call site costs one global check plus one thread-local
read (``span()`` returns a shared no-op object).  The bound asserted here is
**less than 3%** of an instrumented 1,000-instance run: the number of
instrumentation sites an enabled run actually hits, times the measured
per-site disabled cost, must stay under 3% of the disabled run's wall time.

The diagnostics tier rides the same methodology: the continuous phase
profiler's disabled sites (``clock()`` returning the shared null clock)
must stay under the same 3% ceiling, and the **enabled** profiler plus a
flight recorder absorbing a generous per-request event volume must stay
under 5% -- per-site/per-event costs measured in microloops, multiplied by
the site counts a real instrumented run produces.

The run also pins the zero-perturbation contract (telemetry or profiler on
vs off is bit-identical -- spans and laps observe control flow, never RNG
coordinates) and records per-run latencies through :func:`planner_record`;
the conftest plumbing summarises them into
``benchmarks/results/BENCH_telemetry.json`` (p50/p99), which the perf gate
compares against its baseline snapshot.

Run it explicitly (wall-clock benchmarks are not part of the default
pytest collection)::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py -q
"""

from __future__ import annotations

import time

import pytest

from repro import telemetry as tel
from repro.algorithms.registry import get_algorithm
from repro.api.sampler import GraphSampler
from repro.graph.generators import powerlaw_graph
from repro.telemetry import profiler
from repro.telemetry import trace
from repro.telemetry.recorder import FlightRecorder

OVERHEAD_CEILING = 0.03
ENABLED_CEILING = 0.05
NUM_VERTICES = 20_000
NUM_INSTANCES = 1_000
NULL_SPAN_CALLS = 100_000
#: Events a chatty request leaves in the flight recorder (admit, claim,
#: publish, cache bookkeeping...); a generous ceiling, the real service
#: emits fewer.
RECORDER_EVENTS_PER_RUN = 64


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(NUM_VERTICES, avg_degree=8, seed=1)


@pytest.fixture(scope="module")
def seeds(graph):
    return list(range(0, NUM_VERTICES, NUM_VERTICES // NUM_INSTANCES))[:NUM_INSTANCES]


@pytest.fixture()
def telemetry_reset():
    was_enabled = tel.enabled()
    tel.disable()
    tel.clear()
    tel.FEEDBACK.clear()
    yield
    if was_enabled:
        tel.enable()
    tel.clear()
    tel.FEEDBACK.clear()


def _sampler(graph):
    info = get_algorithm("deepwalk")
    return GraphSampler(graph, info.program_factory(),
                        info.config_factory(seed=1, depth=8))


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _fingerprint(result):
    return tuple(
        (s.instance_id, tuple(map(int, s.seeds)), tuple(map(tuple, s.edges)))
        for s in result.samples
    )


def test_disabled_mode_under_3_percent(graph, seeds, report, planner_record,
                                       telemetry_reset):
    sampler = _sampler(graph)
    sampler.run(seeds)  # warm the kernel cache and allocator

    _, disabled_wall = _timed(lambda: sampler.run(seeds))

    # Per-site cost of a disabled instrumentation point: the null-span
    # round trip (global check + thread-local read + no-op context manager).
    def null_spans():
        for _ in range(NULL_SPAN_CALLS):
            with trace.span("probe"):
                pass

    _, null_wall = _timed(null_spans)
    per_site_s = null_wall / NULL_SPAN_CALLS

    # How many sites does this workload actually hit? Count the spans an
    # enabled run records -- every one of them is a disabled-mode null call.
    tel.enable()
    try:
        tel.clear()
        result, enabled_wall = _timed(lambda: sampler.run(seeds))
        sites = len(tel.spans())
    finally:
        tel.disable()
    assert sites > 0

    overhead_s = sites * per_site_s
    overhead_fraction = overhead_s / disabled_wall

    latencies = []
    for _ in range(5):
        _, wall = _timed(lambda: sampler.run(seeds))
        latencies.append(wall)

    rows = [{
        "route": "in_memory",
        "instances": NUM_INSTANCES,
        "disabled_wall_s": disabled_wall,
        "enabled_wall_s": enabled_wall,
        "instrumented_sites": sites,
        "per_site_s": per_site_s,
        "overhead_fraction": overhead_fraction,
    }]
    report("telemetry_overhead", rows)
    planner_record(
        "telemetry_overhead",
        route="in_memory",
        num_instances=NUM_INSTANCES,
        wall_time_s=disabled_wall,
        enabled_wall_s=enabled_wall,
        instrumented_sites=sites,
        overhead_fraction=overhead_fraction,
        latencies_s=latencies,
    )
    assert overhead_fraction < OVERHEAD_CEILING, (
        f"disabled telemetry costs {overhead_fraction:.2%} of a "
        f"{NUM_INSTANCES}-instance run (ceiling {OVERHEAD_CEILING:.0%}): "
        f"{sites} sites x {per_site_s * 1e9:.0f} ns"
    )


def test_enabled_telemetry_is_bit_identical(graph, seeds, telemetry_reset):
    # fresh sampler per leg: reusing one advances its RNG run counter
    baseline = _fingerprint(_sampler(graph).run(seeds))
    tel.enable()
    try:
        traced = _fingerprint(_sampler(graph).run(seeds))
        assert tel.spans(), "enabled run recorded no spans"
    finally:
        tel.disable()
    assert baseline == traced


@pytest.fixture()
def profiler_reset():
    was_enabled = profiler.enabled()
    profiler.disable()
    profiler.clear()
    yield
    if was_enabled:
        profiler.enable()
    profiler.clear()


def _lap_count():
    """Laps (= instrumented profiler sites) the last enabled run hit."""
    return sum(row["calls"] for row in profiler.stats())


def test_profiler_disabled_under_3_percent(graph, seeds, report,
                                           profiler_reset):
    """Disabled profiler: null-clock laps must cost < 3% of the run."""
    sampler = _sampler(graph)
    sampler.run(seeds)  # warm the kernel cache and allocator
    _, disabled_wall = _timed(lambda: sampler.run(seeds))

    # Per-site cost when off: clock() returns the shared null clock whose
    # lap() is a constant-return method.
    null_clock = profiler.clock(0)

    def null_laps():
        for _ in range(NULL_SPAN_CALLS):
            null_clock.lap("gather")

    _, null_wall = _timed(null_laps)
    per_site_s = null_wall / NULL_SPAN_CALLS

    profiler.enable()
    try:
        profiler.clear()
        sampler.run(seeds)
        sites = _lap_count()
    finally:
        profiler.disable()
    assert sites > 0

    overhead_fraction = sites * per_site_s / disabled_wall
    report("profiler_disabled_overhead", [{
        "route": "in_memory",
        "instances": NUM_INSTANCES,
        "disabled_wall_s": disabled_wall,
        "lap_sites": sites,
        "per_site_s": per_site_s,
        "overhead_fraction": overhead_fraction,
    }])
    assert overhead_fraction < OVERHEAD_CEILING, (
        f"disabled profiler costs {overhead_fraction:.2%} of a "
        f"{NUM_INSTANCES}-instance run (ceiling {OVERHEAD_CEILING:.0%}): "
        f"{sites} laps x {per_site_s * 1e9:.0f} ns"
    )


def test_profiler_and_recorder_enabled_under_5_percent(
        graph, seeds, report, planner_record, profiler_reset):
    """Enabled profiler + flight recorder: < 5% of the run, end to end.

    Accounted the same way as the disabled bound: the per-lap cost of a
    live clock (perf_counter delta + dict accumulate) and the per-event
    cost of ``FlightRecorder.record`` are measured in microloops, then
    multiplied by the lap count a real run produces and a generous
    per-request event volume.
    """
    sampler = _sampler(graph)
    sampler.run(seeds)  # warm
    _, disabled_wall = _timed(lambda: sampler.run(seeds))

    profiler.enable()
    try:
        profiler.clear()
        latencies = []
        for _ in range(5):
            _, wall = _timed(lambda: sampler.run(seeds))
            latencies.append(wall)
        sites = _lap_count() // 5

        live_clock = profiler.clock(0)

        def live_laps():
            for _ in range(NULL_SPAN_CALLS):
                live_clock.lap("gather")

        _, live_wall = _timed(live_laps)
        per_lap_s = live_wall / NULL_SPAN_CALLS
    finally:
        profiler.disable()
        profiler.clear()
    assert sites > 0

    recorder = FlightRecorder(capacity=RECORDER_EVENTS_PER_RUN)

    def record_events():
        for i in range(NULL_SPAN_CALLS):
            recorder.record("admit", trace_id="bench", request_id=i)

    _, record_wall = _timed(record_events)
    per_event_s = record_wall / NULL_SPAN_CALLS

    overhead_s = sites * per_lap_s + RECORDER_EVENTS_PER_RUN * per_event_s
    overhead_fraction = overhead_s / disabled_wall
    report("profiler_enabled_overhead", [{
        "route": "in_memory",
        "instances": NUM_INSTANCES,
        "disabled_wall_s": disabled_wall,
        "lap_sites": sites,
        "per_lap_s": per_lap_s,
        "recorder_events": RECORDER_EVENTS_PER_RUN,
        "per_event_s": per_event_s,
        "overhead_fraction": overhead_fraction,
    }])
    planner_record(
        "profiler_enabled_overhead",
        route="in_memory",
        num_instances=NUM_INSTANCES,
        wall_time_s=disabled_wall,
        lap_sites=sites,
        overhead_fraction=overhead_fraction,
        latencies_s=latencies,
    )
    assert overhead_fraction < ENABLED_CEILING, (
        f"enabled profiler+recorder cost {overhead_fraction:.2%} of a "
        f"{NUM_INSTANCES}-instance run (ceiling {ENABLED_CEILING:.0%}): "
        f"{sites} laps x {per_lap_s * 1e9:.0f} ns + "
        f"{RECORDER_EVENTS_PER_RUN} events x {per_event_s * 1e9:.0f} ns"
    )


def test_profiler_and_recorder_are_bit_identical(graph, seeds,
                                                 profiler_reset):
    """Diagnostics on vs off: sample coordinates never move."""
    baseline = _fingerprint(_sampler(graph).run(seeds))
    recorder = FlightRecorder(capacity=16)
    profiler.enable()
    try:
        recorder.record("admit", trace_id="bench")
        profiled = _fingerprint(_sampler(graph).run(seeds))
        assert profiler.stats(), "enabled run recorded no phase stats"
    finally:
        profiler.disable()
        profiler.clear()
    assert baseline == profiled
