"""Sharded sampling-cluster example: multiprocess shards, walker migration.

Partitions a generated graph into four vertex-range shards, runs DeepWalk
and neighbor-sampling workloads on a 4-shard **multiprocess** cluster (one
OS process per shard, one shared-memory CSR copy), and verifies the
headline contract: results -- including cost totals -- are bit-identical to
a single-shard in-process run.

    PYTHONPATH=src python examples/sharded_cluster.py
    PYTHONPATH=src python examples/sharded_cluster.py --smoke

``--smoke`` is the CI mode: a smaller graph, a 4-shard multiprocess run per
workload, the invariance check and a shared-memory leak audit; exits
non-zero on any failure.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.distributed import ShardedSamplingCluster
from repro.graph.generators import powerlaw_graph
from repro.service.store import SharedGraphStore, leaked_segments

WORKLOADS = [
    ("deepwalk", {}, {}),
    ("node2vec", {"p": 2.0, "q": 0.5}, {"depth": 6, "seed": 11}),
    ("unbiased_neighbor_sampling", {}, {"seed": 4}),
]


def fingerprint(cluster_result):
    result = cluster_result.result
    return (
        tuple(tuple(map(tuple, s.edges)) for s in result.samples),
        tuple(result.iteration_counts),
        tuple(sorted(result.cost.as_dict().items())),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: smaller graph, strict checks")
    args = parser.parse_args()

    num_vertices = 5_000 if args.smoke else 50_000
    num_walkers = 64 if args.smoke else 512
    graph = powerlaw_graph(num_vertices, 8.0, seed=5)
    seeds = list(range(0, 2 * num_walkers, 2))
    prefix = "shardex"
    store = SharedGraphStore(prefix=prefix)
    store.put("example", graph)

    failures = []
    try:
        for algorithm, program_kwargs, overrides in WORKLOADS:
            from repro.algorithms.registry import default_config

            config = default_config(algorithm, **overrides)
            reference = ShardedSamplingCluster(
                graph, algorithm, config,
                num_shards=1, program_kwargs=program_kwargs,
            ).run(seeds)

            cluster = ShardedSamplingCluster(
                graph, algorithm, config,
                num_shards=4, program_kwargs=program_kwargs,
                transport="multiprocess", store=store, graph_name="example",
            )
            start = time.perf_counter()
            sharded = cluster.run(seeds)
            wall = time.perf_counter() - start

            identical = fingerprint(sharded) == fingerprint(reference)
            print(f"{algorithm:28s} edges={sharded.total_sampled_edges:7d} "
                  f"migrations={sharded.migrations:6d} epochs={sharded.epochs} "
                  f"wall={wall:5.2f}s bit-identical={identical}")
            if not identical:
                failures.append(f"{algorithm}: 4-shard run diverged from 1-shard")
            if sharded.migrations == 0:
                failures.append(f"{algorithm}: no cross-shard migration happened")
    finally:
        store.close()

    leaks = leaked_segments(prefix)
    if leaks:
        failures.append(f"leaked shared-memory segments: {leaks}")

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("OK: 4-shard multiprocess runs bit-identical to single-shard, "
          "no shared-memory leaks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
