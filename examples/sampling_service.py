"""End-to-end sampling-service example.

Starts a :class:`~repro.service.server.SamplingService` on a generated
power-law graph, then issues concurrent node2vec and neighbor-sampling
requests from *both* clients -- blocking threads and an asyncio fan-out --
and prints aggregate service statistics.

    PYTHONPATH=src python examples/sampling_service.py
    PYTHONPATH=src python examples/sampling_service.py --smoke

``--smoke`` is the CI mode: process workers, 100 mixed requests (including
some routed out-of-memory), then a clean shutdown and a shared-memory leak
audit; exits non-zero on any failure.
"""

from __future__ import annotations

import argparse
import asyncio
import threading
import time

import numpy as np

from repro.graph.generators import powerlaw_graph
from repro.service import (
    AsyncSamplingClient,
    SamplingClient,
    SamplingService,
    leaked_segments,
)


def sync_clients(service: SamplingService, num_clients: int,
                 requests_each: int, num_vertices: int) -> list:
    """Closed-loop blocking clients on threads (one SamplingClient shared)."""
    client = SamplingClient(service)
    responses = []
    lock = threading.Lock()

    def loop(rank: int) -> None:
        rng = np.random.default_rng(rank)
        for i in range(requests_each):
            if (rank + i) % 2:
                response = client.sample(
                    "social", "node2vec",
                    rng.integers(0, num_vertices, 4).tolist(),
                    depth=6, seed=11, program_kwargs={"p": 2.0, "q": 0.5},
                    timeout=120,
                )
            else:
                response = client.sample(
                    "social", "unbiased_neighbor_sampling",
                    rng.integers(0, num_vertices, 3).tolist(),
                    depth=2, neighbor_size=4, seed=11, timeout=120,
                )
            with lock:
                responses.append(response)

    threads = [threading.Thread(target=loop, args=(rank,))
               for rank in range(num_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses


def async_clients(service: SamplingService, num_requests: int,
                  num_vertices: int) -> list:
    """The same mix through the asyncio client, fanned out as coroutines."""
    client = AsyncSamplingClient(service)

    async def fanout():
        rng = np.random.default_rng(99)
        tasks = []
        for i in range(num_requests):
            if i % 2:
                tasks.append(client.sample(
                    "social", "node2vec",
                    rng.integers(0, num_vertices, 4).tolist(),
                    depth=6, seed=11, program_kwargs={"p": 2.0, "q": 0.5},
                ))
            else:
                tasks.append(client.sample(
                    "social", "unbiased_neighbor_sampling",
                    rng.integers(0, num_vertices, 3).tolist(),
                    depth=2, neighbor_size=4, seed=11,
                ))
        return await asyncio.gather(*tasks)

    return list(asyncio.run(fanout()))


def report(label: str, responses: list) -> None:
    edges = sum(r.total_sampled_edges for r in responses)
    latencies = sorted(r.stats["latency_s"] for r in responses)
    coalesced = sum(1 for r in responses if r.coalesced_with > 1)
    p50 = latencies[len(latencies) // 2] * 1e3
    print(f"  {label}: {len(responses)} responses, {edges} edges, "
          f"{coalesced} coalesced, p50 latency {p50:.1f} ms")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: process workers, 100 mixed requests, "
                             "leak audit, non-zero exit on failure")
    args = parser.parse_args()

    num_vertices = 5_000
    graph = powerlaw_graph(num_vertices, avg_degree=8, seed=1)
    mode = "process" if args.smoke else "thread"
    failures = []

    print(f"starting service ({mode} workers) on {graph} ...")
    service = SamplingService(num_workers=2, mode=mode, batch_window_s=0.005)
    prefix = service.store.prefix
    try:
        route = service.load_graph("social", graph)
        print(f"loaded 'social' -> route={route}, "
              f"segments={len(service.store.handle('social').segments)}")
        if args.smoke:
            # A second, deliberately over-budget copy exercises the
            # out-of-memory admission path in the same run.
            tiny_service_budget = graph.nbytes // 4
            service.memory_budget_bytes = tiny_service_budget
            oom_route = service.load_graph("social-oom", graph)
            service.memory_budget_bytes = None
            if oom_route != "out_of_memory":
                failures.append(f"expected oom route, got {oom_route}")

        started = time.perf_counter()
        sync_responses = sync_clients(
            service, num_clients=4, requests_each=10 if args.smoke else 5,
            num_vertices=num_vertices,
        )
        report("sync clients ", sync_responses)
        async_responses = async_clients(
            service, num_requests=40 if args.smoke else 20,
            num_vertices=num_vertices,
        )
        report("async client ", async_responses)

        oom_responses = []
        if args.smoke:
            client = SamplingClient(service)
            for i in range(20):
                oom_responses.append(client.sample(
                    "social-oom", "simple_random_walk", [i * 7], depth=4,
                    seed=3, timeout=120,
                ))
            report("oom requests ", oom_responses)
            if any(r.route != "out_of_memory" for r in oom_responses):
                failures.append("an oversized-graph request ran in-memory")

        everything = sync_responses + async_responses + oom_responses
        elapsed = time.perf_counter() - started
        print(f"  total: {len(everything)} requests in {elapsed:.2f} s "
              f"({len(everything) / elapsed:.1f} req/s)")
        print("  service stats:", service.stats.snapshot())

        if any(not r.ok for r in everything):
            failures.append("a request returned an error")
        if args.smoke and len(everything) < 100:
            failures.append(f"smoke issued only {len(everything)} requests")
        snap = service.stats.snapshot()
        if snap["requests_failed"]:
            failures.append(f"{snap['requests_failed']} requests failed")
    finally:
        service.shutdown()

    leaked = leaked_segments(prefix)
    if leaked:
        failures.append(f"leaked shared-memory segments: {leaked}")
    print("shutdown clean, no leaked shared-memory segments"
          if not leaked else f"LEAKED: {leaked}")

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
