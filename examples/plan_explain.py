"""Dry-run an over-budget graph through the execution planner.

Builds a graph that exceeds a (deliberately tiny) memory budget, asks the
planner how each entry point would execute it, and prints the plans'
``explain()`` output -- no sampling runs.  Shows the three admission
outcomes side by side: in-memory (budget fits), serial out-of-memory
partition scheduling (over budget, no shards) and the sharded cluster tier
(over budget, shards available).

    PYTHONPATH=src python examples/plan_explain.py
"""

from __future__ import annotations

from repro.algorithms.registry import default_config
from repro.api.instance import make_instances
from repro.graph.generators import powerlaw_graph
from repro.planner.planner import PlanRequest, plan


def main() -> None:
    graph = powerlaw_graph(50_000, avg_degree=8, seed=1)
    budget = graph.nbytes // 4  # force the over-budget tiers
    instances = make_instances(list(range(0, 50_000, 50)))
    config = default_config("deepwalk", depth=8, seed=1)
    print(f"graph footprint: {graph.nbytes / 2**20:.1f} MiB, "
          f"budget: {budget / 2**20:.1f} MiB\n")

    scenarios = [
        ("within budget", dict(memory_budget_bytes=graph.nbytes + 1)),
        ("over budget, no shards", dict(memory_budget_bytes=budget)),
        ("over budget, sharded tier", dict(memory_budget_bytes=budget,
                                           cluster_shards=2)),
    ]
    for label, kwargs in scenarios:
        execution_plan = plan(PlanRequest(
            graph=graph,
            algorithm="deepwalk",
            config=config,
            instances=instances,
            **kwargs,
        ))
        print(f"--- {label} ---")
        print(execution_plan.explain())
        print()


if __name__ == "__main__":
    main()
