#!/usr/bin/env python
"""Out-of-memory sampling: partitions, scheduling and batching (Section V).

The Twitter/Friendster-scale graphs the paper targets do not fit in GPU
memory.  This example treats a graph as out-of-memory (the device is capped
at two resident partitions), runs biased neighbor sampling under the four
configurations of the paper's Fig. 13, and prints the speedups, partition
transfer counts and kernel-imbalance numbers -- a miniature of Figures 13-15.

Run with:  python examples/out_of_memory_sampling.py
"""

from __future__ import annotations

from repro import generate_dataset
from repro.algorithms import BiasedNeighborSampling
from repro.gpusim.device import Device, V100_SPEC
from repro.oom import OutOfMemoryConfig, OutOfMemorySampler


def main() -> None:
    # Twitter-like stand-in graph, heavy-tailed weights.
    graph = generate_dataset("TW", seed=9, weighted=True,
                             weight_distribution="heavy_tailed")
    program = BiasedNeighborSampling()
    config = program.default_config(depth=3, neighbor_size=2, seed=1)
    seeds = list(range(150))

    configurations = [
        ("baseline (unoptimised)", OutOfMemoryConfig.baseline()),
        ("BA   (batched multi-instance)", OutOfMemoryConfig.batched_only()),
        ("BA+WS (+ workload-aware scheduling)", OutOfMemoryConfig.batched_scheduled()),
        ("BA+WS+BAL (+ thread-block balancing)", OutOfMemoryConfig.fully_optimized()),
    ]

    print(f"Graph: {graph} -- partitioned into 4 vertex ranges, "
          f"device holds 2 partitions at a time\n")
    results = {}
    for label, oom_config in configurations:
        device = Device(V100_SPEC.scaled(concurrent_warps=128))
        sampler = OutOfMemorySampler(graph, program, config, oom_config, device=device)
        results[label] = sampler.run(seeds)

    baseline = results[configurations[0][0]]
    header = f"{'configuration':40s} {'speedup':>8s} {'transfers':>10s} {'imbalance':>10s} {'edges':>8s}"
    print(header)
    print("-" * len(header))
    for label, _ in configurations:
        r = results[label]
        speedup = baseline.makespan / r.makespan
        print(f"{label:40s} {speedup:8.2f} {r.partition_transfers:10d} "
              f"{r.stream_imbalance():10.3f} {r.total_sampled_edges:8d}")

    print("\nPaper Fig. 13 reports ~2x for BA, ~3x for BA+WS and ~3.5x with balancing;")
    print("Fig. 15 reports 1.1-1.3x fewer partition transfers with workload-aware scheduling.")


if __name__ == "__main__":
    main()
