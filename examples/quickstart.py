#!/usr/bin/env python
"""Quickstart: sample a graph with the C-SAW bias-centric API.

This example mirrors the paper's Fig. 2-4 walkthrough:

1. build a graph (here, the scaled-down stand-in for the Amazon dataset);
2. pick an algorithm from the zoo (unbiased neighbor sampling) or write your
   own by subclassing ``SamplingProgram`` with the three bias functions;
3. run thousands of sampling instances on the simulated GPU and inspect the
   sampled subgraphs and the performance counters.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_dataset, graph_stats, sample_graph
from repro.algorithms import UnbiasedNeighborSampling
from repro.api.bias import EdgePool, SamplingProgram


class DegreeBiasedSampling(SamplingProgram):
    """A custom program: bias neighbor selection by the neighbor's degree.

    This is the whole user-facing surface of C-SAW -- three small functions
    around *bias* (here only ``edge_bias`` needs overriding).
    """

    name = "degree_biased_sampling"

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        return edges.neighbor_degrees().astype(float) + 1.0

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        # Do not revisit vertices sampled at earlier depths.
        return edges.instance.unvisited(sampled)


def main() -> None:
    graph = generate_dataset("AM", seed=7, weighted=True)
    stats = graph_stats(graph)
    print(f"Graph: {graph}")
    print(f"  avg degree {stats.avg_degree:.2f}, max degree {stats.max_degree}, "
          f"degree Gini {stats.degree_gini:.2f}")

    # --- built-in algorithm ------------------------------------------------
    program = UnbiasedNeighborSampling()
    config = program.default_config(depth=2, neighbor_size=2, seed=1)
    seeds = list(range(256))
    result = sample_graph(graph, program, seeds=seeds, config=config)
    print(f"\n[{program.name}] {result.num_instances} instances")
    print(f"  sampled edges        : {result.total_sampled_edges}")
    print(f"  simulated kernel time: {result.kernel_time() * 1e3:.3f} ms")
    print(f"  throughput           : {result.seps() / 1e6:.1f} million sampled edges/s")
    print(f"  mean SELECT iterations: {result.mean_iterations():.2f}")

    first = result.samples[0]
    print(f"  instance 0 sampled {first.num_edges} edges, e.g. {first.edges[:4].tolist()}")

    # --- custom program ----------------------------------------------------
    custom = DegreeBiasedSampling()
    custom_result = sample_graph(graph, custom, seeds=seeds, config=config)
    print(f"\n[{custom.name}] sampled edges: {custom_result.total_sampled_edges}, "
          f"throughput {custom_result.seps() / 1e6:.1f} MSEPS")

    # High-degree-biased sampling should touch hubs more often.
    mean_degree_uniform = float(np.mean(graph.degrees[result.all_edges()[:, 1]]))
    mean_degree_biased = float(np.mean(graph.degrees[custom_result.all_edges()[:, 1]]))
    print(f"  mean sampled-neighbor degree: uniform {mean_degree_uniform:.1f} "
          f"vs degree-biased {mean_degree_biased:.1f}")


if __name__ == "__main__":
    main()
