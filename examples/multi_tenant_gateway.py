"""Multi-tenant gateway example: result cache, quotas and priorities.

Starts a :class:`~repro.service.server.SamplingService` with the gateway
configured -- a deterministic result cache plus per-tenant token-bucket
quotas -- and walks three tenants through it:

* ``analytics`` re-runs the same nightly queries: after the first pass,
  every repeat is a bit-identical cache hit that never touches a worker;
* ``greedy`` submits faster than its quota refills: the overflow is shed
  at the door with a typed ``AdmissionRejected`` carrying a retry-after
  hint (its well-behaved retries sleep the hint out);
* ``interactive`` has no quota and higher priority; its requests keep
  flowing while greedy is being shed.

    PYTHONPATH=src python examples/multi_tenant_gateway.py
    PYTHONPATH=src python examples/multi_tenant_gateway.py --smoke

``--smoke`` is the CI mode: asserts cache hits are bit-identical, sheds
happen and land only on the greedy tenant, and the shutdown leaks nothing;
exits non-zero on any failure.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.graph.generators import powerlaw_graph
from repro.service import (
    AdmissionRejected,
    SamplingClient,
    SamplingService,
    TenantQuota,
    leaked_segments,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: assert cache/shed/tenant behaviour, "
                             "non-zero exit on failure")
    args = parser.parse_args()

    num_vertices = 5_000
    graph = powerlaw_graph(num_vertices, avg_degree=8, seed=1)
    failures = []

    print(f"starting gateway-enabled service on {graph} ...")
    service = SamplingService(
        num_workers=2, mode="thread", batch_window_s=0.002,
        cache_bytes=32 * 1024 * 1024,
        # A budget this small admits one burst and then sheds: micro-graph
        # requests predict microscopic costs, so the demo quota must be
        # microscopic too.
        quotas={"greedy": TenantQuota(rate=1e-7, burst=1e-6)},
    )
    prefix = service.store.prefix
    try:
        service.load_graph("social", graph)
        client = SamplingClient(service)
        rng = np.random.default_rng(3)
        nightly = [rng.integers(0, num_vertices, 4).tolist()
                   for _ in range(10)]

        # -- analytics: repeated nightly queries hit the cache ---------- #
        first_pass = [
            client.sample("social", "node2vec", seeds, depth=6, seed=11,
                          program_kwargs={"p": 2.0, "q": 0.5},
                          tenant="analytics", timeout=120)
            for seeds in nightly
        ]
        second_pass = [
            client.sample("social", "node2vec", seeds, depth=6, seed=11,
                          program_kwargs={"p": 2.0, "q": 0.5},
                          tenant="analytics", timeout=120)
            for seeds in nightly
        ]
        hits = sum(1 for r in second_pass if r.stats["cache_hit"])
        print(f"  analytics: {len(first_pass)} fresh + {hits}/"
              f"{len(second_pass)} cache hits on the re-run")
        if hits != len(second_pass):
            failures.append(f"only {hits}/{len(second_pass)} re-runs hit")
        for fresh, hit in zip(first_pass, second_pass):
            for a, b in zip(fresh.samples, hit.samples):
                if not (np.array_equal(a.seeds, b.seeds)
                        and np.array_equal(a.edges, b.edges)):
                    failures.append("a cache hit was not bit-identical")
                    break

        # -- greedy: overflow shed with a retry-after hint -------------- #
        sheds = 0
        for i in range(8):
            try:
                client.sample("social", "simple_random_walk", [i * 11],
                              depth=6, seed=5, tenant="greedy", timeout=120)
            except AdmissionRejected as exc:
                sheds += 1
                if i == 1:  # print the first rejection's shape once
                    print(f"  greedy: shed ({exc.reason}), retry in "
                          f"{min(exc.retry_after_s, 999):.1f}s, predicted "
                          f"cost {exc.predicted_cost_s:.2e} cost-s")
        print(f"  greedy: {8 - sheds} admitted, {sheds} shed at the door")
        if sheds == 0:
            failures.append("the greedy tenant was never shed")

        # -- interactive: unlimited, higher priority, unaffected -------- #
        interactive = [
            client.sample("social", "simple_random_walk",
                          rng.integers(0, num_vertices, 4).tolist(),
                          depth=6, seed=5, tenant="interactive", priority=5,
                          timeout=120)
            for _ in range(10)
        ]
        print(f"  interactive: {len(interactive)} requests, all "
              f"{'ok' if all(r.ok for r in interactive) else 'NOT ok'}")
        if not all(r.ok for r in interactive):
            failures.append("an interactive request failed")

        snap = service.stats()
        print("  tenants:", snap.get("tenants"))
        print(f"  cache: hit-rate {snap.get('cache_hit_rate', 0.0):.2f}, "
              f"shed-rate {snap.get('shed_rate', 0.0):.2f}")
        if args.smoke:
            tenants = snap.get("tenants", {})
            if tenants.get("greedy", {}).get("shed", 0) != sheds:
                failures.append("shed count not attributed to greedy")
            if tenants.get("interactive", {}).get("shed", 0):
                failures.append("the interactive tenant was shed")
            if "tenant=\"interactive\"" not in service.metrics_text():
                failures.append("tenant labels missing from Prometheus dump")
    finally:
        service.shutdown()

    leaked = leaked_segments(prefix)
    if leaked:
        failures.append(f"leaked shared-memory segments: {leaked}")

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
