#!/usr/bin/env python
"""Node2vec walk generation with dynamic (second-order) biases.

Node2vec is the paper's flagship example of a *dynamic* bias: the transition
probability of a neighbor depends on where the walker came from, so no alias
table can be precomputed and the selection probability must be built on the
fly -- exactly what C-SAW's inverse-transform SELECT does.

The example generates walk corpora for two (p, q) settings and shows how the
parameters steer the walks between local (BFS-like) and outward (DFS-like)
exploration, which is what downstream embedding training relies on.

Run with:  python examples/node2vec_walks.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_dataset, sample_graph
from repro.algorithms import Node2Vec


def walk_statistics(edges_per_instance) -> tuple[float, float]:
    """Return (return rate, distinct-vertex rate) across walks."""
    return_rates, distinct_rates = [], []
    for sample in edges_per_instance:
        if sample.num_edges < 2:
            continue
        path = [int(sample.edges[0, 0])] + [int(v) for v in sample.edges[:, 1]]
        returns = sum(1 for i in range(2, len(path)) if path[i] == path[i - 2])
        return_rates.append(returns / max(len(path) - 2, 1))
        distinct_rates.append(len(set(path)) / len(path))
    return float(np.mean(return_rates)), float(np.mean(distinct_rates))


def main() -> None:
    graph = generate_dataset("WG", seed=5, weighted=True)   # web-graph-like stand-in
    seeds = list(range(200))
    walk_length = 12

    for label, p, q in [("BFS-like (p=0.25, q=4)", 0.25, 4.0),
                        ("DFS-like (p=4, q=0.25)", 4.0, 0.25)]:
        program = Node2Vec(p=p, q=q)
        config = program.default_config(depth=walk_length, seed=2)
        result = sample_graph(graph, program, seeds=seeds, config=config)
        return_rate, distinct_rate = walk_statistics(result.samples)
        print(f"{label}")
        print(f"  walks: {result.num_instances}, steps sampled: {result.total_sampled_edges}")
        print(f"  simulated throughput: {result.seps() / 1e6:.1f} MSEPS")
        print(f"  immediate-return rate: {return_rate:.3f}")
        print(f"  distinct-vertex fraction per walk: {distinct_rate:.3f}\n")

    print("A low p (return parameter) keeps walks close to home (higher return rate);")
    print("a low q (in-out parameter) pushes walks outward (more distinct vertices).")


if __name__ == "__main__":
    main()
