#!/usr/bin/env python
"""Personalised PageRank estimation with random walks with restart.

Personalised PageRank (PPR) is one of the paper's motivating applications for
massive multi-source random walk: the PPR score of vertex ``v`` with respect
to a source ``s`` is the stationary probability that a walk from ``s`` -- which
restarts at ``s`` with probability alpha at every step -- is found at ``v``.
Monte-Carlo estimation simply runs many such walks and counts visit
frequencies.

This example runs thousands of restart walks through the C-SAW framework and
checks the estimate against the exact PPR computed by power iteration on the
transition matrix (feasible at this scale), demonstrating an end-to-end
application built on the public API.

Run with:  python examples/ppr_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_dataset, sample_graph
from repro.algorithms import RandomWalkWithRestart


def exact_ppr(graph, source: int, alpha: float, iterations: int = 100) -> np.ndarray:
    """Power-iteration PPR on the row-normalised adjacency matrix."""
    n = graph.num_vertices
    scores = np.zeros(n)
    scores[source] = 1.0
    restart = np.zeros(n)
    restart[source] = 1.0
    out_degree = np.maximum(graph.degrees, 1)
    for _ in range(iterations):
        spread = np.zeros(n)
        contributions = scores / out_degree
        np.add.at(spread, graph.col_idx, np.repeat(contributions, graph.degrees))
        scores = alpha * restart + (1 - alpha) * spread
    return scores / scores.sum()


def main() -> None:
    alpha = 0.2
    graph = generate_dataset("CP", seed=4)          # citation-network-like stand-in
    source = int(np.argmax(graph.degrees))          # a well-connected source vertex
    num_walks = 800
    walk_length = 20

    program = RandomWalkWithRestart(restart_probability=alpha, seed=3)
    config = program.default_config(depth=walk_length, seed=3)
    result = sample_graph(graph, program, seeds=[source] * num_walks, config=config)

    visits = np.zeros(graph.num_vertices)
    for sample in result.samples:
        if sample.num_edges:
            np.add.at(visits, sample.edges[:, 1], 1.0)
    visits[source] += num_walks                      # the walks start at the source
    estimate = visits / visits.sum()

    exact = exact_ppr(graph, source, alpha)
    top_exact = np.argsort(exact)[::-1][:10]
    top_estimate = np.argsort(estimate)[::-1][:10]
    overlap = len(set(top_exact.tolist()) & set(top_estimate.tolist()))

    print(f"Graph: {graph}")
    print(f"Source vertex {source} (degree {graph.degree(source)}), alpha = {alpha}")
    print(f"Walks: {num_walks} x {walk_length} steps, "
          f"{result.total_sampled_edges} sampled edges, "
          f"{result.seps() / 1e6:.1f} MSEPS simulated throughput")
    print(f"Top-10 PPR overlap between Monte-Carlo estimate and power iteration: {overlap}/10")
    print(f"L1 error of the estimate: {np.abs(estimate - exact).sum():.3f}")


if __name__ == "__main__":
    main()
