"""Trace one sampling request end to end and dump a Chrome trace.

Enables telemetry, serves a deepwalk request through the sampling service,
prints the request's span tree plus the service's metrics snapshot, and
writes the trace as a Chrome ``trace_event`` file -- open it in
``chrome://tracing`` or https://ui.perfetto.dev.

    PYTHONPATH=src python examples/trace_a_request.py
    PYTHONPATH=src python examples/trace_a_request.py --out my_trace.json
    PYTHONPATH=src python examples/trace_a_request.py --smoke

``--smoke`` is the CI mode: asserts the span tree is connected, the
response reports its latency split and kernel-cache traffic, and the trace
file parses; exits non-zero on any failure.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import telemetry
from repro.graph.generators import powerlaw_graph
from repro.service import SamplingClient, SamplingService
from repro.telemetry import format_tree, is_connected, write_chrome_trace


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace_a_request.json",
                        help="Chrome trace output file (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="assert instead of just printing (CI mode)")
    args = parser.parse_args()

    telemetry.enable()
    service = SamplingService(num_workers=2, mode="thread",
                              batch_window_s=0.002)
    try:
        service.load_graph("demo", powerlaw_graph(5_000, 8.0, seed=7))
        client = SamplingClient(service)

        # Warm-up request: pays the one-time kernel specialisation ...
        client.sample("demo", "deepwalk", list(range(100)), depth=10,
                      seed=1, timeout=60)
        # ... so the traced request shows the cached hot path.
        response = client.sample("demo", "deepwalk", list(range(100, 200)),
                                 depth=10, seed=1, timeout=60)

        trace_id = response.stats["trace_id"]
        records = telemetry.spans_for(trace_id)
        print("request stats:")
        for key in ("latency_s", "queue_wait_s", "execute_s", "step_tier",
                    "kernel_cache_hits", "kernel_cache_misses"):
            print("  %-20s %s" % (key, response.stats.get(key)))
        print("\nspan tree (trace %s):" % trace_id)
        print(format_tree(records))

        path = write_chrome_trace(records, args.out)
        print("\nChrome trace written to %s -- open it in chrome://tracing"
              % path)

        print("\nservice stats snapshot:")
        for key, value in sorted(service.stats().items()):
            print("  %-24s %s" % (key, value))

        if args.smoke:
            assert is_connected(records, trace_id), "span tree disconnected"
            assert response.stats["execute_s"] > 0.0
            assert response.stats["queue_wait_s"] >= 0.0
            assert response.stats["kernel_cache_hits"] >= 1.0, (
                "second identical request should hit the kernel cache")
            events = json.loads(path.read_text())["traceEvents"]
            assert any(e.get("ph") == "X" for e in events)
            assert "repro_request_latency_s" in service.metrics_text()
            print("\nsmoke OK: connected trace, latency split, cache hit")
    finally:
        service.shutdown()
        telemetry.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
