#!/usr/bin/env python
"""GNN minibatch subgraph sampling (the GraphSAINT use case).

The paper's introduction motivates sampling with graph-learning workloads:
GCN-style training needs many small subgraphs drawn from a large graph.  This
example uses multi-dimensional random walk (frontier sampling) -- the sampler
GraphSAINT uses -- to produce training subgraphs, and compares the simulated
C-SAW throughput against the GraphSAINT-like CPU baseline, i.e. a miniature
version of the paper's Fig. 9(b).

Run with:  python examples/gnn_subgraph_sampling.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_dataset, sample_graph
from repro.algorithms import MultiDimensionalRandomWalk
from repro.baselines import GraphSAINTSampler
from repro.graph.builder import from_edge_list


def induced_subgraph_summary(edges: np.ndarray) -> str:
    """Small helper describing one sampled training subgraph."""
    if edges.shape[0] == 0:
        return "empty subgraph"
    vertices = np.unique(edges)
    sub = from_edge_list(edges, num_vertices=int(edges.max()) + 1)
    return f"{vertices.size} vertices, {sub.num_edges} edges"


def main() -> None:
    graph = generate_dataset("RE", seed=3, weighted=True)   # Reddit-like stand-in
    num_subgraphs = 64          # paper: 2,000 sampler instances
    frontier_size = 300         # paper: 2,000 walkers per instance
    steps = 12

    rng = np.random.default_rng(0)
    pools = [rng.integers(0, graph.num_vertices, frontier_size).tolist()
             for _ in range(num_subgraphs)]

    # --- C-SAW on the simulated GPU -----------------------------------------
    program = MultiDimensionalRandomWalk()
    config = program.default_config(depth=steps, seed=1)
    csaw = sample_graph(graph, program, seeds=pools, config=config)
    print(f"C-SAW frontier sampling: {csaw.total_sampled_edges} edges across "
          f"{num_subgraphs} training subgraphs")
    print(f"  simulated throughput: {csaw.seps() / 1e6:.1f} MSEPS")
    for i in range(3):
        print(f"  subgraph {i}: {induced_subgraph_summary(csaw.samples[i].edges)}")

    # --- GraphSAINT-like CPU baseline ---------------------------------------
    saint = GraphSAINTSampler(graph, seed=1)
    baseline = saint.run(num_instances=num_subgraphs, frontier_size=frontier_size,
                         steps=steps)
    print(f"\nGraphSAINT-like CPU sampler: {baseline.total_sampled_edges} edges")
    print(f"  simulated throughput: {baseline.seps() / 1e6:.1f} MSEPS")
    print(f"\nC-SAW speedup over the CPU sampler: "
          f"{csaw.seps() / baseline.seps():.1f}x  (paper Fig. 9(b): ~8x)")


if __name__ == "__main__":
    main()
