"""Tests for the reference oracles and the KnightKing / GraphSAINT baselines."""

import numpy as np
import pytest

from repro.baselines.graphsaint import GraphSAINTSampler
from repro.baselines.knightking import KnightKingEngine
from repro.baselines.reference import (
    reference_neighbor_sampling,
    reference_random_walk,
    reference_select_with_replacement,
    reference_select_without_replacement,
)
from repro.gpusim.device import POWER9_SPEC


class TestReferenceOracles:
    def test_with_replacement_distribution(self):
        rng = np.random.default_rng(0)
        biases = np.array([1.0, 3.0])
        picks = reference_select_with_replacement(biases, 10000, rng)
        assert abs(np.mean(picks == 1) - 0.75) < 0.03

    def test_without_replacement_distinct(self):
        rng = np.random.default_rng(1)
        picks = reference_select_without_replacement(np.ones(6), 6, rng)
        assert sorted(picks.tolist()) == list(range(6))

    def test_without_replacement_too_many(self):
        with pytest.raises(ValueError):
            reference_select_without_replacement(np.array([1.0, 0.0]), 2,
                                                 np.random.default_rng(0))

    def test_random_walk_path_valid(self, toy_graph):
        rng = np.random.default_rng(2)
        path = reference_random_walk(toy_graph, 8, 10, rng)
        assert path[0] == 8
        for a, b in zip(path, path[1:]):
            assert toy_graph.has_edge(int(a), int(b))

    def test_neighbor_sampling_no_revisit(self, toy_graph):
        rng = np.random.default_rng(3)
        edges, visited = reference_neighbor_sampling(toy_graph, 8, 2, 3, rng)
        assert 8 in visited
        targets = edges[:, 1].tolist()
        # every sampled edge starts from a visited vertex
        assert all(int(src) in visited for src in edges[:, 0])
        assert len(visited) <= len(targets) + 1


class TestKnightKing:
    def test_walks_are_valid_paths(self, small_weighted_graph):
        engine = KnightKingEngine(small_weighted_graph, biased=True, seed=0)
        result = engine.run_walks(list(range(10)), walk_length=8)
        assert len(result.walks) == 10
        for walk in result.walks:
            assert walk[0] in range(10)
            for a, b in zip(walk, walk[1:]):
                assert small_weighted_graph.has_edge(int(a), int(b))

    def test_unbiased_mode_on_unweighted_graph(self, small_powerlaw_graph):
        engine = KnightKingEngine(small_powerlaw_graph, biased=True, seed=0)
        assert engine.biased is False  # silently degrades without weights
        result = engine.run_walks([0, 1, 2], walk_length=5)
        assert result.total_sampled_edges > 0

    def test_seps_and_times_positive(self, small_weighted_graph):
        engine = KnightKingEngine(small_weighted_graph, biased=True, seed=1)
        result = engine.run_walks(list(range(20)), walk_length=10, num_walkers=40)
        assert result.kernel_time() > 0
        assert result.preprocessing_time() > 0
        assert result.seps() > 0
        assert result.total_sampled_edges <= 40 * 10

    def test_walker_expansion(self, small_weighted_graph):
        engine = KnightKingEngine(small_weighted_graph, seed=2)
        result = engine.run_walks([0, 1], walk_length=3, num_walkers=7)
        assert len(result.walks) == 7

    def test_invalid_arguments(self, small_weighted_graph):
        engine = KnightKingEngine(small_weighted_graph, seed=3)
        with pytest.raises(ValueError):
            engine.run_walks([], walk_length=5)
        with pytest.raises(ValueError):
            engine.run_walks([0], walk_length=0)
        with pytest.raises(ValueError):
            engine.run_walks([10**7], walk_length=5)

    def test_biased_walk_distribution(self, toy_graph):
        """With one overwhelming edge weight, the walker should take it."""
        weights = np.ones(toy_graph.num_edges)
        start, end = toy_graph.edge_range(8)
        weights[start] = 1e6
        g = toy_graph.with_weights(weights)
        target = int(g.col_idx[start])
        engine = KnightKingEngine(g, biased=True, seed=4)
        result = engine.run_walks([8] * 100, walk_length=1)
        first_steps = [int(w[1]) for w in result.walks if len(w) > 1]
        assert np.mean([s == target for s in first_steps]) > 0.95


class TestGraphSAINT:
    def test_sampled_edges_valid(self, small_powerlaw_graph):
        sampler = GraphSAINTSampler(small_powerlaw_graph, seed=0)
        result = sampler.run(num_instances=5, frontier_size=20, steps=15)
        assert len(result.edges_per_instance) == 5
        assert result.total_sampled_edges > 0
        for edges in result.edges_per_instance:
            for src, dst in edges:
                assert small_powerlaw_graph.has_edge(int(src), int(dst))

    def test_seed_pools_respected(self, small_powerlaw_graph):
        sampler = GraphSAINTSampler(small_powerlaw_graph, seed=1)
        result = sampler.run(num_instances=2, frontier_size=4, steps=5,
                             seeds=[7, 8, 9, 10])
        sources = set(result.edges_per_instance[0][:, 0].tolist())
        assert sources <= set(range(small_powerlaw_graph.num_vertices))

    def test_metrics_positive(self, small_powerlaw_graph):
        sampler = GraphSAINTSampler(small_powerlaw_graph, seed=2)
        result = sampler.run(num_instances=8, frontier_size=16, steps=10)
        assert result.kernel_time(POWER9_SPEC) > 0
        assert result.seps() > 0

    def test_invalid_arguments(self, small_powerlaw_graph):
        sampler = GraphSAINTSampler(small_powerlaw_graph)
        with pytest.raises(ValueError):
            sampler.run(num_instances=0, frontier_size=4, steps=4)
        with pytest.raises(ValueError):
            sampler.run(num_instances=1, frontier_size=0, steps=4)
