"""Unit tests for the sharded cluster: router, shard runtime, coordinator."""

import numpy as np
import pytest

from repro.api.instance import InstanceState, make_instances
from repro.algorithms.registry import default_config
from repro.distributed import (
    ClusterTransportError,
    MigrationRouter,
    ShardRuntime,
    ShardedSamplingCluster,
    WalkerEnvelope,
    bucket_by_shard,
    routing_vertex,
)
from repro.graph.generators import powerlaw_graph, ring_graph
from repro.graph.partition import partition_bounds
from repro.service.store import SharedGraphStore, leaked_segments


def envelope(instance_id: int, vertex: int) -> WalkerEnvelope:
    return WalkerEnvelope(
        instance=InstanceState(
            instance_id=instance_id,
            frontier_pool=np.array([vertex], dtype=np.int64),
        )
    )


class TestRouter:
    def test_routing_vertex_is_first_pool_vertex(self):
        inst = InstanceState(instance_id=0, frontier_pool=np.array([5, 2, 9]))
        assert routing_vertex(inst) == 5

    def test_bucket_by_shard_vectorised(self):
        bounds = np.array([0, 10, 20, 30], dtype=np.int64)
        envelopes = [envelope(i, v) for i, v in enumerate([3, 15, 25, 9, 29])]
        buckets = bucket_by_shard(envelopes, bounds)
        assert sorted(buckets) == [0, 1, 2]
        assert [env.instance_id for env in buckets[0]] == [0, 3]
        assert [env.instance_id for env in buckets[1]] == [1]
        assert [env.instance_id for env in buckets[2]] == [2, 4]

    def test_bucket_empty(self):
        assert bucket_by_shard([], np.array([0, 10])) == {}

    def test_exchange_merges_in_source_order(self):
        router = MigrationRouter(3)
        outboxes = [
            {1: [envelope(0, 12)]},
            {},
            {1: [envelope(1, 14)], 0: [envelope(2, 3)]},
        ]
        inboxes = router.exchange(outboxes)
        assert [env.instance_id for env in inboxes[1]] == [0, 1]
        assert [env.instance_id for env in inboxes[0]] == [2]
        assert router.migrations == 3

    def test_exchange_rejects_self_routing(self):
        router = MigrationRouter(2)
        with pytest.raises(ValueError, match="itself"):
            router.exchange([{0: [envelope(0, 1)]}, {}])

    def test_exchange_rejects_unknown_destination(self):
        router = MigrationRouter(2)
        with pytest.raises(ValueError, match="unknown shard"):
            router.exchange([{7: [envelope(0, 1)]}, {}])

    def test_exchange_requires_one_outbox_per_shard(self):
        with pytest.raises(ValueError, match="one outbox per shard"):
            MigrationRouter(2).exchange([{}])


class TestShardRuntime:
    @pytest.fixture(scope="class")
    def graph(self):
        return powerlaw_graph(40, 6.0, seed=3)

    def test_owned_range_and_admit(self, graph):
        bounds = partition_bounds(graph, 2)
        shard = ShardRuntime(0, graph, bounds, "deepwalk", {}, default_config("deepwalk"))
        assert shard.lo == 0 and shard.hi == int(bounds[1])
        shard.admit([envelope(0, 1), envelope(1, 2)])
        assert shard.resident_count() == 2
        assert shard.active_count() == 2

    def test_double_admit_rejected(self, graph):
        bounds = partition_bounds(graph, 2)
        shard = ShardRuntime(0, graph, bounds, "deepwalk", {}, default_config("deepwalk"))
        shard.admit([envelope(0, 1)])
        with pytest.raises(ValueError, match="already resident"):
            shard.admit([envelope(0, 1)])

    def test_step_emigrates_walkers_leaving_the_range(self, graph):
        bounds = partition_bounds(graph, 4)
        config = default_config("deepwalk")
        shard = ShardRuntime(0, graph, bounds, "deepwalk", {}, config)
        shard.admit([envelope(i, v) for i, v in enumerate(range(0, int(bounds[1])))])
        outboxes = shard.step(0)
        for dst, envelopes in outboxes.items():
            assert dst != 0
            for env in envelopes:
                assert bounds[dst] <= routing_vertex(env.instance) < bounds[dst + 1]
        # Every walker is either still resident or in an outbox.
        shipped = sum(len(v) for v in outboxes.values())
        assert shard.resident_count() + shipped == int(bounds[1])
        assert shard.emigrated == shipped

    def test_invalid_shard_index(self, graph):
        bounds = partition_bounds(graph, 2)
        with pytest.raises(ValueError, match="outside the partitioning|outside"):
            ShardRuntime(5, graph, bounds, "deepwalk", {}, default_config("deepwalk"))

    def test_kernels_record_one_launch_per_active_step(self, graph):
        bounds = partition_bounds(graph, 1)
        config = default_config("deepwalk")
        shard = ShardRuntime(0, graph, bounds, "deepwalk", {}, config)
        shard.admit([envelope(0, 1)])
        for depth in range(config.depth):
            shard.step(depth)
        assert len(shard.kernels) == shard.steps
        assert all(k.cost.sampled_edges >= 0 for k in shard.kernels)


class TestCoordinator:
    @pytest.fixture(scope="class")
    def graph(self):
        return powerlaw_graph(60, 6.0, seed=11)

    def test_invalid_arguments(self, graph):
        with pytest.raises(ValueError, match="transport"):
            ShardedSamplingCluster(graph, "deepwalk", transport="carrier-pigeon")
        with pytest.raises(ValueError, match="num_shards"):
            ShardedSamplingCluster(graph, "deepwalk", num_shards=0)

    def test_shard_count_collapses_on_tiny_graphs(self):
        graph = ring_graph(3)
        cluster = ShardedSamplingCluster(graph, "deepwalk", num_shards=8)
        assert cluster.num_shards == 3

    def test_early_termination_stops_epochs(self):
        # A star graph's leaves dead-end immediately under NEXT_LAYER when
        # the centre is never revisited; walks die well before full depth.
        from repro.graph.generators import star_graph

        graph = star_graph(8)  # directed leaves
        cluster = ShardedSamplingCluster(
            graph, "unbiased_neighbor_sampling", num_shards=2
        )
        result = cluster.run(list(range(8)))
        config = default_config("unbiased_neighbor_sampling")
        assert result.epochs <= config.depth

    def test_result_reassembly_order_and_metadata(self, graph):
        cluster = ShardedSamplingCluster(graph, "deepwalk", num_shards=4)
        seeds = [5, 1, 9, 3]
        result = cluster.run(seeds)
        assert [s.instance_id for s in result.result.samples] == [0, 1, 2, 3]
        for sample, seed in zip(result.result.samples, seeds):
            assert list(sample.seeds) == [seed]
        assert result.result.metadata["sharded"] is True
        assert result.result.cost.kernel_launches == result.epochs

    def test_seed_validation(self, graph):
        cluster = ShardedSamplingCluster(graph, "deepwalk", num_shards=2)
        with pytest.raises(ValueError):
            cluster.run([graph.num_vertices + 5])

    def test_num_instances_round_robin(self, graph):
        cluster = ShardedSamplingCluster(graph, "deepwalk", num_shards=2)
        result = cluster.run([1, 2], num_instances=6)
        assert result.result.num_instances == 6

    def test_makespan_and_seps(self, graph):
        result = ShardedSamplingCluster(graph, "deepwalk", num_shards=2).run(
            list(range(8))
        )
        busy = result.shard_busy_times()
        assert len(busy) == 2
        assert result.makespan() == max(busy)
        assert result.seps() > 0

    def test_edge_balanced_partitioning(self, graph):
        cluster = ShardedSamplingCluster(
            graph, "deepwalk", num_shards=4, balance="edges"
        )
        reference = ShardedSamplingCluster(graph, "deepwalk", num_shards=1)
        seeds = list(range(10))
        sharded = cluster.run(seeds)
        solo = reference.run(seeds)
        assert all(
            np.array_equal(a.edges, b.edges)
            for a, b in zip(sharded.result.samples, solo.result.samples)
        )


class TestMultiprocessTransport:
    def test_shard_error_propagates(self):
        graph = powerlaw_graph(30, 5.0, seed=2)
        cluster = ShardedSamplingCluster(
            graph, "deepwalk", num_shards=2, transport="multiprocess",
            mp_context="fork",
        )
        # Sabotage after construction: an unknown algorithm only explodes
        # inside the shard process, at runtime construction.
        cluster.algorithm = "definitely-not-an-algorithm"
        with pytest.raises(ClusterTransportError):
            cluster.run([1, 2])

    def test_no_shared_memory_leak(self):
        prefix = "shardleak"
        store = SharedGraphStore(prefix=prefix)
        graph = powerlaw_graph(30, 5.0, seed=2)
        cluster = ShardedSamplingCluster(
            graph, "deepwalk", num_shards=2, transport="multiprocess",
            mp_context="fork", store=store, graph_name="g",
        )
        result = cluster.run([1, 2, 3])
        assert result.result.total_sampled_edges > 0
        store.close()
        assert leaked_segments(prefix) == []

    def test_reuses_already_published_graph(self):
        store = SharedGraphStore()
        graph = powerlaw_graph(30, 5.0, seed=2)
        store.put("g", graph)
        cluster = ShardedSamplingCluster(
            graph, "deepwalk", num_shards=2, transport="multiprocess",
            mp_context="fork", store=store, graph_name="g",
        )
        cluster.run([1, 2])
        # The cluster must not release a graph it did not publish.
        assert "g" in store.names()
        store.close()

    def test_rejects_mismatched_stored_graph(self):
        """A name collision must not serve shards a different graph."""
        store = SharedGraphStore()
        store.put("g", powerlaw_graph(30, 5.0, seed=2))
        other = powerlaw_graph(60, 5.0, seed=9)
        cluster = ShardedSamplingCluster(
            other, "deepwalk", num_shards=2, transport="multiprocess",
            mp_context="fork", store=store, graph_name="g",
        )
        with pytest.raises(ValueError, match="does not match"):
            cluster.run([1, 2])
        store.close()
