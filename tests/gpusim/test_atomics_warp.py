"""Tests for atomic primitives and the warp execution abstraction."""

import numpy as np
import pytest

from repro.gpusim.atomics import (
    AtomicCounter,
    atomic_add,
    atomic_cas_bitmap,
    count_word_conflicts,
)
from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.gpusim.warp import WARP_SIZE, WarpExecutor


class TestConflictCounting:
    def test_no_conflicts_for_distinct_words(self):
        assert count_word_conflicts(np.array([0, 1, 2, 3])) == 0

    def test_all_same_word(self):
        assert count_word_conflicts(np.array([5, 5, 5, 5])) == 3

    def test_mixed(self):
        assert count_word_conflicts(np.array([0, 0, 1, 2, 2, 2])) == 3

    def test_empty(self):
        assert count_word_conflicts(np.array([])) == 0


class TestAtomicAdd:
    def test_returns_old_values_serialised(self):
        array = np.zeros(4, dtype=np.int64)
        old = atomic_add(array, np.array([1, 1, 1]), 1)
        assert list(old) == [0, 1, 2]
        assert array[1] == 3

    def test_cost_charges_conflicts(self):
        cost = CostModel()
        array = np.zeros(4, dtype=np.int64)
        atomic_add(array, np.array([0, 0, 1]), 1, cost)
        assert cost.atomic_ops == 3
        assert cost.atomic_conflicts == 1


class TestAtomicCasBitmap:
    def test_first_set_succeeds_second_detects(self):
        words = np.zeros(2, dtype=np.uint8)
        was_set, conflicts = atomic_cas_bitmap(words, np.array([0, 0]), np.array([3, 3]))
        assert list(was_set) == [False, True]
        assert conflicts == 1
        assert words[0] == 8

    def test_distinct_bits_no_collision(self):
        words = np.zeros(4, dtype=np.uint8)
        was_set, conflicts = atomic_cas_bitmap(
            words, np.array([0, 1, 2, 3]), np.array([0, 0, 0, 0])
        )
        assert not was_set.any()
        assert conflicts == 0

    def test_invalid_bit_offset(self):
        with pytest.raises(ValueError):
            atomic_cas_bitmap(np.zeros(1, dtype=np.uint8), np.array([0]), np.array([8]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            atomic_cas_bitmap(np.zeros(1, dtype=np.uint8), np.array([0, 1]), np.array([0]))


class TestAtomicCounter:
    def test_fetch_add_semantics(self):
        counter = AtomicCounter()
        assert counter.fetch_add(2) == 0
        assert counter.fetch_add(3) == 2
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_cost_charged(self):
        cost = CostModel()
        AtomicCounter().fetch_add(1, cost)
        assert cost.atomic_ops == 1


class TestWarpExecutor:
    def make_warp(self):
        return WarpExecutor(warp_id=7, cost=CostModel(), rng=CounterRNG(3))

    def test_lane_count_capped_at_warp_size(self):
        warp = self.make_warp()
        assert warp.lanes(100).size == WARP_SIZE
        assert warp.lanes(5).size == 5

    def test_divergent_loop_charges_max_and_sum(self):
        warp = self.make_warp()
        warp.charge_divergent_loop(np.array([1, 3, 2]))
        assert warp.cost.warp_steps == 3
        assert warp.cost.lane_ops == 6

    def test_divergent_loop_empty(self):
        warp = self.make_warp()
        warp.charge_divergent_loop(np.array([], dtype=np.int64))
        assert warp.cost.warp_steps == 0

    def test_lane_uniform_deterministic_and_counted(self):
        warp_a = self.make_warp()
        warp_b = self.make_warp()
        lanes = np.arange(4)
        a = warp_a.lane_uniform(lanes, attempt=2)
        b = warp_b.lane_uniform(lanes, attempt=2)
        assert np.array_equal(a, b)
        assert warp_a.cost.rng_draws == 4
        assert np.all((a >= 0) & (a < 1))

    def test_gather_global_charges_bytes(self):
        warp = self.make_warp()
        warp.gather_global(512)
        assert warp.cost.global_bytes == 512
