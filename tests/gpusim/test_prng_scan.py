"""Tests for the counter RNG and the Kogge-Stone scans."""

import numpy as np
import pytest

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG, splitmix64
from repro.gpusim.scan import (
    kogge_stone_exclusive,
    kogge_stone_inclusive,
    warp_prefix_sum,
)


class TestCounterRNG:
    def test_determinism(self):
        a = CounterRNG(42)
        b = CounterRNG(42)
        assert a.uniform(1, 2, 3) == b.uniform(1, 2, 3)
        assert np.array_equal(a.uniform(np.arange(10), 5), b.uniform(np.arange(10), 5))

    def test_different_coordinates_differ(self):
        rng = CounterRNG(1)
        assert rng.uniform(0, 0) != rng.uniform(0, 1)
        assert rng.uniform(1, 0) != rng.uniform(0, 0)

    def test_different_seeds_differ(self):
        assert CounterRNG(1).uniform(7) != CounterRNG(2).uniform(7)

    def test_uniform_range_and_mean(self):
        rng = CounterRNG(3)
        draws = rng.uniform(np.arange(20000), 0)
        assert draws.min() >= 0.0 and draws.max() < 1.0
        assert abs(draws.mean() - 0.5) < 0.02
        assert abs(draws.std() - np.sqrt(1 / 12)) < 0.02

    def test_randint_bounds(self):
        rng = CounterRNG(4)
        values = rng.randint(3, 9, np.arange(5000))
        assert values.min() >= 3 and values.max() < 9
        assert set(np.unique(values)) == set(range(3, 9))

    def test_randint_invalid(self):
        with pytest.raises(ValueError):
            CounterRNG(0).randint(5, 5, 1)

    def test_requires_coordinates(self):
        with pytest.raises(ValueError):
            CounterRNG(0).random_u64()

    def test_derive_independent_streams(self):
        base = CounterRNG(9)
        d1, d2 = base.derive(1), base.derive(2)
        assert d1.seed != d2.seed
        assert d1.uniform(0) != d2.uniform(0)

    def test_splitmix_is_bijective_on_sample(self):
        xs = np.arange(10000, dtype=np.uint64)
        assert np.unique(splitmix64(xs)).size == xs.size


class TestScan:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 31, 32, 33, 100, 1000])
    def test_inclusive_matches_cumsum(self, n):
        rng = np.random.default_rng(n)
        values = rng.uniform(0, 10, size=n)
        assert np.allclose(kogge_stone_inclusive(values), np.cumsum(values))

    @pytest.mark.parametrize("n", [1, 4, 17, 64])
    def test_exclusive_matches_shifted_cumsum(self, n):
        values = np.arange(1.0, n + 1.0)
        expected = np.concatenate([[0.0], np.cumsum(values)[:-1]])
        assert np.allclose(kogge_stone_exclusive(values), expected)

    def test_warp_prefix_sum_shape(self):
        values = np.array([3.0, 6.0, 2.0, 2.0, 2.0])
        out = warp_prefix_sum(values)
        assert np.allclose(out, [0, 3, 9, 11, 13, 15])

    def test_cost_charging_logarithmic(self):
        cost = CostModel()
        kogge_stone_inclusive(np.ones(64), cost)
        # 64 elements -> 6 steps, 2 warp-chunks per step.
        assert cost.prefix_sum_steps == 6 * 2
        assert cost.warp_steps == 6
        assert cost.global_bytes == 64 * 8

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            kogge_stone_inclusive(np.ones((2, 2)))
