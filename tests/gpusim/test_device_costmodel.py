"""Tests for the cost model, device specs, memory pool and stream timelines."""

import pytest

from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device, POWER9_SPEC, V100_SPEC, make_device
from repro.gpusim.kernel import KernelLaunch, Stream, StreamTimeline
from repro.gpusim.memory import AllocationError, DeviceMemory, TransferEngine


class TestCostModel:
    def test_charge_and_breakdown(self):
        cost = CostModel()
        cost.charge_warp_step(10, active_lanes=16)
        cost.charge_global_bytes(9000)
        cost.charge_transfer(16_000, direction="h2d")
        cost.charge_atomics(5, 2)
        cost.kernel_launches += 2
        breakdown = cost.breakdown(V100_SPEC)
        assert breakdown.compute_time > 0
        assert breakdown.memory_time == pytest.approx(9000 / V100_SPEC.memory_bandwidth_bytes)
        assert breakdown.transfer_time == pytest.approx(16_000 / V100_SPEC.pcie_bandwidth_bytes)
        assert breakdown.launch_time == pytest.approx(2 * V100_SPEC.kernel_launch_overhead)
        assert breakdown.total >= breakdown.transfer_time

    def test_simulated_time_monotone_in_work(self):
        light, heavy = CostModel(), CostModel()
        light.charge_warp_step(10)
        heavy.charge_warp_step(10_000_000)
        assert heavy.simulated_time(V100_SPEC) > light.simulated_time(V100_SPEC)

    def test_merge_and_copy(self):
        a, b = CostModel(), CostModel()
        a.rng_draws = 5
        b.rng_draws = 7
        b.sampled_edges = 3
        a.merge(b)
        assert a.rng_draws == 12 and a.sampled_edges == 3
        c = a.copy()
        c.rng_draws = 0
        assert a.rng_draws == 12

    def test_reset(self):
        cost = CostModel()
        cost.charge_global_bytes(10)
        cost.reset()
        assert cost.global_bytes == 0
        assert cost.simulated_time(V100_SPEC) == 0.0

    def test_invalid_transfer_direction(self):
        with pytest.raises(ValueError):
            CostModel().charge_transfer(10, direction="sideways")

    def test_atomic_conflicts_cost_more(self):
        clean, contended = CostModel(), CostModel()
        clean.charge_atomics(32, 0)
        contended.charge_atomics(32, 31)
        assert contended.simulated_time(V100_SPEC) > clean.simulated_time(V100_SPEC)


class TestDevice:
    def test_make_device_kinds(self):
        assert make_device("gpu").spec.name == "V100"
        assert make_device("cpu").spec.name == "POWER9"
        with pytest.raises(ValueError):
            make_device("tpu")

    def test_specs_reflect_hardware_gap(self):
        assert V100_SPEC.memory_bandwidth_bytes > 3 * POWER9_SPEC.memory_bandwidth_bytes
        assert V100_SPEC.concurrent_warps > POWER9_SPEC.concurrent_warps

    def test_device_snapshot(self):
        device = make_device("gpu")
        device.cost.charge_global_bytes(1000)
        snap = device.snapshot()
        assert snap["device"] == "V100:0"
        assert snap["count_global_bytes"] == 1000
        device.reset()
        assert device.cost.global_bytes == 0

    def test_scaled_spec(self):
        scaled = V100_SPEC.scaled(concurrent_warps=10)
        assert scaled.concurrent_warps == 10
        assert scaled.clock_hz == V100_SPEC.clock_hz


class TestDeviceMemory:
    def test_allocate_and_release(self):
        mem = DeviceMemory(1000)
        mem.allocate("a", 600)
        assert mem.used_bytes == 600 and mem.free_bytes == 400
        assert mem.holds("a")
        mem.release("a")
        assert mem.used_bytes == 0

    def test_overflow_raises(self):
        mem = DeviceMemory(100)
        mem.allocate("a", 80)
        with pytest.raises(AllocationError):
            mem.allocate("b", 30)

    def test_duplicate_name_raises(self):
        mem = DeviceMemory(100)
        mem.allocate("a", 10)
        with pytest.raises(AllocationError):
            mem.allocate("a", 10)

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            DeviceMemory(10).release("ghost")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)


class TestTransferEngine:
    def test_transfer_time_scales_with_bytes(self):
        engine = TransferEngine(1e9)
        assert engine.transfer_time(2_000_000) > engine.transfer_time(1_000)

    def test_cost_charging(self):
        engine = TransferEngine(1e9)
        cost = CostModel()
        engine.host_to_device(5000, cost)
        engine.device_to_host(3000, cost)
        assert cost.h2d_bytes == 5000 and cost.d2h_bytes == 3000
        assert cost.partition_transfers == 1
        assert engine.transfer_count == 2


class TestKernelAndStreams:
    def test_block_fraction_slows_kernel(self):
        cost = CostModel()
        cost.charge_warp_step(1_000_000)
        full = KernelLaunch("k", cost, block_fraction=1.0, num_warp_tasks=10**9)
        half = KernelLaunch("k", cost, block_fraction=0.5, num_warp_tasks=10**9)
        assert half.duration(V100_SPEC) > full.duration(V100_SPEC)

    def test_task_limited_kernel(self):
        cost = CostModel()
        cost.charge_warp_step(1_000_000)
        few_tasks = KernelLaunch("k", cost, num_warp_tasks=4)
        many_tasks = KernelLaunch("k", cost, num_warp_tasks=4096)
        assert few_tasks.duration(V100_SPEC) > many_tasks.duration(V100_SPEC)

    def test_invalid_kernel_parameters(self):
        with pytest.raises(ValueError):
            KernelLaunch("k", CostModel(), block_fraction=0.0).duration(V100_SPEC)
        with pytest.raises(ValueError):
            KernelLaunch("k", CostModel(), num_warp_tasks=0).duration(V100_SPEC)

    def test_stream_fifo_ordering(self):
        stream = Stream(stream_id=0)
        end1 = stream.enqueue("transfer:p0", 1.0)
        end2 = stream.enqueue("kernel:p0", 2.0)
        assert end1 == pytest.approx(1.0)
        assert end2 == pytest.approx(3.0)
        assert stream.busy_time() == pytest.approx(3.0)

    def test_stream_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Stream(0).enqueue("x", -1.0)

    def test_timeline_makespan_and_events(self):
        timeline = StreamTimeline(2)
        timeline[0].enqueue("transfer:p0", 1.0)
        timeline[0].enqueue("kernel:p0", 2.0)
        timeline[1].enqueue("kernel:p1", 1.5)
        assert timeline.makespan == pytest.approx(3.0)
        assert timeline.least_loaded().stream_id == 1
        assert sorted(timeline.kernel_times()) == [1.5, 2.0]
        assert timeline.transfer_times() == [1.0]

    def test_timeline_needs_one_stream(self):
        with pytest.raises(ValueError):
            StreamTimeline(0)
