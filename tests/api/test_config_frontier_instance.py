"""Tests for SamplingConfig, FrontierQueue and InstanceState."""

import numpy as np
import pytest

from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope
from repro.api.frontier import FrontierEntry, FrontierQueue
from repro.api.instance import InstanceState, make_instances
from repro.selection.collision import CollisionStrategy


class TestSamplingConfig:
    def test_defaults(self):
        cfg = SamplingConfig()
        assert cfg.neighbor_size == 1
        assert cfg.strategy is CollisionStrategy.BIPARTITE
        assert cfg.scope is SelectionScope.PER_VERTEX

    def test_string_coercion(self):
        cfg = SamplingConfig(scope="per_layer", pool_policy="replace_selected",
                             strategy="repeated")
        assert cfg.scope is SelectionScope.PER_LAYER
        assert cfg.pool_policy is PoolPolicy.REPLACE_SELECTED
        assert cfg.strategy is CollisionStrategy.REPEATED

    def test_replace_creates_modified_copy(self):
        cfg = SamplingConfig(depth=2)
        other = cfg.replace(depth=5, neighbor_size=3)
        assert other.depth == 5 and other.neighbor_size == 3
        assert cfg.depth == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frontier_size": -1},
            {"neighbor_size": 0},
            {"depth": 0},
            {"detector": "wishful_thinking"},
            {"strategy": "nonexistent"},
            {"scope": "everywhere"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises((ValueError, KeyError)):
            SamplingConfig(**kwargs)


class TestFrontierQueue:
    def test_push_and_pop_all(self):
        q = FrontierQueue()
        q.push(3, 0, 1)
        q.push_many(np.array([4, 5]), instance=1, depth=2)
        assert len(q) == 3
        vertices, instances, depths = q.pop_all()
        assert list(vertices) == [3, 4, 5]
        assert list(instances) == [0, 1, 1]
        assert list(depths) == [1, 2, 2]
        assert len(q) == 0

    def test_drain_partial(self):
        q = FrontierQueue(FrontierEntry(v, 0, 0) for v in range(5))
        vertices, _, _ = q.drain(3)
        assert list(vertices) == [0, 1, 2]
        assert len(q) == 2
        with pytest.raises(ValueError):
            q.drain(-1)

    def test_extend_and_iteration(self):
        a = FrontierQueue([FrontierEntry(1, 0, 0)])
        b = FrontierQueue([FrontierEntry(2, 1, 3)])
        a.extend(b)
        entries = list(a)
        assert entries[-1] == FrontierEntry(2, 1, 3)

    def test_instances_present(self):
        q = FrontierQueue([FrontierEntry(1, 4, 0), FrontierEntry(2, 2, 0), FrontierEntry(3, 4, 0)])
        assert list(q.instances_present()) == [2, 4]

    def test_bool_and_nbytes(self):
        q = FrontierQueue()
        assert not q
        q.push(1, 0, 0)
        assert q and q.nbytes() == 24


class TestInstanceState:
    def test_record_edges_and_arrays(self):
        inst = InstanceState(instance_id=0, frontier_pool=np.array([4]))
        inst.record_edges(4, np.array([5, 6]))
        inst.record_edges(5, np.array([7]))
        edges = inst.sampled_edges()
        assert edges.shape == (3, 2)
        assert list(edges[:, 0]) == [4, 4, 5]
        assert inst.num_sampled_edges == 3
        assert 7 in inst.sampled_vertices()

    def test_seeds_preserved_after_pool_changes(self):
        inst = InstanceState(instance_id=1, frontier_pool=np.array([2, 3]))
        inst.set_pool(np.array([9]))
        assert list(inst.seeds) == [2, 3]
        assert list(inst.frontier_pool) == [9]

    def test_visited_tracking(self):
        inst = InstanceState(instance_id=0, frontier_pool=np.array([1]))
        inst.mark_visited(np.array([2, 3]))
        fresh = inst.unvisited(np.array([1, 2, 3, 4]))
        assert list(fresh) == [4]

    def test_empty_sample(self):
        inst = InstanceState(instance_id=0, frontier_pool=np.array([0]))
        assert inst.sampled_edges().shape == (0, 2)


class TestMakeInstances:
    def test_flat_seeds(self):
        instances = make_instances([1, 2, 3])
        assert len(instances) == 3
        assert instances[2].frontier_pool.tolist() == [3]

    def test_round_robin_expansion(self):
        instances = make_instances([1, 2], num_instances=5)
        assert len(instances) == 5
        assert instances[4].frontier_pool.tolist() == [1]

    def test_nested_seeds(self):
        instances = make_instances([[1, 2, 3], [4, 5, 6]])
        assert instances[0].pool_size == 3
        assert instances[1].frontier_pool.tolist() == [4, 5, 6]

    def test_nested_truncation(self):
        instances = make_instances([[1, 2]] * 5, num_instances=2)
        assert len(instances) == 2

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            make_instances([])
