"""Tests for warp-centric SELECT, batch walk steps and the MAIN-loop sampler."""

import numpy as np
import pytest

from repro.api.bias import EdgePool, FrontierPoolView, SamplingProgram, UniformProgram
from repro.api.config import SamplingConfig
from repro.api.sampler import GraphSampler, sample_graph
from repro.api.select import batch_walk_step, gather_neighbors, warp_select
from repro.api.instance import InstanceState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.gpusim.warp import WarpExecutor
from repro.graph.generators import ring_graph, star_graph


def make_warp(seed=0):
    return WarpExecutor(warp_id=1, cost=CostModel(), rng=CounterRNG(seed))


class TestGatherNeighbors:
    def test_returns_pool_and_charges_memory(self, toy_graph):
        inst = InstanceState(0, np.array([8]))
        cost = CostModel()
        pool = gather_neighbors(toy_graph, 8, inst, cost)
        assert set(pool.neighbors.tolist()) == {5, 7, 9, 10, 11}
        assert pool.src == 8
        assert pool.size == 5
        assert cost.global_bytes > 0
        assert np.allclose(pool.weights, 1.0)

    def test_neighbor_degrees(self, toy_graph):
        inst = InstanceState(0, np.array([8]))
        pool = gather_neighbors(toy_graph, 8, inst)
        assert np.array_equal(pool.neighbor_degrees(), toy_graph.degrees[pool.neighbors])


class TestWarpSelect:
    def test_without_replacement_distinct(self):
        warp = make_warp()
        result = warp_select(np.ones(6), 4, warp, 0, with_replacement=False)
        assert len(set(result.indices.tolist())) == 4

    def test_with_replacement_allows_repeats(self):
        warp = make_warp()
        result = warp_select(np.array([100.0, 1.0]), 16, warp, 0, with_replacement=True)
        assert result.indices.size == 16
        assert result.collisions == 0
        # With such a skewed bias, repeats of candidate 0 are essentially certain.
        assert np.sum(result.indices == 0) > 8

    def test_zero_count(self):
        result = warp_select(np.ones(3), 0, make_warp(), 0)
        assert result.indices.size == 0

    def test_negative_count(self):
        with pytest.raises(ValueError):
            warp_select(np.ones(3), -1, make_warp(), 0)

    def test_charges_divergence(self):
        warp = make_warp()
        warp_select(np.ones(8), 4, warp, 0, strategy="repeated", detector="linear")
        assert warp.cost.warp_steps > 0


class TestBatchWalkStep:
    def test_moves_all_walkers_on_ring(self, ring10):
        current = np.arange(10)
        nxt, moved = batch_walk_step(ring10, current, CounterRNG(0), 0)
        assert moved.all()
        # On a ring every move goes to a neighbour.
        for before, after in zip(current, nxt):
            assert after in ring10.neighbors(before)

    def test_dead_end_walkers_stay(self):
        graph = star_graph(3, bidirectional=False)  # leaves have no out-edges
        current = np.array([1, 2, 0])
        nxt, moved = batch_walk_step(graph, current, CounterRNG(1), 0)
        assert not moved[0] and not moved[1] and moved[2]
        assert nxt[0] == 1 and nxt[1] == 2

    def test_inactive_mask_respected(self, ring10):
        current = np.arange(10)
        active = np.zeros(10, dtype=bool)
        active[3] = True
        nxt, moved = batch_walk_step(ring10, current, CounterRNG(2), 0, active=active)
        assert moved.sum() == 1 and moved[3]
        assert np.array_equal(nxt[active == False], current[active == False])  # noqa: E712

    def test_weighted_bias_prefers_heavy_edge(self, toy_graph):
        # Give vertex 8 one overwhelmingly heavy edge and check the walkers take it.
        weights = np.ones(toy_graph.num_edges)
        start, end = toy_graph.edge_range(8)
        heavy_position = start + 2
        weights[heavy_position] = 1e6
        g = toy_graph.with_weights(weights)
        target = int(g.col_idx[heavy_position])
        current = np.full(200, 8)
        nxt, _ = batch_walk_step(g, current, CounterRNG(3), 0, edge_bias="weight")
        assert np.mean(nxt == target) > 0.95

    def test_cost_counts_sampled_edges(self, ring10):
        cost = CostModel()
        batch_walk_step(ring10, np.arange(10), CounterRNG(0), 0, cost=cost)
        assert cost.sampled_edges == 10
        assert cost.rng_draws == 10

    def test_unknown_bias_rejected(self, ring10):
        with pytest.raises(ValueError):
            batch_walk_step(ring10, np.arange(3), CounterRNG(0), 0, edge_bias="degree")

    def test_empty_walkers(self, ring10):
        nxt, moved = batch_walk_step(ring10, np.array([], dtype=np.int64), CounterRNG(0), 0)
        assert nxt.size == 0 and moved.size == 0


class TestGraphSampler:
    def test_basic_run_produces_edges(self, toy_graph):
        program = UniformProgram()
        config = SamplingConfig(frontier_size=0, neighbor_size=2, depth=2)
        result = sample_graph(toy_graph, program, seeds=[8, 0], config=config)
        assert result.num_instances == 2
        assert result.total_sampled_edges > 0
        assert len(result.kernels) <= 2

    def test_sampled_edges_exist_in_graph(self, toy_graph):
        program = UniformProgram()
        config = SamplingConfig(frontier_size=0, neighbor_size=3, depth=3)
        result = sample_graph(toy_graph, program, seeds=list(range(5)), config=config)
        for sample in result.samples:
            for src, dst in sample.edges:
                assert toy_graph.has_edge(int(src), int(dst))

    def test_determinism_same_seed(self, toy_graph):
        program = UniformProgram()
        config = SamplingConfig(neighbor_size=2, depth=2, seed=5)
        a = sample_graph(toy_graph, program, seeds=[8], config=config)
        b = sample_graph(toy_graph, program, seeds=[8], config=config)
        assert np.array_equal(a.samples[0].edges, b.samples[0].edges)

    def test_different_seeds_differ(self, small_powerlaw_graph):
        program = UniformProgram()
        a = sample_graph(small_powerlaw_graph, program, seeds=list(range(20)),
                         config=SamplingConfig(neighbor_size=2, depth=2, seed=1))
        b = sample_graph(small_powerlaw_graph, program, seeds=list(range(20)),
                         config=SamplingConfig(neighbor_size=2, depth=2, seed=2))
        assert not np.array_equal(a.all_edges(), b.all_edges())

    def test_depth_limits_sample_size(self, small_powerlaw_graph):
        program = UniformProgram()
        shallow = sample_graph(small_powerlaw_graph, program, seeds=list(range(10)),
                               config=SamplingConfig(neighbor_size=2, depth=1, seed=0))
        deep = sample_graph(small_powerlaw_graph, program, seeds=list(range(10)),
                            config=SamplingConfig(neighbor_size=2, depth=3, seed=0))
        assert deep.total_sampled_edges > shallow.total_sampled_edges
        # Depth 1 with NeighborSize 2 samples at most 2 edges per instance.
        assert shallow.total_sampled_edges <= 20

    def test_invalid_seed_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            sample_graph(toy_graph, UniformProgram(), seeds=[99],
                         config=SamplingConfig(depth=1))

    def test_empty_graph_rejected(self):
        import numpy as np
        from repro.graph.csr import CSRGraph
        empty = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            GraphSampler(empty, UniformProgram(), SamplingConfig())

    def test_bad_bias_program_rejected(self, toy_graph):
        class BadProgram(SamplingProgram):
            def edge_bias(self, edges):
                return np.ones(edges.size + 1)

        with pytest.raises(ValueError):
            sample_graph(toy_graph, BadProgram(), seeds=[8], config=SamplingConfig(depth=1))

    def test_negative_bias_rejected(self, toy_graph):
        class NegativeProgram(SamplingProgram):
            def edge_bias(self, edges):
                return -np.ones(edges.size)

        with pytest.raises(ValueError):
            sample_graph(toy_graph, NegativeProgram(), seeds=[8], config=SamplingConfig(depth=1))

    def test_isolated_seed_finishes_without_edges(self):
        graph = star_graph(3, bidirectional=False)
        result = sample_graph(graph, UniformProgram(), seeds=[1],
                              config=SamplingConfig(depth=3, neighbor_size=2))
        assert result.total_sampled_edges == 0

    def test_kernel_time_and_seps_positive(self, small_powerlaw_graph):
        result = sample_graph(small_powerlaw_graph, UniformProgram(), seeds=list(range(10)),
                              config=SamplingConfig(neighbor_size=2, depth=2))
        assert result.kernel_time() > 0
        assert result.seps() > 0
        summary = result.summary()
        assert summary["sampled_edges"] == result.total_sampled_edges

    def test_accept_hook_filters_recorded_edges(self, toy_graph):
        class RejectAll(SamplingProgram):
            def accept(self, edges, sampled):
                return sampled[:0]

            def update(self, edges, sampled):
                return np.array([edges.src])

        result = sample_graph(toy_graph, RejectAll(), seeds=[8],
                              config=SamplingConfig(depth=3, neighbor_size=1,
                                                    with_replacement=True))
        assert result.total_sampled_edges == 0

    def test_frontier_pool_view_passed_to_vertex_bias(self, toy_graph):
        seen = {}

        class Spy(SamplingProgram):
            def vertex_bias(self, pool: FrontierPoolView):
                seen["size"] = pool.size
                seen["degrees"] = pool.degrees.copy()
                return np.ones(pool.size)

        config = SamplingConfig(frontier_size=1, neighbor_size=1, depth=1)
        sample_graph(toy_graph, Spy(), seeds=[[8, 0, 3]], config=config)
        assert seen["size"] == 3
        assert np.array_equal(seen["degrees"], toy_graph.degrees[[8, 0, 3]])
