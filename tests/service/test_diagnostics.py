"""Operational diagnostics: diagnose(), health(), auto-dumps, profiler.

The observability tier's service-level contract: the flight recorder sees
the request lifecycle, ``diagnose()`` returns a complete JSON-ready
snapshot, ``health()`` tracks worker loss, a SIGKILLed worker leaves a
post-mortem dump on disk naming the victim trace, and the continuous
profiler's phase totals account for the execute wall of a loop-dominated
request to within 10%.
"""

import glob
import json
import os
import signal
import time

import numpy as np
import pytest

from repro import telemetry as tel
from repro.algorithms.registry import get_algorithm
from repro.api.requests import SampleRequest
from repro.api.sampler import GraphSampler
from repro.graph import ring_graph
from repro.graph.generators import powerlaw_graph
from repro.service import (
    SamplingService,
    ServiceError,
    SharedGraphStore,
    leaked_segments,
)
from repro.telemetry import profiler


@pytest.fixture()
def prof():
    """Profiler enabled with empty accumulators; fully restored afterwards."""
    was_enabled = profiler.enabled()
    profiler.clear()
    profiler.enable()
    yield profiler
    if not was_enabled:
        profiler.disable()
    profiler.clear()


@pytest.fixture()
def tracing():
    """Span tracing on (so service requests mint trace ids); restored after."""
    was_enabled = tel.enabled()
    tel.clear()
    tel.enable()
    yield tel
    if not was_enabled:
        tel.disable()
    tel.clear()


def _thread_service(**kwargs):
    kwargs.setdefault("num_workers", 1)
    kwargs.setdefault("mode", "thread")
    kwargs.setdefault("batch_window_s", 0.0)
    kwargs.setdefault("max_batch_requests", 1)
    kwargs.setdefault("memory_budget_bytes", None)
    return SamplingService(**kwargs)


def _request(seeds=(0, 1, 2, 3), **overrides):
    overrides.setdefault("depth", 4)
    overrides.setdefault("seed", 7)
    return SampleRequest(graph="g", algorithm="deepwalk", seeds=tuple(seeds),
                         config_overrides=overrides)


class TestDiagnoseThreadMode:
    def test_snapshot_structure_after_traffic(self):
        with _thread_service() as svc:
            svc.load_graph("g", ring_graph(64))
            for rank in range(3):
                svc.submit(_request(seeds=(rank, rank + 1))).result(60)
            diag = svc.diagnose()

            for key in ("generated_at", "events", "event_counts", "queue",
                        "workers", "store", "result_cache", "tenants",
                        "stats"):
                assert key in diag, key
            # The recorder saw the lifecycle: one publish, every admit.
            assert diag["event_counts"]["epoch_publish"] >= 1
            assert diag["event_counts"]["admit"] >= 3
            assert diag["events_dropped"] == 0
            # Drained service: nothing pending in any lane.
            assert diag["queue"]["pending_requests"] == 0
            assert diag["queue"]["lanes"] == {}
            workers = diag["workers"]
            assert workers["mode"] == "thread"
            assert workers["num_workers"] == 1
            assert workers["alive"] == 1
            assert workers["dead_pids"] == []
            # The published graph shows up in the store census with bytes.
            assert "g" in diag["store"]["graphs"]
            assert diag["store"]["total_bytes"] > 0
            assert diag["stats"]["requests_completed"] == 3
            # The whole snapshot is JSON-serialisable as promised.
            assert json.loads(json.dumps(diag, default=str))

    def test_cache_hit_is_recorded(self):
        with _thread_service() as svc:
            svc.load_graph("g", ring_graph(64))
            svc.submit(_request()).result(60)
            svc.submit(_request()).result(60)  # identical: served from cache
            counts = svc.recorder.counts()
            assert counts.get("cache_hit", 0) >= 1

    def test_healthy_service_reports_ok(self):
        with _thread_service() as svc:
            svc.load_graph("g", ring_graph(64))
            svc.submit(_request()).result(60)
            verdict = svc.health()
            assert verdict["status"] == "ok"
            assert verdict["reasons"] == []
            assert verdict["signals"]["workers_alive"] == 1
            assert verdict["routes"]["in_memory"]["window_violations"] == 0

    def test_monitor_thread_populates_load_samples(self):
        with _thread_service() as svc:
            svc.load_graph("g", ring_graph(64))
            svc.submit(_request()).result(60)
            deadline = time.time() + 10
            while len(svc.load_samples()) < 2 and time.time() < deadline:
                time.sleep(0.05)
            samples = svc.load_samples()
            assert len(samples) >= 2
            ts, name, series = samples[0]
            assert ts > 0
            assert name in ("service_load", "result_cache_bytes")
            assert all(isinstance(v, float) for v in series.values())

    def test_metrics_text_exposes_operational_gauges(self):
        with _thread_service() as svc:
            svc.load_graph("g", ring_graph(64))
            svc.submit(_request()).result(60)
            text = svc.metrics_text()
            assert "# TYPE repro_queue_depth gauge" in text
            assert "repro_workers_alive 1" in text
            assert "repro_health_status 0" in text
            assert "repro_recorder_events" in text
            assert "repro_store_bytes" in text
            assert 'repro_slo_burn_rate{route="in_memory"} 0' in text


class TestShardedRouteDiagnostics:
    def test_diagnose_and_health_cover_the_sharded_route(self):
        big = powerlaw_graph(3000, 8.0, seed=5)
        svc = SamplingService(
            num_workers=2, mode="thread",
            memory_budget_bytes=big.nbytes // 3, cluster_shards=3,
        )
        try:
            assert svc.load_graph("g", big) == "sharded"
            response = svc.submit(SampleRequest(
                graph="g", algorithm="deepwalk", seeds=tuple(range(10)),
                config_overrides={"depth": 4, "seed": 3},
            )).result(120)
            assert response.route == "sharded"
            diag = svc.diagnose()
            assert diag["event_counts"]["admit"] >= 1
            # Walkers crossing shard boundaries leave migration events.
            migrations = int(response.stats.get("migrations", 0))
            if migrations:
                assert diag["event_counts"]["shard_migration"] >= 1
            assert svc.health()["status"] == "ok"
            assert "sharded" in {
                r for r in svc.health()["routes"]
            } or response.stats["latency_s"] >= 0
        finally:
            svc.shutdown()


class TestProfilerAccounting:
    def test_phase_totals_account_for_execute_wall(self, prof):
        """Phase laps must explain a loop-dominated request's execute_s.

        The workload is sized so the instrumented depth loop dominates:
        a powerlaw graph where walks survive to full depth, few instances
        (per-instance assembly is unprofiled fixed cost) but many seeds
        and a deep walk.  Three attempts absorb scheduler noise.
        """
        graph = powerlaw_graph(20_000, avg_degree=8, seed=1)
        with _thread_service(cache_bytes=None) as svc:
            svc.load_graph("g", graph)
            # Warm-up: kernel specialisation compiles outside the timed run.
            svc.submit(SampleRequest(
                graph="g", algorithm="deepwalk", seeds=tuple(range(64)),
                config_overrides={"depth": 8, "seed": 1},
            )).result(60)
            best_gap = 1.0
            for attempt in range(3):
                prof.clear()
                response = svc.submit(SampleRequest(
                    graph="g", algorithm="deepwalk",
                    seeds=tuple(range(8000)), num_instances=2,
                    config_overrides={"depth": 128, "seed": attempt + 2},
                )).result(120)
                execute_s = response.stats["execute_s"]
                total = prof.total_s()
                # Laps tile sub-intervals of execution: totals never exceed
                # the wall they are carved from.
                assert total <= execute_s * 1.05
                best_gap = min(best_gap, abs(execute_s - total) / execute_s)
                if best_gap <= 0.10:
                    break
            assert best_gap <= 0.10, (
                f"profiler explains only {1 - best_gap:.0%} of execute_s"
            )
            rows = prof.stats()
            assert {r["route"] for r in rows} == {"in_memory"}
            assert "gather" in {r["phase"] for r in rows}

    def test_profiled_service_run_is_bit_identical(self, prof):
        graph = ring_graph(64)
        info = get_algorithm("deepwalk")
        reference = GraphSampler(
            graph, info.program_factory(), info.config_factory(depth=4, seed=7)
        ).run([0, 1, 2, 3])
        with _thread_service() as svc:
            svc.load_graph("g", graph)
            response = svc.submit(_request()).result(60)
        assert prof.stats(), "enabled profiler recorded nothing"
        for ref, got in zip(reference.samples, response.samples):
            assert np.array_equal(ref.edges, got.edges)
            assert np.array_equal(ref.seeds, got.seeds)

    def test_process_workers_ship_phase_stats_home(self, prof):
        store = SharedGraphStore(prefix="diagship")
        svc = SamplingService(num_workers=1, mode="process",
                              batch_window_s=0.0, max_batch_requests=1,
                              memory_budget_bytes=None, store=store)
        try:
            svc.load_graph("g", ring_graph(64))
            svc.submit(_request()).result(120)
            rows = prof.stats()
            assert rows, "worker-side phase stats were not ingested"
            assert any(r["total_s"] > 0 for r in rows)
        finally:
            svc.shutdown()
            store.close()
        assert leaked_segments("diagship") == []


class TestCrashDiagnostics:
    def test_killed_worker_leaves_a_complete_post_mortem(self, tracing,
                                                         tmp_path):
        """SIGKILL a claimed worker: events + auto-dumped snapshot appear.

        Mirrors the crash-regression scenario with diagnostics on: the
        doomed unit's claim and crash are in the flight recorder, and the
        auto-dump on disk names the victim's trace id and embeds a full
        service snapshot taken at reap time.
        """
        prefix = "diagcrash"
        store = SharedGraphStore(prefix=prefix)
        svc = SamplingService(num_workers=2, mode="process",
                              batch_window_s=0.0, max_batch_requests=1,
                              memory_budget_bytes=None, store=store,
                              unit_timeout_s=150.0,
                              diagnostics_dir=str(tmp_path))
        try:
            svc.load_graph("g", ring_graph(64))
            doomed = svc.submit(SampleRequest(
                graph="g", algorithm="simple_random_walk",
                seeds=tuple(range(64)), num_instances=5000,
                config_overrides={"depth": 5000, "seed": 1},
            ))
            with svc._lock:
                doomed_trace = next(iter(svc._pending.values())).trace_id
            assert doomed_trace is not None

            deadline = time.time() + 30
            while not svc._claims and time.time() < deadline:
                time.sleep(0.01)
            assert svc._claims, "doomed unit was never claimed"
            victim = next(iter(svc._claims.values()))

            survivor = svc.submit(_request())
            os.kill(victim, signal.SIGKILL)

            with pytest.raises(ServiceError):
                doomed.result(timeout=120)
            assert survivor.result(timeout=120).ok

            counts = svc.recorder.counts()
            assert counts.get("worker_claim", 0) >= 1
            assert counts.get("worker_crash", 0) >= 1
            assert counts.get("snapshot_dump", 0) >= 1
            crash_events = svc.recorder.events(kind="worker_crash")
            assert any(e.trace_id == doomed_trace for e in crash_events)

            dumps = glob.glob(
                str(tmp_path / "diagnostics-worker_crash-unit*.json"))
            assert len(dumps) == 1
            payload = json.loads(open(dumps[0]).read())
            failure = payload["failure"]
            assert failure["reason"] == "worker_crash"
            assert doomed_trace in failure["trace_ids"]
            assert failure["error"]
            # The embedded snapshot is the full diagnose() view at reap
            # time: the crash event is already in it, the victim is dead.
            snapshot = payload["service"]
            assert snapshot["event_counts"]["worker_crash"] >= 1
            assert victim in snapshot["workers"]["dead_pids"]
            kinds = {e["kind"] for e in payload["events"]}
            assert "worker_claim" in kinds
            assert "worker_crash" in kinds

            # One worker down, one alive: health degrades with a reason.
            verdict = svc.health()
            assert verdict["status"] == "degraded"
            assert any(r["code"] == "dead_workers" for r in verdict["reasons"])
        finally:
            svc.shutdown()
            store.close()
        assert leaked_segments(prefix) == []
