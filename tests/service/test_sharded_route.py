"""Service admission to the sharded cluster route + client retry semantics."""

from concurrent.futures import Future

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.api.requests import SampleRequest
from repro.distributed import ShardedSamplingCluster
from repro.graph.generators import powerlaw_graph
from repro.service.client import AsyncSamplingClient, SamplingClient
from repro.service.server import SamplingService, ServiceError


@pytest.fixture(scope="module")
def big_graph():
    """Big relative to the tests' tiny memory budget, not actually big."""
    return powerlaw_graph(3000, 8.0, seed=5)


def make_service(big_graph, *, cluster_shards=3, **kwargs):
    return SamplingService(
        num_workers=2,
        mode="thread",
        memory_budget_bytes=big_graph.nbytes // 3,
        cluster_shards=cluster_shards,
        **kwargs,
    )


class TestShardedRoute:
    def test_over_budget_graph_routes_sharded(self, big_graph):
        with make_service(big_graph) as svc:
            assert svc.load_graph("g", big_graph) == "sharded"
            assert svc.route_of("g") == "sharded"

    def test_under_budget_graph_stays_in_memory(self, big_graph):
        small = powerlaw_graph(50, 4.0, seed=1)
        with make_service(big_graph) as svc:
            assert svc.load_graph("s", small) == "in_memory"

    def test_disabled_cluster_falls_back_to_oom(self, big_graph):
        with make_service(big_graph, cluster_shards=0) as svc:
            assert svc.load_graph("g", big_graph) == "out_of_memory"

    def test_sharded_response_matches_direct_cluster_run(self, big_graph):
        seeds = list(range(10))
        with make_service(big_graph) as svc:
            svc.load_graph("g", big_graph)
            client = SamplingClient(svc)
            response = client.sample("g", "deepwalk", seeds, timeout=120)
            assert response.route == "sharded"
            assert response.stats["num_shards"] >= 3
        shards = int(response.stats["num_shards"])
        direct = ShardedSamplingCluster(
            big_graph, "deepwalk", num_shards=shards
        ).run(seeds)
        assert len(response.samples) == len(direct.result.samples)
        for got, want in zip(response.samples, direct.result.samples):
            assert np.array_equal(got.edges, want.edges)
        assert response.iteration_counts == list(direct.result.iteration_counts)

    def test_sharded_requests_counted(self, big_graph):
        with make_service(big_graph) as svc:
            svc.load_graph("g", big_graph)
            client = SamplingClient(svc)
            client.sample("g", "simple_random_walk", [1, 2, 3], timeout=120)
            assert svc.stats.snapshot()["sharded_requests"] == 1

    def test_sharded_never_coalesces(self, big_graph):
        with make_service(big_graph, batch_window_s=0.05,
                          max_batch_requests=8) as svc:
            svc.load_graph("g", big_graph)
            futures = [
                svc.submit(SampleRequest(
                    graph="g", algorithm="deepwalk", seeds=(i,),
                    config_overrides={"seed": 0},
                ))
                for i in range(4)
            ]
            for future in futures:
                response = future.result(timeout=120)
                assert response.route == "sharded"
                assert response.coalesced_with == 1
            assert svc.stats.coalesced_requests == 0


class TestClientRetries:
    def test_transient_failure_is_retried(self, big_graph):
        small = powerlaw_graph(50, 4.0, seed=1)
        with make_service(big_graph) as svc:
            svc.load_graph("s", small)
            client = SamplingClient(svc)
            attempts = []
            original = svc.submit

            def flaky(request):
                attempts.append(request.request_id)
                if len(attempts) == 1:
                    future = Future()
                    future.set_exception(ServiceError("worker process died", transient=True))
                    return future
                return original(request)

            svc.submit = flaky
            response = client.sample("s", "deepwalk", [1, 2], retries=2, timeout=60)
            assert response.ok
            assert len(attempts) == 2
            # Each retry is a fresh request id.
            assert attempts[0] != attempts[1]

    def test_non_transient_failure_not_retried(self, big_graph):
        small = powerlaw_graph(50, 4.0, seed=1)
        with make_service(big_graph) as svc:
            svc.load_graph("s", small)
            client = SamplingClient(svc)
            calls = []
            original = svc.submit

            def failing(request):
                calls.append(request.request_id)
                future = Future()
                future.set_exception(ServiceError("program exploded"))
                return future

            svc.submit = failing
            with pytest.raises(ServiceError, match="program exploded"):
                client.sample("s", "deepwalk", [1], retries=3, timeout=60)
            assert len(calls) == 1
            svc.submit = original

    def test_retries_exhausted_raises_last_error(self, big_graph):
        small = powerlaw_graph(50, 4.0, seed=1)
        with make_service(big_graph) as svc:
            svc.load_graph("s", small)
            client = SamplingClient(svc)
            calls = []

            def always_dying(request):
                calls.append(request.request_id)
                future = Future()
                future.set_exception(ServiceError("unit unanswered after 1s", transient=True))
                return future

            svc.submit = always_dying
            with pytest.raises(ServiceError, match="unanswered"):
                client.sample("s", "deepwalk", [1], retries=2, timeout=60)
            assert len(calls) == 3

    def test_negative_retries_rejected(self, big_graph):
        with make_service(big_graph) as svc:
            client = SamplingClient(svc)
            with pytest.raises(ValueError, match="retries"):
                client.sample("g", "deepwalk", [1], retries=-1)

    def test_async_client_retries(self, big_graph):
        import asyncio

        small = powerlaw_graph(50, 4.0, seed=1)
        with make_service(big_graph) as svc:
            svc.load_graph("s", small)
            client = AsyncSamplingClient(svc)
            attempts = []
            original = svc.submit

            def flaky(request):
                attempts.append(request.request_id)
                if len(attempts) == 1:
                    future = Future()
                    future.set_exception(ServiceError("worker process died", transient=True))
                    return future
                return original(request)

            svc.submit = flaky

            async def go():
                return await client.sample(
                    "s", "deepwalk", [1, 2], retries=1, timeout=60
                )

            response = asyncio.run(go())
            assert response.ok
            assert len(attempts) == 2

    def test_async_timeout(self, big_graph):
        import asyncio

        small = powerlaw_graph(50, 4.0, seed=1)
        with make_service(big_graph) as svc:
            svc.load_graph("s", small)
            client = AsyncSamplingClient(svc)

            async def go():
                return await client.sample("s", "deepwalk", [1], timeout=0.0)

            with pytest.raises((asyncio.TimeoutError, TimeoutError)):
                asyncio.run(go())

    def test_retried_response_bit_identical(self, big_graph):
        """Deterministic sampling: the retry answers exactly what was lost."""
        small = powerlaw_graph(50, 4.0, seed=1)
        with make_service(big_graph) as svc:
            svc.load_graph("s", small)
            client = SamplingClient(svc)
            baseline = client.sample("s", "deepwalk", [1, 2], timeout=60)
            original = svc.submit
            state = {"failed": False}

            def flaky(request):
                if not state["failed"]:
                    state["failed"] = True
                    future = Future()
                    future.set_exception(ServiceError("worker process died", transient=True))
                    return future
                return original(request)

            svc.submit = flaky
            retried = client.sample("s", "deepwalk", [1, 2], retries=1, timeout=60)
            for got, want in zip(retried.samples, baseline.samples):
                assert np.array_equal(got.edges, want.edges)
