"""Crash regression: a killed worker loses only its own unit.

The scenario the claim protocol exists for: one process-mode worker is
SIGKILLed mid-unit while more units are queued behind it.  The survivors
must claim and complete every remaining unit, the killed unit's request
must fail with a :class:`ServiceError` (not hang), and the shared-memory
leak audit must come back clean afterwards.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.requests import SampleRequest
from repro.api.sampler import GraphSampler
from repro.graph import ring_graph
from repro.service import (
    SamplingService,
    ServiceError,
    SharedGraphStore,
    leaked_segments,
)


def test_survivors_complete_remaining_units_after_kill():
    prefix = "crashreg"
    store = SharedGraphStore(prefix=prefix)
    graph = ring_graph(64)
    svc = SamplingService(num_workers=2, mode="process",
                          batch_window_s=0.0, max_batch_requests=1,
                          memory_budget_bytes=None, store=store,
                          unit_timeout_s=150.0)
    try:
        svc.load_graph("g", graph)

        # A unit far too large to finish before the signal lands; it pins
        # its worker while the remaining units queue up behind it.
        doomed = svc.submit(SampleRequest(
            graph="g", algorithm="simple_random_walk", seeds=tuple(range(64)),
            num_instances=5000, config_overrides={"depth": 5000, "seed": 1},
        ))
        deadline = time.time() + 30
        while not svc._claims and time.time() < deadline:
            time.sleep(0.01)
        assert svc._claims, "doomed unit was never claimed"
        victim = next(iter(svc._claims.values()))

        # The remaining work, submitted before the crash.
        survivors = [
            svc.submit(SampleRequest(
                graph="g", algorithm="deepwalk", seeds=(rank, rank + 1),
                config_overrides={"depth": 4, "seed": 7},
            ))
            for rank in range(5)
        ]

        os.kill(victim, signal.SIGKILL)

        with pytest.raises(ServiceError):
            doomed.result(timeout=120)

        # Every remaining unit completes on the surviving worker, with
        # results bit-identical to standalone runs.
        info = ALGORITHM_REGISTRY["deepwalk"]
        config = info.config_factory(depth=4, seed=7)
        for rank, future in enumerate(survivors):
            response = future.result(timeout=120)
            assert response.ok
            ref = GraphSampler(graph, info.program_factory(), config).run(
                [rank, rank + 1]
            )
            for a, b in zip(ref.samples, response.samples):
                assert np.array_equal(a.edges, b.edges)

        snap = svc.stats.snapshot()
        assert snap["requests_completed"] == 5
        assert snap["requests_failed"] == 1
    finally:
        svc.shutdown()
        store.close()

    # The /dev/shm leak audit: nothing with the store's prefix survives,
    # even though a worker died while attached to the segments.
    assert leaked_segments(prefix) == []
