"""Per-request determinism under coalescing (the service's acceptance bar).

A request with a fixed seed must return identical edges whether it ran alone
or coalesced into a batch with other requests -- for every registered
algorithm, at both layers:

* engine layer: :func:`repro.engine.hetero.run_coalesced` /
  :func:`run_heterogeneous` vs standalone :class:`GraphSampler` runs
  (extending the ``tests/integration/test_engine_equivalence`` approach);
* service layer: responses from a live :class:`SamplingService` under
  concurrent submission vs the same standalone runs.
"""

import threading

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.instance import make_instances
from repro.api.sampler import GraphSampler
from repro.engine.hetero import InstanceGroup, run_coalesced, run_heterogeneous
from repro.graph.generators import powerlaw_graph
from repro.service import SamplingClient, SamplingService


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(300, 6.0, exponent=2.2, seed=3)


MEMBER_SEEDS = [
    list(range(0, 300, 17)),
    [5, 9, 250],
    list(range(1, 100, 7)),
]


def make_groups(info, config):
    """Instance groups as the service builds them: one shared program for
    coalescable algorithms, a fresh program per request otherwise."""
    if info.program_factory().supports_coalescing:
        program = info.program_factory()
        return [
            InstanceGroup(program, config, make_instances(seeds))
            for seeds in MEMBER_SEEDS
        ]
    return [
        InstanceGroup(info.program_factory(), config, make_instances(seeds))
        for seeds in MEMBER_SEEDS
    ]


def assert_member_equivalent(standalone, coalesced):
    assert len(standalone.samples) == len(coalesced.samples)
    for a, b in zip(standalone.samples, coalesced.samples):
        assert a.instance_id == b.instance_id
        assert np.array_equal(a.seeds, b.seeds)
        assert np.array_equal(a.edges, b.edges)
    assert standalone.iteration_counts == coalesced.iteration_counts


class TestEngineLayer:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_every_registered_algorithm(self, graph, name):
        info = ALGORITHM_REGISTRY[name]
        config = info.config_factory(seed=11)
        standalone = [
            GraphSampler(graph, info.program_factory(), config).run(seeds)
            for seeds in MEMBER_SEEDS
        ]
        coalesced = run_heterogeneous(graph, make_groups(info, config))
        for ref, got in zip(standalone, coalesced):
            assert_member_equivalent(ref, got)

    def test_mixed_configs_in_one_heterogeneous_batch(self, graph):
        """Different (algorithm, config) groups ride one batch untouched."""
        walk = ALGORITHM_REGISTRY["simple_random_walk"]
        neigh = ALGORITHM_REGISTRY["unbiased_neighbor_sampling"]
        walk_config = walk.config_factory(seed=2, depth=5)
        neigh_config = neigh.config_factory(seed=8, depth=2, neighbor_size=3)
        walk_program = walk.program_factory()
        groups = [
            InstanceGroup(walk_program, walk_config, make_instances([1, 2, 3])),
            InstanceGroup(neigh.program_factory(), neigh_config,
                          make_instances([10, 20])),
            InstanceGroup(walk_program, walk_config, make_instances([7])),
        ]
        results = run_heterogeneous(graph, groups)
        refs = [
            GraphSampler(graph, walk.program_factory(), walk_config).run([1, 2, 3]),
            GraphSampler(graph, neigh.program_factory(), neigh_config).run([10, 20]),
            GraphSampler(graph, walk.program_factory(), walk_config).run([7]),
        ]
        for ref, got in zip(refs, results):
            assert_member_equivalent(ref, got)

    def test_coalesced_metadata_records_batch_size(self, graph):
        info = ALGORITHM_REGISTRY["deepwalk"]
        config = info.config_factory(seed=1)
        program = info.program_factory()
        results = run_coalesced(
            graph, program, config,
            [make_instances([1, 2]), make_instances([3])],
        )
        assert all(r.metadata["coalesced_members"] == 2 for r in results)

    def test_run_alone_equals_run_in_any_company(self, graph):
        """The same member is bit-identical across differently-sized batches."""
        info = ALGORITHM_REGISTRY["node2vec"]
        config = info.config_factory(seed=5)
        target = [4, 44, 144]
        alone = run_coalesced(
            graph, info.program_factory(), config, [make_instances(target)]
        )[0]
        for company in ([[9]], [[9], [10, 11]], [list(range(0, 200, 13))]):
            members = [make_instances(target)] + [
                make_instances(seeds) for seeds in company
            ]
            batched = run_coalesced(
                graph, info.program_factory(), config, members
            )[0]
            assert_member_equivalent(alone, batched)

    def test_rejects_out_of_range_seeds(self, graph):
        info = ALGORITHM_REGISTRY["deepwalk"]
        with pytest.raises(ValueError):
            run_coalesced(
                graph, info.program_factory(), info.config_factory(seed=1),
                [make_instances([graph.num_vertices + 5])],
            )


class TestServiceLayer:
    @pytest.fixture(scope="class")
    def service(self, graph):
        svc = SamplingService(
            num_workers=1, mode="thread", batch_window_s=0.02,
            memory_budget_bytes=None,
        )
        svc.load_graph("g", graph)
        yield svc
        svc.shutdown()

    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_concurrent_requests_match_standalone(self, graph, service, name):
        info = ALGORITHM_REGISTRY[name]
        config = info.config_factory(seed=13)
        client = SamplingClient(service)
        responses = {}

        def issue(rank, seeds):
            responses[rank] = client.sample(
                "g", name, seeds, seed=13, timeout=60
            )

        threads = [
            threading.Thread(target=issue, args=(rank, seeds))
            for rank, seeds in enumerate(MEMBER_SEEDS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for rank, seeds in enumerate(MEMBER_SEEDS):
            ref = GraphSampler(graph, info.program_factory(), config).run(seeds)
            got = responses[rank]
            assert got.ok and got.route == "in_memory"
            assert len(ref.samples) == len(got.samples)
            for a, b in zip(ref.samples, got.samples):
                assert a.instance_id == b.instance_id
                assert np.array_equal(a.seeds, b.seeds)
                assert np.array_equal(a.edges, b.edges)
            assert ref.iteration_counts == got.iteration_counts
