"""Admission control: token buckets, per-tenant sheds, overload ceiling,
priority lanes, client retry-after handling."""

import itertools
import queue

import pytest

from repro.graph import ring_graph
from repro.service import (
    AdmissionController,
    AdmissionRejected,
    SamplingClient,
    SamplingService,
    TenantQuota,
    TokenBucket,
)
from repro.service.server import _Pending


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(TenantQuota(rate=1.0, burst=4.0), now=0.0)
        assert bucket.try_spend(3.0, now=0.0) == 0.0
        assert bucket.level == pytest.approx(1.0)

    def test_prices_the_wait_when_short(self):
        bucket = TokenBucket(TenantQuota(rate=2.0, burst=4.0), now=0.0)
        bucket.try_spend(4.0, now=0.0)
        wait = bucket.try_spend(3.0, now=0.0)
        assert wait == pytest.approx(1.5)  # 3 cost-s missing at 2/s
        # After exactly that wait the spend admits.
        assert bucket.try_spend(3.0, now=wait) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(TenantQuota(rate=10.0, burst=2.0), now=0.0)
        bucket.try_spend(2.0, now=0.0)
        bucket.try_spend(0.0, now=100.0)  # huge idle gap
        assert bucket.level <= 2.0

    def test_oversized_request_admits_on_full_bucket(self):
        # Cost > burst: the charge clamps to capacity, so a full bucket
        # admits (and fully drains) instead of starving the request forever.
        bucket = TokenBucket(TenantQuota(rate=1.0, burst=2.0), now=0.0)
        assert bucket.try_spend(50.0, now=0.0) == 0.0
        assert bucket.level == pytest.approx(0.0)
        wait = bucket.try_spend(50.0, now=0.0)
        assert wait == pytest.approx(2.0)  # one full refill, not 50s


class TestAdmissionController:
    def test_unlimited_without_quota(self):
        ctl = AdmissionController()
        ctl.admit("anyone", 1e9)  # never raises
        assert ctl.headroom("anyone") == float("inf")

    def test_default_quota_applies_to_unlisted_tenants(self):
        clock = FakeClock()
        ctl = AdmissionController(
            default_quota=TenantQuota(rate=1.0, burst=1.0), clock=clock
        )
        ctl.admit("t", 1.0)
        with pytest.raises(AdmissionRejected) as info:
            ctl.admit("t", 1.0)
        assert info.value.tenant == "t"
        assert info.value.reason == "tenant_quota"
        assert info.value.retry_after_s == pytest.approx(1.0)
        clock.advance(1.0)
        ctl.admit("t", 1.0)  # refilled

    def test_explicit_quota_overrides_default(self):
        clock = FakeClock()
        ctl = AdmissionController(
            default_quota=TenantQuota(rate=1.0, burst=1.0),
            quotas={"vip": TenantQuota(rate=100.0, burst=100.0)},
            clock=clock,
        )
        for _ in range(5):
            ctl.admit("vip", 10.0)  # plenty of headroom

    def test_set_quota_resets_bucket(self):
        clock = FakeClock()
        ctl = AdmissionController(clock=clock)
        ctl.set_quota("t", TenantQuota(rate=1.0, burst=2.0))
        ctl.admit("t", 2.0)
        ctl.set_quota("t", TenantQuota(rate=1.0, burst=5.0))
        ctl.admit("t", 5.0)  # fresh full bucket under the new quota
        ctl.set_quota("t", None)
        ctl.admit("t", 1e9)  # unlimited again

    def test_headroom_tracks_spend_and_refill(self):
        clock = FakeClock()
        ctl = AdmissionController(
            quotas={"t": TenantQuota(rate=1.0, burst=4.0)}, clock=clock
        )
        assert ctl.headroom("t") == pytest.approx(4.0)
        ctl.admit("t", 3.0)
        assert ctl.headroom("t") == pytest.approx(1.0)
        clock.advance(2.0)
        assert ctl.headroom("t") == pytest.approx(3.0)

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TenantQuota(rate=1.0, burst=0.0)


@pytest.fixture()
def graph():
    return ring_graph(32)


def make_service(graph, **kwargs):
    kwargs.setdefault("num_workers", 1)
    kwargs.setdefault("mode", "thread")
    kwargs.setdefault("batch_window_s", 0.0)
    kwargs.setdefault("max_batch_requests", 1)
    kwargs.setdefault("memory_budget_bytes", None)
    svc = SamplingService(**kwargs)
    svc.load_graph("g", graph)
    return svc


class TestServiceAdmission:
    def test_over_quota_tenant_sheds_before_compute(self, graph):
        # A bucket this small admits exactly one request (charge clamps to
        # burst on the full bucket) and then prices a long wait.
        svc = make_service(
            graph, quotas={"greedy": TenantQuota(rate=1e-9, burst=1e-9)}
        )
        try:
            client = SamplingClient(svc)
            first = client.sample("g", "deepwalk", [1], depth=3, seed=1,
                                  tenant="greedy", timeout=30)
            assert first.ok
            units = svc.stats.units_dispatched
            with pytest.raises(AdmissionRejected) as info:
                client.sample("g", "deepwalk", [2], depth=3, seed=1,
                              tenant="greedy", timeout=30)
            err = info.value
            assert err.tenant == "greedy"
            assert err.reason == "tenant_quota"
            assert err.retry_after_s > 0.0
            assert err.predicted_cost_s > 0.0
            # Shed at the door: nothing was dispatched, nothing left pending.
            assert svc.stats.units_dispatched == units
            assert not svc._pending
            assert svc.stats.requests_shed == 1
            # Unlisted tenants are unlimited and unaffected.
            ok = client.sample("g", "deepwalk", [3], depth=3, seed=1,
                               tenant="polite", timeout=30)
            assert ok.ok
            snap = svc.stats()
            assert snap["requests_shed"] == 1
            assert 0.0 < snap["shed_rate"] < 1.0
            assert snap["tenants"]["greedy"]["shed"] == 1
            assert snap["tenants"]["polite"]["completed"] == 1
            assert 'tenant="greedy"' in svc.metrics_text()
        finally:
            svc.shutdown()

    def test_cache_hit_bypasses_quota(self, graph):
        svc = make_service(
            graph, quotas={"t": TenantQuota(rate=1e-9, burst=1e-9)}
        )
        try:
            client = SamplingClient(svc)
            client.sample("g", "deepwalk", [1], depth=3, seed=1, tenant="t",
                          timeout=30)
            # The bucket is empty, but the identical request is a cache hit
            # and hits are free: served, not shed.
            again = client.sample("g", "deepwalk", [1], depth=3, seed=1,
                                  tenant="t", timeout=30)
            assert again.stats["cache_hit"] is True
        finally:
            svc.shutdown()

    def test_max_pending_ceiling_sheds_with_overload_reason(self, graph):
        svc = make_service(graph, max_pending=0)
        try:
            client = SamplingClient(svc)
            with pytest.raises(AdmissionRejected) as info:
                client.sample("g", "deepwalk", [1], depth=3, seed=1,
                              timeout=30)
            assert info.value.reason == "service_overloaded"
            assert info.value.retry_after_s > 0.0
        finally:
            svc.shutdown()

    def test_client_retry_honours_retry_after(self, graph):
        # burst/rate = 10ms: the shed's retry_after hint is short enough
        # that one retry (which sleeps it out) succeeds.
        svc = make_service(
            graph, quotas={"t": TenantQuota(rate=1e-4, burst=1e-6)}
        )
        try:
            client = SamplingClient(svc)
            client.sample("g", "deepwalk", [1], depth=3, seed=1, tenant="t",
                          timeout=30)
            retried = client.sample("g", "deepwalk", [2], depth=3, seed=1,
                                    tenant="t", retries=2, timeout=30)
            assert retried.ok
            assert retried.stats["attempts"] >= 2
            # Without retries the shed surfaces.
            with pytest.raises(AdmissionRejected):
                client.sample("g", "deepwalk", [4], depth=3, seed=1,
                              tenant="t", timeout=30)
        finally:
            svc.shutdown()

    def test_async_client_retry_honours_retry_after(self, graph):
        import asyncio

        from repro.service import AsyncSamplingClient

        svc = make_service(
            graph, quotas={"t": TenantQuota(rate=1e-4, burst=1e-6)}
        )

        async def scenario():
            client = AsyncSamplingClient(svc)
            await client.sample("g", "deepwalk", [1], depth=3, seed=1,
                                tenant="t", timeout=30)
            retried = await client.sample("g", "deepwalk", [2], depth=3,
                                          seed=1, tenant="t", retries=2,
                                          timeout=30)
            assert retried.ok
            with pytest.raises(AdmissionRejected):
                await client.sample("g", "deepwalk", [4], depth=3, seed=1,
                                    tenant="t", timeout=30)

        try:
            asyncio.run(scenario())
        finally:
            svc.shutdown()

    def test_no_quota_no_planning_overhead(self, graph):
        svc = make_service(graph)
        try:
            assert not svc._admission_active()
            client = SamplingClient(svc)
            assert client.sample("g", "deepwalk", [1], depth=3, seed=1,
                                 timeout=30).ok
        finally:
            svc.shutdown()

    def test_tenant_and_priority_on_fresh_responses(self, graph):
        svc = make_service(graph)
        try:
            client = SamplingClient(svc)
            response = client.sample("g", "deepwalk", [1], depth=3, seed=1,
                                     tenant="alpha", priority=7, timeout=30)
            assert response.stats["tenant"] == "alpha"
            assert response.stats["priority"] == 7
            assert response.stats["cache_hit"] is False
        finally:
            svc.shutdown()


class TestPriorityLanes:
    def test_queue_orders_by_priority_then_fifo(self):
        # The dispatch queue's exact tuple scheme: higher priority first,
        # FIFO within a lane, sentinel (None at -inf) last, and _Pending
        # objects never compared (seq always breaks ties).
        q = queue.PriorityQueue()
        seq = itertools.count()

        def put(pending, priority):
            q.put((-float(priority), next(seq), pending))

        a = _Pending(request=None, future=None, enqueued_at=0.0)
        b = _Pending(request=None, future=None, enqueued_at=0.0)
        c = _Pending(request=None, future=None, enqueued_at=0.0)
        d = _Pending(request=None, future=None, enqueued_at=0.0)
        put(a, 0)
        put(b, 5)
        put(c, 5)
        put(d, -1)
        put(None, float("-inf"))
        drained = [q.get_nowait()[2] for _ in range(5)]
        assert drained == [b, c, a, d, None]

    def test_priority_validation(self):
        from repro.api.requests import SampleRequest

        request = SampleRequest(graph="g", algorithm="deepwalk", seeds=(1,),
                                priority="3")
        assert request.priority == 3
        with pytest.raises(ValueError):
            SampleRequest(graph="g", algorithm="deepwalk", seeds=(1,),
                          tenant="")
