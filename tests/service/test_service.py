"""End-to-end sampling-service behaviour: coalescing, routing, clients,
process workers, shutdown hygiene."""

import asyncio
import threading

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.requests import SampleRequest
from repro.api.sampler import GraphSampler
from repro.graph.generators import powerlaw_graph
from repro.oom.scheduler import OutOfMemorySampler
from repro.service import (
    AsyncSamplingClient,
    SamplingClient,
    SamplingService,
    ServiceError,
    leaked_segments,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(400, 6.0, seed=2)


@pytest.fixture()
def service(graph):
    svc = SamplingService(
        num_workers=1, mode="thread", batch_window_s=0.01,
        memory_budget_bytes=None,
    )
    svc.load_graph("g", graph)
    yield svc
    svc.shutdown()


class TestRequestHandling:
    def test_single_request_roundtrip(self, service):
        client = SamplingClient(service)
        response = client.sample("g", "deepwalk", [1, 2, 3], depth=4, seed=1,
                                 timeout=30)
        assert response.ok
        assert response.num_instances == 3
        assert response.total_sampled_edges > 0
        assert response.stats["latency_s"] > 0
        assert response.all_edges().shape[1] == 2

    def test_num_instances_round_robin(self, service):
        client = SamplingClient(service)
        response = client.sample("g", "deepwalk", [1, 2], num_instances=5,
                                 depth=3, seed=1, timeout=30)
        assert response.num_instances == 5
        assert [int(s.seeds[0]) for s in response.samples] == [1, 2, 1, 2, 1]

    def test_concurrent_compatible_requests_coalesce(self, service):
        client = SamplingClient(service)
        responses = {}

        def issue(rank):
            responses[rank] = client.sample(
                "g", "simple_random_walk", [rank, rank + 50], depth=5, seed=3,
                timeout=30,
            )

        threads = [threading.Thread(target=issue, args=(r,)) for r in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert max(r.coalesced_with for r in responses.values()) > 1

    def test_incompatible_configs_do_not_share_a_class(self, service):
        client = SamplingClient(service)
        responses = {}

        def issue(rank):
            responses[rank] = client.sample(
                "g", "simple_random_walk", [rank], depth=5, seed=rank,
                timeout=30,
            )

        threads = [threading.Thread(target=issue, args=(r,)) for r in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Different RNG seeds -> different class keys -> never coalesced.
        assert all(r.coalesced_with == 1 for r in responses.values())

    def test_non_coalescable_requests_get_one_unit_each(self, service):
        client = SamplingClient(service)
        responses = {}

        def issue(rank):
            responses[rank] = client.sample(
                "g", "forest_fire_sampling", [rank], depth=2, seed=4,
                timeout=30,
            )

        before = service.stats.units_dispatched
        threads = [threading.Thread(target=issue, args=(r,)) for r in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Stateful programs never fuse: even identically-configured
        # concurrent requests must each get their own work unit.
        assert service.stats.units_dispatched - before == 4
        assert all(r.coalesced_with == 1 for r in responses.values())

    def test_coalesced_batch_failure_isolates_requests(self, graph):
        from repro.api.bias import SamplingProgram
        from repro.service.workers import RequestSpec, WorkUnit, execute_unit
        from repro.service.store import SharedGraphStore
        from repro.algorithms import registry as registry_module
        from repro.algorithms.registry import ALGORITHM_REGISTRY, AlgorithmInfo

        class ExplodingProgram(SamplingProgram):
            name = "exploding"
            supports_coalescing = True  # claims purity, then violates it

            def update(self, edges, sampled):
                if edges.instance.seeds[0] == 13:
                    raise RuntimeError("boom")
                return sampled

        info = ALGORITHM_REGISTRY["unbiased_neighbor_sampling"]
        registry_module.ALGORITHM_REGISTRY["exploding"] = AlgorithmInfo(
            name="exploding", bias="unbiased", neighbor_shape="constant",
            scope="per_vertex", is_random_walk=False,
            program_factory=ExplodingProgram,
            config_factory=info.config_factory,
        )
        try:
            unit = WorkUnit(
                unit_id=1, handle=None, algorithm="exploding",
                config=info.config_factory(seed=1, depth=2),
                program_kwargs=(),
                requests=(
                    RequestSpec(request_id=100, seeds=(5,)),
                    RequestSpec(request_id=101, seeds=(13,)),
                    RequestSpec(request_id=102, seeds=(7,)),
                ),
            )
            with pytest.warns(UserWarning, match="coalesced batch failed"):
                result = execute_unit(graph, unit)
            assert result.error is None
            by_id = {p.request_id: p for p in result.payloads}
            # The faulty member fails alone; its batch peers still succeed,
            # and every solo rerun is marked as a fallback.
            assert by_id[101].error is not None
            assert by_id[100].error is None and by_id[102].error is None
            assert by_id[100].stats["coalesced_fallback"] == 1.0
        finally:
            del registry_module.ALGORITHM_REGISTRY["exploding"]

    def test_unknown_graph_rejected(self, service):
        with pytest.raises(KeyError):
            service.submit(SampleRequest(graph="nope", algorithm="deepwalk",
                                         seeds=(1,)))

    def test_out_of_range_seeds_rejected(self, service, graph):
        with pytest.raises(ValueError):
            service.submit(SampleRequest(
                graph="g", algorithm="deepwalk",
                seeds=(graph.num_vertices + 1,),
            ))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            SampleRequest(graph="g", algorithm="not_an_algorithm", seeds=(1,))

    def test_bad_config_override_fails_fast(self, service):
        with pytest.raises(TypeError):
            service.submit(SampleRequest(
                graph="g", algorithm="deepwalk", seeds=(1,),
                config_overrides={"not_a_field": 3},
            ))

    def test_unhashable_program_kwargs_fail_at_submit(self, service):
        # Must raise synchronously, not kill the dispatcher thread later.
        with pytest.raises(TypeError):
            service.submit(SampleRequest(
                graph="g", algorithm="node2vec", seeds=(1,),
                program_kwargs={"p": [1, 2]},
            ))
        client = SamplingClient(service)
        assert client.sample("g", "deepwalk", [1], depth=2, seed=1,
                             timeout=30).ok

    def test_program_kwargs_separate_classes(self, service):
        client = SamplingClient(service)
        a = client.sample("g", "node2vec", [3], seed=2,
                          program_kwargs={"p": 4.0}, timeout=30)
        b = client.sample("g", "node2vec", [3], seed=2,
                          program_kwargs={"p": 0.25}, timeout=30)
        assert a.ok and b.ok


class TestAsyncClient:
    def test_async_fanout(self, service, graph):
        client = AsyncSamplingClient(service)

        async def fanout():
            tasks = [
                client.sample("g", "simple_random_walk", [i], depth=4, seed=5)
                for i in range(8)
            ]
            return await asyncio.gather(*tasks)

        responses = asyncio.run(fanout())
        assert len(responses) == 8
        info = ALGORITHM_REGISTRY["simple_random_walk"]
        config = info.config_factory(depth=4, seed=5)
        for i, response in enumerate(responses):
            ref = GraphSampler(graph, info.program_factory(), config).run([i])
            assert np.array_equal(ref.samples[0].edges, response.samples[0].edges)


class TestAdmissionRouting:
    def test_oversized_graph_routes_out_of_memory(self, graph):
        svc = SamplingService(
            num_workers=1, mode="thread", batch_window_s=0.0,
            memory_budget_bytes=1024,
        )
        try:
            assert svc.load_graph("big", graph) == "out_of_memory"
            client = SamplingClient(svc)
            response = client.sample("big", "unbiased_neighbor_sampling",
                                     [3, 5, 7], depth=2, neighbor_size=3,
                                     seed=9, timeout=60)
            assert response.route == "out_of_memory"
            info = ALGORITHM_REGISTRY["unbiased_neighbor_sampling"]
            ref = OutOfMemorySampler(
                graph, info.program_factory(),
                info.config_factory(depth=2, neighbor_size=3, seed=9),
                svc._oom_config_for("big"),
            ).run([3, 5, 7])
            for a, b in zip(ref.sample.samples, response.samples):
                assert np.array_equal(a.edges, b.edges)
            # OOM requests never fuse: identical concurrent requests must
            # still get one unit each (spread across workers).
            before = svc.stats.units_dispatched
            responses = {}

            def issue(rank):
                responses[rank] = client.sample(
                    "big", "simple_random_walk", [rank], depth=3, seed=2,
                    timeout=60,
                )

            threads = [threading.Thread(target=issue, args=(r,))
                       for r in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert svc.stats.units_dispatched - before == 3
            assert all(r.coalesced_with == 1 for r in responses.values())
        finally:
            svc.shutdown()

    def test_small_graph_routes_in_memory(self, graph):
        svc = SamplingService(num_workers=1, mode="thread",
                              memory_budget_bytes=64 * 1024 * 1024)
        try:
            assert svc.load_graph("small", graph) == "in_memory"
        finally:
            svc.shutdown()


class TestProcessWorkers:
    def test_process_pool_end_to_end_and_no_leaks(self, graph):
        svc = SamplingService(num_workers=2, mode="process",
                              batch_window_s=0.01, memory_budget_bytes=None)
        prefix = svc.store.prefix
        try:
            svc.load_graph("g", graph)
            client = SamplingClient(svc)
            responses = {}

            def issue(rank):
                responses[rank] = client.sample(
                    "g", "simple_random_walk", [rank, rank + 1], depth=4,
                    seed=6, timeout=120,
                )

            threads = [threading.Thread(target=issue, args=(r,))
                       for r in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            info = ALGORITHM_REGISTRY["simple_random_walk"]
            config = info.config_factory(depth=4, seed=6)
            for rank, response in responses.items():
                ref = GraphSampler(graph, info.program_factory(), config).run(
                    [rank, rank + 1]
                )
                for a, b in zip(ref.samples, response.samples):
                    assert np.array_equal(a.edges, b.edges)
        finally:
            svc.shutdown()
        assert leaked_segments(prefix) == []

    def test_worker_crash_fails_its_unit_but_not_the_service(self, graph):
        import os
        import signal
        import time

        from repro.service import ServiceError

        svc = SamplingService(num_workers=2, mode="process",
                              batch_window_s=0.0, max_batch_requests=1,
                              memory_budget_bytes=None)
        try:
            svc.load_graph("g", graph)
            # A walk far too large to ever finish before the signal lands
            # (the kill interrupts it milliseconds after the claim arrives).
            future = svc.submit(SampleRequest(
                graph="g", algorithm="simple_random_walk", seeds=tuple(range(200)),
                num_instances=5000, config_overrides={"depth": 5000, "seed": 1},
            ))
            deadline = time.time() + 20
            while not svc._claims and time.time() < deadline:
                time.sleep(0.01)
            assert svc._claims, "unit was never claimed"
            victim = next(iter(svc._claims.values()))
            os.kill(victim, signal.SIGKILL)
            with pytest.raises(ServiceError):
                future.result(timeout=30)
            # The surviving worker keeps serving.
            client = SamplingClient(svc)
            assert client.sample("g", "deepwalk", [1], depth=3, seed=1,
                                 timeout=60).ok
        finally:
            svc.shutdown()

    def test_shutdown_is_idempotent(self, graph):
        svc = SamplingService(num_workers=1, mode="thread")
        svc.load_graph("g", graph)
        svc.shutdown()
        svc.shutdown()
        with pytest.raises(RuntimeError):
            svc.submit(SampleRequest(graph="g", algorithm="deepwalk",
                                     seeds=(1,)))


class TestStatsAndSlicing:
    def test_stats_counters(self, graph):
        svc = SamplingService(num_workers=1, mode="thread",
                              batch_window_s=0.01)
        try:
            svc.load_graph("g", graph)
            client = SamplingClient(svc)
            for i in range(3):
                client.sample("g", "deepwalk", [i], depth=3, seed=1, timeout=30)
            snap = svc.stats.snapshot()
            assert snap["requests_submitted"] == 3
            assert snap["requests_completed"] == 3
            assert snap["requests_failed"] == 0
        finally:
            svc.shutdown()

    def test_sample_result_slice_instances(self, graph):
        info = ALGORITHM_REGISTRY["deepwalk"]
        result = GraphSampler(
            graph, info.program_factory(), info.config_factory(seed=1)
        ).run([1, 2, 3, 4])
        part = result.slice_instances(1, 3, iteration_counts=[7],
                                      metadata={"tag": "x"})
        assert [s.instance_id for s in part.samples] == [1, 2]
        assert part.iteration_counts == [7]
        assert part.metadata["tag"] == "x"
        assert part.metadata["program"] == "deepwalk"
        with pytest.raises(ValueError):
            result.slice_instances(2, 9)
