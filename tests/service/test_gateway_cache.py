"""The gateway's deterministic result cache: bit-identical hits, LRU byte
budget, epoch-retirement invalidation, pinned-epoch isolation."""

import numpy as np
import pytest

from repro.api.requests import SampleRequest
from repro.graph import ring_graph
from repro.graph.generators import powerlaw_graph
from repro.service import SampleCache, SamplingClient, SamplingService
from repro.service.cache import CachedResult, cache_key


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(300, 6.0, seed=5)


@pytest.fixture()
def service(graph):
    svc = SamplingService(num_workers=1, mode="thread", batch_window_s=0.0,
                          max_batch_requests=1, memory_budget_bytes=None)
    svc.load_graph("g", graph)
    yield svc
    svc.shutdown()


def assert_bit_identical(a, b):
    assert a.num_instances == b.num_instances
    assert a.iteration_counts == b.iteration_counts
    for sa, sb in zip(a.samples, b.samples):
        assert sa.instance_id == sb.instance_id
        assert np.array_equal(sa.seeds, sb.seeds)
        assert np.array_equal(sa.edges, sb.edges)


class TestCacheHits:
    def test_repeat_request_hits_without_dispatch(self, service):
        client = SamplingClient(service)
        first = client.sample("g", "deepwalk", [1, 2, 3], depth=4, seed=7,
                              timeout=30)
        assert first.stats["cache_hit"] is False
        units = service.stats.units_dispatched
        second = client.sample("g", "deepwalk", [1, 2, 3], depth=4, seed=7,
                               timeout=30)
        assert second.stats["cache_hit"] is True
        # No dispatcher work: the unit count did not move.
        assert service.stats.units_dispatched == units
        assert service.stats.cache_hits == 1
        assert_bit_identical(first, second)
        # The hit keeps the fresh run's plan/route metadata.
        assert second.route == first.route
        assert second.plan == first.plan

    def test_non_coalescable_algorithm_hits_too(self, service):
        client = SamplingClient(service)
        kwargs = dict(depth=3, seed=11, timeout=30)
        first = client.sample("g", "forest_fire_sampling", [4, 5], **kwargs)
        second = client.sample("g", "forest_fire_sampling", [4, 5], **kwargs)
        assert second.stats["cache_hit"] is True
        assert_bit_identical(first, second)

    def test_different_seeds_or_config_miss(self, service):
        client = SamplingClient(service)
        client.sample("g", "deepwalk", [1], depth=4, seed=1, timeout=30)
        other_seeds = client.sample("g", "deepwalk", [2], depth=4, seed=1,
                                    timeout=30)
        other_config = client.sample("g", "deepwalk", [1], depth=5, seed=1,
                                     timeout=30)
        assert other_seeds.stats["cache_hit"] is False
        assert other_config.stats["cache_hit"] is False

    def test_hit_serves_other_tenants(self, service):
        client = SamplingClient(service)
        client.sample("g", "deepwalk", [9], depth=4, seed=2, tenant="alpha",
                      timeout=30)
        hit = client.sample("g", "deepwalk", [9], depth=4, seed=2,
                            tenant="beta", timeout=30)
        assert hit.stats["cache_hit"] is True
        assert hit.stats["tenant"] == "beta"

    def test_mutating_a_response_does_not_poison_the_cache(self, service):
        client = SamplingClient(service)
        first = client.sample("g", "deepwalk", [1, 2, 3], depth=4, seed=9,
                              timeout=30)
        victim = next(i for i, s in enumerate(first.samples)
                      if s.edges.size > 0)
        first.samples[victim].edges[:] = -1
        second = client.sample("g", "deepwalk", [1, 2, 3], depth=4, seed=9,
                               timeout=30)
        assert second.stats["cache_hit"] is True
        assert not np.array_equal(first.samples[victim].edges,
                                  second.samples[victim].edges)

    def test_stats_expose_hit_rate(self, service):
        client = SamplingClient(service)
        client.sample("g", "deepwalk", [6], depth=4, seed=4, timeout=30)
        client.sample("g", "deepwalk", [6], depth=4, seed=4, timeout=30)
        snap = service.stats()
        assert snap["cache_hits"] == 1
        assert snap["result_cache"]["hits"] == 1
        assert 0.0 < snap["cache_hit_rate"] <= 1.0
        text = service.metrics_text()
        assert "cache_hits" in text

    def test_cache_disabled(self, graph):
        svc = SamplingService(num_workers=1, mode="thread", cache_bytes=None,
                              memory_budget_bytes=None)
        try:
            svc.load_graph("g", graph)
            client = SamplingClient(svc)
            client.sample("g", "deepwalk", [1], depth=3, seed=1, timeout=30)
            again = client.sample("g", "deepwalk", [1], depth=3, seed=1,
                                  timeout=30)
            assert again.stats["cache_hit"] is False
            assert svc.gateway.cache is None
        finally:
            svc.shutdown()


class TestEpochInteraction:
    def _service(self):
        return SamplingService(num_workers=1, mode="thread",
                               batch_window_s=0.0, max_batch_requests=1,
                               memory_budget_bytes=None)

    def test_retirement_evicts_exactly_the_retired_epoch(self):
        svc = self._service()
        try:
            svc.load_graph("g", ring_graph(24))
            svc.load_graph("h", ring_graph(16))
            client = SamplingClient(svc)
            client.sample("g", "deepwalk", [0], depth=3, seed=1, timeout=30)
            client.sample("h", "deepwalk", [0], depth=3, seed=1, timeout=30)
            assert len(svc.gateway.cache) == 2
            # Publishing epoch 1 retires epoch 0 (no pinned requests): its
            # cache entries go with it; graph "h" is untouched.
            svc.update_graph("g", add_edges=[(0, 12), (12, 0)])
            assert svc.drain(10.0)
            keys = svc.gateway.cache.keys()
            assert all(not (k[0] == "g" and k[1] == 0) for k in keys)
            assert any(k[0] == "h" for k in keys)
            # The new epoch starts cold, then caches under its own key.
            fresh = client.sample("g", "deepwalk", [0], depth=3, seed=1,
                                  timeout=30)
            assert fresh.stats["cache_hit"] is False
            assert fresh.epoch == 1
        finally:
            svc.shutdown()

    def test_pinned_request_never_sees_newer_epochs_entry(self):
        svc = self._service()
        try:
            svc.load_graph("g", ring_graph(24))
            client = SamplingClient(svc)
            kwargs = dict(depth=3, seed=1, timeout=30)
            pinned = client.sample("g", "deepwalk", [0], epoch=0, **kwargs)
            # Keep epoch 0 alive across the update by holding a pinned
            # in-flight request? Not needed: sample both epochs before any
            # retirement happens by pinning explicitly.
            latest = client.sample("g", "deepwalk", [0], **kwargs)
            # Same request against the same epoch: hit.
            assert latest.stats["cache_hit"] is True
            assert pinned.epoch == latest.epoch == 0
            svc.update_graph("g", add_edges=[(0, 12), (12, 0)])
            new = client.sample("g", "deepwalk", [0], **kwargs)
            # Epoch 1's answer is computed fresh, not served from epoch 0's
            # (evicted) entry -- and differs where the graph differs.
            assert new.stats["cache_hit"] is False
            assert new.epoch == 1
        finally:
            svc.shutdown()

    def test_replan_invalidates_cached_results(self):
        svc = self._service()
        try:
            svc.load_graph("g", ring_graph(24))
            client = SamplingClient(svc)
            client.sample("g", "deepwalk", [0], depth=3, seed=1, timeout=30)
            assert len(svc.gateway.cache) == 1
            svc.memory_budget_bytes = 64
            assert svc.replan("g") == "out_of_memory"
            redone = client.sample("g", "deepwalk", [0], depth=3, seed=1,
                                   timeout=30)
            assert redone.stats["cache_hit"] is False
            assert redone.route == "out_of_memory"
        finally:
            svc.shutdown()


class TestSampleCacheUnit:
    def _entry(self, n=8):
        return CachedResult(
            samples=[(0, np.arange(2, dtype=np.int64),
                      np.arange(2 * n, dtype=np.int64).reshape(n, 2))],
            iteration_counts=[n],
            route="in_memory",
            coalesced_with=1,
            stats={"sampled_edges": float(n)},
        )

    def test_lru_eviction_respects_byte_budget(self):
        entry = self._entry()
        cache = SampleCache(max_bytes=3 * entry.nbytes)
        for i in range(4):
            cache.put(("g", 0, "a", i), self._entry())
        assert len(cache) == 3
        assert cache.current_bytes <= cache.max_bytes
        # Key 1 survives; key 0 (oldest) was evicted.
        assert cache.get(("g", 0, "a", 0)) is None
        assert cache.get(("g", 0, "a", 1)) is not None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 3

    def test_get_refreshes_recency(self):
        entry = self._entry()
        cache = SampleCache(max_bytes=2 * entry.nbytes)
        cache.put(("k", 1), self._entry())
        cache.put(("k", 2), self._entry())
        cache.get(("k", 1))  # now most recent
        cache.put(("k", 3), self._entry())  # evicts ("k", 2)
        assert cache.get(("k", 2)) is None
        assert cache.get(("k", 1)) is not None

    def test_oversized_entry_is_not_cached(self):
        entry = self._entry(n=64)
        cache = SampleCache(max_bytes=entry.nbytes - 1)
        cache.put(("big",), entry)
        assert len(cache) == 0

    def test_defensive_copies_both_directions(self):
        cache = SampleCache(max_bytes=1 << 20)
        entry = self._entry()
        cache.put(("k",), entry)
        entry.samples[0][2][:] = -5  # writer mutates after put
        out = cache.get(("k",))
        assert not np.array_equal(out.samples[0][2], entry.samples[0][2])
        out.samples[0][2][:] = -9  # reader mutates after get
        assert not np.array_equal(cache.get(("k",)).samples[0][2],
                                  out.samples[0][2])

    def test_invalidate_epoch_is_surgical(self):
        cache = SampleCache(max_bytes=1 << 20)
        cache.put(("g", 0, "a"), self._entry())
        cache.put(("g", 1, "a"), self._entry())
        cache.put(("h", 0, "a"), self._entry())
        assert cache.invalidate_epoch("g", 0) == 1
        assert sorted(k[:2] for k in cache.keys()) == [("g", 1), ("h", 0)]
        assert cache.stats()["invalidations"] == 1

    def test_clear_resets_contents_and_accounting(self):
        cache = SampleCache(max_bytes=1 << 20)
        cache.put(("k",), self._entry())
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.get(("k",)) is None

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            SampleCache(max_bytes=0)


class TestCacheKey:
    def test_identity_fields_excluded(self):
        a = SampleRequest(graph="g", algorithm="deepwalk", seeds=(1, 2),
                          tenant="alpha", priority=3)
        b = SampleRequest(graph="g", algorithm="deepwalk", seeds=(1, 2),
                          tenant="beta", priority=0)
        assert cache_key(a, 0) == cache_key(b, 0)
        assert cache_key(a, 0) != cache_key(a, 1)

    def test_config_and_kwargs_included(self):
        a = SampleRequest(graph="g", algorithm="deepwalk", seeds=(1,),
                          config_overrides={"depth": 4})
        b = SampleRequest(graph="g", algorithm="deepwalk", seeds=(1,),
                          config_overrides={"depth": 5})
        assert cache_key(a, 0) != cache_key(b, 0)
