"""Budget-change semantics: frozen admission plans and explicit replan().

Changing ``SamplingService.memory_budget_bytes`` after admission must not
silently resize or re-route an already-admitted graph (its plan sizing is
frozen); ``replan(name)`` is the explicit way to drain the graph's requests
and re-admit it under the settings now in force.
"""

import pytest

from repro.api.requests import SampleRequest
from repro.graph.generators import powerlaw_graph
from repro.planner.errors import SeedValidationError
from repro.service.server import SamplingService


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(400, 6.0, seed=2)


def make_service(**kwargs):
    defaults = dict(num_workers=1, mode="thread", batch_window_s=0.0)
    defaults.update(kwargs)
    return SamplingService(**defaults)


def sample_once(svc, name, **overrides):
    request = SampleRequest(
        graph=name, algorithm="deepwalk", seeds=(1, 2, 3),
        config_overrides={"seed": 7, **overrides},
    )
    return svc.submit(request).result(timeout=60)


class TestFrozenAdmission:
    def test_budget_change_does_not_reroute_until_replan(self, graph):
        with make_service(memory_budget_bytes=graph.nbytes + 1) as svc:
            assert svc.load_graph("g", graph) == "in_memory"
            # Shrink the budget: the admitted graph keeps its frozen plan.
            svc.memory_budget_bytes = 1024
            assert svc.route_of("g") == "in_memory"
            response = sample_once(svc, "g")
            assert response.route == "in_memory"
            # Explicit replan applies the new budget.
            assert svc.replan("g") == "out_of_memory"
            assert svc.route_of("g") == "out_of_memory"
            response = sample_once(svc, "g")
            assert response.route == "out_of_memory"
            assert response.plan["route"] == "out_of_memory"
            assert response.plan["num_partitions"] >= 2

    def test_replan_back_to_in_memory(self, graph):
        with make_service(memory_budget_bytes=1024) as svc:
            assert svc.load_graph("g", graph) == "out_of_memory"
            svc.memory_budget_bytes = graph.nbytes + 1
            assert svc.replan("g") == "in_memory"
            response = sample_once(svc, "g")
            assert response.route == "in_memory"

    def test_replan_to_sharded(self, graph):
        with make_service(
            memory_budget_bytes=graph.nbytes + 1, cluster_shards=2
        ) as svc:
            assert svc.load_graph("g", graph) == "in_memory"
            svc.memory_budget_bytes = graph.nbytes // 3
            assert svc.replan("g") == "sharded"
            response = sample_once(svc, "g")
            assert response.route == "sharded"
            # Shard count re-sized under the *new* budget: >= ceil(nbytes/budget).
            assert response.plan["num_partitions"] >= 3

    def test_replan_unknown_graph_raises(self, graph):
        with make_service() as svc:
            with pytest.raises(KeyError):
                svc.replan("nope")

    def test_replan_invalidates_cached_class_plans(self, graph):
        with make_service(memory_budget_bytes=graph.nbytes + 1) as svc:
            svc.load_graph("g", graph)
            sample_once(svc, "g")
            assert any(k[0] == "g" for k in svc._plans)
            svc.memory_budget_bytes = 1024
            svc.replan("g")
            response = sample_once(svc, "g")
            assert response.plan["route"] == "out_of_memory"

    def test_replan_waits_for_inflight_requests(self, graph):
        """replan must drain, not yank plans out from under running units."""
        with make_service(memory_budget_bytes=graph.nbytes + 1,
                          batch_window_s=0.002) as svc:
            svc.load_graph("g", graph)
            futures = [
                svc.submit(SampleRequest(
                    graph="g", algorithm="deepwalk", seeds=(i,),
                    config_overrides={"seed": i, "depth": 6},
                ))
                for i in range(8)
            ]
            svc.memory_budget_bytes = 1024
            route = svc.replan("g", timeout=30.0)
            assert route == "out_of_memory"
            for future in futures:
                response = future.result(timeout=60)
                # Requests admitted before the replan ran on the old plan.
                assert response.route == "in_memory"


class TestIntakePause:
    def test_replan_pauses_intake_while_draining(self, graph):
        """A submit racing a replan either lands before the drain or waits
        for the re-admission -- it can never run on the stale plan."""
        import threading
        import time

        with make_service(memory_budget_bytes=graph.nbytes + 1,
                          batch_window_s=0.002) as svc:
            svc.load_graph("g", graph)
            sample_once(svc, "g")
            svc.memory_budget_bytes = 1024

            release = threading.Event()
            routes = []

            def submit_during_replan():
                release.wait(5.0)
                # Issued while the gate is (likely) closed: blocks until
                # the replan finishes, then runs on the NEW plan.
                routes.append(sample_once(svc, "g").route)

            thread = threading.Thread(target=submit_during_replan)
            thread.start()

            original_admit = svc._admit

            def admit_with_pause(handle):
                # The gate is closed here; let the submitter run into it.
                release.set()
                time.sleep(0.05)
                return original_admit(handle)

            svc._admit = admit_with_pause
            try:
                assert svc.replan("g", timeout=30.0) == "out_of_memory"
            finally:
                svc._admit = original_admit
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert routes == ["out_of_memory"]

    def test_paused_intake_times_out_transient(self, graph):
        """Submitters blocked past intake_pause_timeout_s fail transient
        (the clients' retry machinery resubmits them)."""
        from repro.service.server import ServiceError

        with make_service(intake_pause_timeout_s=0.05) as svc:
            svc.load_graph("g", graph)
            svc._intake_gate.clear()  # simulate a wedged replan
            try:
                with pytest.raises(ServiceError) as info:
                    svc.submit(SampleRequest(
                        graph="g", algorithm="deepwalk", seeds=(1,),
                    ))
                assert info.value.transient
            finally:
                svc._intake_gate.set()

    def test_replan_waits_for_submit_past_the_gate(self, graph):
        """_intake_open > 0 keeps the drain busy: a submit that already
        passed the gate finishes before re-admission proceeds."""
        with make_service(memory_budget_bytes=graph.nbytes + 1) as svc:
            svc.load_graph("g", graph)
            with svc._lock:
                svc._intake_open += 1  # a submit is past the gate right now
            import threading
            import time

            def land_later():
                time.sleep(0.1)
                with svc._lock:
                    svc._intake_open -= 1

            thread = threading.Thread(target=land_later)
            thread.start()
            svc.memory_budget_bytes = 1024
            started = time.perf_counter()
            assert svc.replan("g", timeout=10.0) == "out_of_memory"
            assert time.perf_counter() - started >= 0.09
            thread.join()


class TestResponsePlanMetadata:
    def test_response_carries_plan_and_explain(self, graph):
        with make_service(memory_budget_bytes=graph.nbytes + 1) as svc:
            svc.load_graph("g", graph)
            response = sample_once(svc, "g")
            assert response.plan is not None
            assert response.plan["route"] == "in_memory"
            assert response.plan["algorithm"] == "deepwalk"
            assert response.plan["predicted_time_s"] > 0
            assert "ExecutionPlan" in response.plan["explain"]

    def test_submit_time_seed_validation_is_uniform(self, graph):
        with make_service() as svc:
            svc.load_graph("g", graph)
            with pytest.raises(SeedValidationError):
                svc.submit(SampleRequest(
                    graph="g", algorithm="deepwalk",
                    seeds=(graph.num_vertices + 1,),
                ))
            # Duplicates inside one instance pool: rejected for
            # without-replacement programs, allowed for walks.
            with pytest.raises(SeedValidationError, match="duplicate"):
                svc.submit(SampleRequest(
                    graph="g", algorithm="unbiased_neighbor_sampling",
                    seeds=((1, 1, 2),),
                ))
            response = svc.submit(SampleRequest(
                graph="g", algorithm="deepwalk", seeds=((1, 1, 2),),
            )).result(timeout=60)
            assert response.ok
