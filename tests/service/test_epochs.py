"""Graph versioning: store epochs, pinned requests, drain-and-release."""

import time

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.requests import SampleRequest
from repro.api.sampler import GraphSampler
from repro.graph import from_edge_list, ring_graph
from repro.graph.delta import DeltaGraph
from repro.service import (
    SamplingClient,
    SamplingService,
    SharedGraphStore,
    attach,
    leaked_segments,
)


@pytest.fixture
def graph_v0():
    return ring_graph(24)


def mutated(graph):
    delta = DeltaGraph(graph)
    delta.add_edge(0, 12)
    delta.add_edge(12, 0)
    delta.remove_edge(1, 2)
    return delta.to_csr()


class TestStoreEpochs:
    def test_put_then_publish_creates_epochs(self, graph_v0):
        with SharedGraphStore(prefix="ep0test") as store:
            h0 = store.put("g", graph_v0)
            assert h0.epoch == 0
            h1 = store.publish("g", mutated(graph_v0))
            assert h1.epoch == 1
            assert store.epochs("g") == [0, 1]
            assert store.latest_epoch("g") == 1
            # Default accessors resolve the latest epoch.
            assert store.handle("g").epoch == 1
            assert store.graph("g").num_edges == h1.num_edges
            # The old epoch is still mapped and attachable.
            assert store.graph("g", 0).num_edges == graph_v0.num_edges
            mapped = attach(store.handle("g", 0))
            assert np.array_equal(mapped.graph.col_idx, graph_v0.col_idx)
            mapped.close()
        assert leaked_segments("ep0test") == []

    def test_publish_requires_existing_name(self, graph_v0):
        with SharedGraphStore(prefix="ep1test") as store:
            with pytest.raises(KeyError):
                store.publish("nope", graph_v0)

    def test_release_single_epoch(self, graph_v0):
        with SharedGraphStore(prefix="ep2test") as store:
            store.put("g", graph_v0)
            store.publish("g", mutated(graph_v0))
            store.release("g", 0)
            assert store.epochs("g") == [1]
            with pytest.raises(KeyError):
                store.handle("g", 0)
            # Epoch numbers are never reused.
            assert store.publish("g", graph_v0).epoch == 2
        assert leaked_segments("ep2test") == []

    def test_release_all_epochs_forgets_name(self, graph_v0):
        with SharedGraphStore(prefix="ep3test") as store:
            store.put("g", graph_v0)
            store.publish("g", mutated(graph_v0))
            store.release("g")
            assert "g" not in store.names()
        assert leaked_segments("ep3test") == []


class TestServiceEpochs:
    def _service(self, **kwargs):
        kwargs.setdefault("num_workers", 1)
        kwargs.setdefault("mode", "thread")
        kwargs.setdefault("batch_window_s", 0.0)
        kwargs.setdefault("max_batch_requests", 1)
        return SamplingService(**kwargs)

    def test_update_graph_serves_new_epoch(self, graph_v0):
        svc = self._service()
        try:
            svc.load_graph("g", graph_v0)
            assert svc.graph_epoch("g") == 0
            epoch = svc.update_graph("g", add_edges=[(0, 12), (12, 0)],
                                     remove_edges=[(1, 2)])
            assert epoch == 1
            assert svc.graph_epoch("g") == 1
            client = SamplingClient(svc)
            response = client.sample("g", "deepwalk", [0], depth=4, seed=3,
                                     timeout=30)
            assert response.epoch == 1
            info = ALGORITHM_REGISTRY["deepwalk"]
            ref = GraphSampler(
                mutated(graph_v0), info.program_factory(),
                info.config_factory(depth=4, seed=3),
            ).run([0])
            assert np.array_equal(response.samples[0].edges, ref.samples[0].edges)
        finally:
            svc.shutdown()

    def test_update_graph_accepts_delta_object(self, graph_v0):
        svc = self._service()
        try:
            svc.load_graph("g", graph_v0)
            delta = DeltaGraph(graph_v0)
            delta.add_edge(3, 9)
            assert svc.update_graph("g", delta) == 1
            assert svc.store.graph("g").num_edges == graph_v0.num_edges + 1
        finally:
            svc.shutdown()

    def test_update_graph_argument_validation(self, graph_v0):
        svc = self._service()
        try:
            svc.load_graph("g", graph_v0)
            with pytest.raises(ValueError):
                svc.update_graph("g")
            with pytest.raises(ValueError):
                svc.update_graph("g", graph_v0, add_edges=[(0, 1)])
        finally:
            svc.shutdown()

    def test_pinned_epoch_requests(self, graph_v0):
        svc = self._service()
        try:
            svc.load_graph("g", graph_v0)
            client = SamplingClient(svc)
            pinned = client.sample("g", "deepwalk", [1], depth=3, seed=5,
                                   epoch=0, timeout=30)
            assert pinned.epoch == 0
            with pytest.raises(KeyError):
                svc.submit(SampleRequest(graph="g", algorithm="deepwalk",
                                         seeds=(1,), epoch=7))
        finally:
            svc.shutdown()

    def test_pinning_a_retiring_epoch_is_rejected(self, graph_v0):
        svc = self._service()
        try:
            svc.load_graph("g", graph_v0)
            svc.update_graph("g", add_edges=[(0, 5)])
            # Epoch 0 drained instantly (no in-flight work): it is released.
            deadline = time.time() + 5
            while svc.store.epochs("g") != [1] and time.time() < deadline:
                time.sleep(0.01)
            assert svc.store.epochs("g") == [1]
            with pytest.raises(KeyError):
                svc.submit(SampleRequest(graph="g", algorithm="deepwalk",
                                         seeds=(1,), epoch=0))
        finally:
            svc.shutdown()

    def test_inflight_requests_finish_on_their_epoch(self, graph_v0):
        prefix = "ep4test"
        store = SharedGraphStore(prefix=prefix)
        svc = self._service(num_workers=2, store=store)
        try:
            svc.load_graph("g", graph_v0)
            # A chunky request bound to epoch 0...
            future = svc.submit(SampleRequest(
                graph="g", algorithm="deepwalk", seeds=tuple(range(24)),
                num_instances=600, config_overrides={"depth": 40, "seed": 2},
            ))
            # ... then the graph moves on to epoch 1 while it may be running.
            svc.update_graph("g", add_edges=[(0, 12)])
            response = future.result(timeout=60)
            assert response.epoch == 0
            info = ALGORITHM_REGISTRY["deepwalk"]
            ref = GraphSampler(
                graph_v0, info.program_factory(),
                info.config_factory(depth=40, seed=2),
            ).run(list(range(24)), num_instances=600)
            assert np.array_equal(response.samples[17].edges,
                                  ref.samples[17].edges)
            # Once the epoch-0 request drained, epoch 0 must release.
            deadline = time.time() + 10
            while svc.store.epochs("g") != [1] and time.time() < deadline:
                time.sleep(0.01)
            assert svc.store.epochs("g") == [1]
        finally:
            svc.shutdown()
            store.close()
        assert leaked_segments(prefix) == []

    def test_requests_across_epochs_never_fuse(self, graph_v0):
        # A wide batching window would fuse these if epochs were ignored;
        # the epoch in the grouping key keeps them apart.
        svc = self._service(batch_window_s=0.05, max_batch_requests=16,
                            num_workers=1)
        try:
            svc.load_graph("g", graph_v0)
            f0 = svc.submit(SampleRequest(
                graph="g", algorithm="deepwalk", seeds=(0, 1),
                config_overrides={"depth": 4, "seed": 9},
            ))
            svc.update_graph("g", add_edges=[(1, 7)])
            f1 = svc.submit(SampleRequest(
                graph="g", algorithm="deepwalk", seeds=(0, 1),
                config_overrides={"depth": 4, "seed": 9},
            ))
            r0, r1 = f0.result(timeout=30), f1.result(timeout=30)
            assert (r0.epoch, r1.epoch) == (0, 1)
            info = ALGORITHM_REGISTRY["deepwalk"]
            config = info.config_factory(depth=4, seed=9)
            for response, base in ((r0, graph_v0),
                                   (r1, svc.store.graph("g", 1))):
                ref = GraphSampler(base, info.program_factory(), config).run([0, 1])
                for a, b in zip(ref.samples, response.samples):
                    assert np.array_equal(a.edges, b.edges)
        finally:
            svc.shutdown()

    def test_route_reevaluated_per_epoch(self, graph_v0):
        big = ring_graph(4000)
        svc = self._service(memory_budget_bytes=graph_v0.nbytes + 64)
        try:
            svc.load_graph("g", graph_v0)
            assert svc.route_of("g") == "in_memory"
            svc.update_graph("g", big)
            assert svc.route_of("g") == "out_of_memory"
            client = SamplingClient(svc)
            response = client.sample("g", "deepwalk", [5], depth=3, seed=1,
                                     timeout=60)
            assert response.route == "out_of_memory"
            assert response.epoch == 1
        finally:
            svc.shutdown()

    def test_process_workers_follow_epochs(self, graph_v0):
        prefix = "ep5test"
        store = SharedGraphStore(prefix=prefix)
        svc = SamplingService(num_workers=2, mode="process",
                              batch_window_s=0.0, max_batch_requests=1,
                              store=store)
        try:
            svc.load_graph("g", graph_v0)
            client = SamplingClient(svc)
            r0 = client.sample("g", "deepwalk", [2], depth=3, seed=4, timeout=60)
            svc.update_graph("g", add_edges=[(2, 13), (13, 2)])
            r1 = client.sample("g", "deepwalk", [2], depth=3, seed=4, timeout=60)
            assert (r0.epoch, r1.epoch) == (0, 1)
            info = ALGORITHM_REGISTRY["deepwalk"]
            config = info.config_factory(depth=3, seed=4)
            ref = GraphSampler(svc.store.graph("g", 1), info.program_factory(),
                               config).run([2])
            assert np.array_equal(r1.samples[0].edges, ref.samples[0].edges)
        finally:
            svc.shutdown()
            store.close()
        assert leaked_segments(prefix) == []
