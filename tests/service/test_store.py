"""Shared-memory graph store: publish/attach lifecycle and mmap loading."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_graph
from repro.graph.io import load_npz, save_npz
from repro.service.store import SharedGraphStore, attach, leaked_segments


@pytest.fixture()
def graph():
    return powerlaw_graph(500, 6.0, seed=4)


@pytest.fixture()
def weighted(graph):
    rng = np.random.default_rng(9)
    return graph.with_weights(rng.uniform(0.1, 2.0, size=graph.num_edges))


class TestStoreLifecycle:
    def test_put_and_owner_view_roundtrip(self, graph):
        with SharedGraphStore() as store:
            handle = store.put("g", graph)
            assert handle.num_vertices == graph.num_vertices
            assert handle.num_edges == graph.num_edges
            assert not handle.weighted
            assert store.graph("g") == graph

    def test_weighted_roundtrip(self, weighted):
        with SharedGraphStore() as store:
            handle = store.put("g", weighted)
            assert handle.weighted
            assert store.graph("g") == weighted

    def test_attach_is_zero_copy(self, graph):
        with SharedGraphStore() as store:
            mapping = attach(store.put("g", graph))
            try:
                assert mapping.graph == graph
                # The attached arrays must be views over the shared buffer,
                # not heap copies.
                assert not mapping.graph.col_idx.flags["OWNDATA"]
                assert not mapping.graph.row_ptr.flags["OWNDATA"]
            finally:
                mapping.close()

    def test_refcount_tracks_attachments(self, graph):
        with SharedGraphStore() as store:
            handle = store.put("g", graph)
            assert store.refcount("g") == 1  # the owner's reference
            first = attach(handle)
            second = attach(handle)
            assert store.refcount("g") == 3
            first.close()
            assert store.refcount("g") == 2
            first.close()  # idempotent
            assert store.refcount("g") == 2
            second.close()
            assert store.refcount("g") == 1

    def test_release_unlinks_segments(self, graph):
        store = SharedGraphStore()
        store.put("g", graph)
        prefix = store.prefix
        assert leaked_segments(prefix)
        store.release("g")
        assert leaked_segments(prefix) == []
        with pytest.raises(KeyError):
            store.handle("g")
        store.close()

    def test_close_unlinks_everything(self, graph):
        store = SharedGraphStore()
        store.put("a", graph)
        store.put("b", graph)
        prefix = store.prefix
        store.close()
        assert leaked_segments(prefix) == []

    def test_duplicate_name_rejected(self, graph):
        with SharedGraphStore() as store:
            store.put("g", graph)
            with pytest.raises(ValueError):
                store.put("g", graph)

    def test_segment_names_not_reused_after_release(self, graph):
        with SharedGraphStore() as store:
            store.put("a", graph)
            store.put("b", graph)
            store.release("a")
            handle = store.put("c", graph)
            b_names = {name for _, name, _, _ in store.handle("b").segments}
            assert b_names.isdisjoint(name for _, name, _, _ in handle.segments)
            assert store.graph("b") == graph


class TestMmapLoading:
    def test_uncompressed_npz_memory_maps(self, weighted, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(weighted, path, compressed=False)
        mapped = load_npz(path, mmap=True)
        assert mapped == weighted
        # Views over the file mapping, not heap copies.
        assert isinstance(mapped.col_idx.base, np.memmap)
        assert isinstance(mapped.row_ptr.base, np.memmap)
        assert isinstance(mapped.weights.base, np.memmap)
        assert np.array_equal(mapped.neighbors(5), weighted.neighbors(5))

    def test_compressed_npz_falls_back_to_copy(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path, compressed=True)
        loaded = load_npz(path, mmap=True)
        assert loaded == graph
        assert loaded.col_idx.base is None or not isinstance(
            loaded.col_idx.base, np.memmap
        )

    def test_store_loads_npz_directly(self, weighted, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(weighted, path, compressed=False)
        with SharedGraphStore() as store:
            handle = store.load_npz_file("g", path)
            assert handle.weighted
            assert store.graph("g") == weighted
