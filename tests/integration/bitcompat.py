"""Shared bit-compatibility scaffolding for the equivalence suites.

One comparison vocabulary for every bit-compat suite (engine vs scalar,
sharded invariance, dynamic-graph compaction, and the planner's cross-route
matrix): a :class:`~repro.api.results.SampleResult` is *bit-identical* to
another when the samples (ids, seeds, edges -- in order), the per-selection
iteration counts and the cost-model totals all match exactly.
"""

import numpy as np

__all__ = ["assert_equivalent", "assert_same_samples", "fingerprint"]


def assert_same_samples(a, b):
    """Per-instance samples match bitwise (ids, seeds, edges, in order)."""
    assert len(a.samples) == len(b.samples)
    for sa, sb in zip(a.samples, b.samples):
        assert sa.instance_id == sb.instance_id
        assert np.array_equal(sa.seeds, sb.seeds)
        assert np.array_equal(sa.edges, sb.edges)


def assert_equivalent(a, b, *, kernels=False):
    """Bitwise comparison of two SampleResults.

    Covers samples, iteration counts and cost totals; ``kernels=True``
    additionally compares the per-kernel records (the in-memory engine
    contract -- routes that reattribute kernels, like coalescing, skip it).
    """
    assert_same_samples(a, b)
    assert a.cost.as_dict() == b.cost.as_dict()
    assert a.iteration_counts == b.iteration_counts
    if kernels:
        assert len(a.kernels) == len(b.kernels)
        for ka, kb in zip(a.kernels, b.kernels):
            assert ka.cost.as_dict() == kb.cost.as_dict()
            assert ka.num_warp_tasks == kb.num_warp_tasks


def fingerprint(result):
    """Everything the bit-compat contract covers, as a comparable value."""
    return (
        tuple(
            (s.instance_id, tuple(map(int, s.seeds)), tuple(map(tuple, s.edges)))
            for s in result.samples
        ),
        tuple(result.iteration_counts),
        tuple(sorted(result.cost.as_dict().items())),
    )
