"""Scalar-loop vs batched-engine equivalence (the engine's acceptance bar).

The batched execution engine must be a pure performance transformation: for a
fixed seed it has to produce *bit-identical* results to the legacy
instance-by-instance scalar loop -- the same sampled edges in the same order,
the same per-selection iteration counts, the same cost-model totals and the
same per-kernel statistics.  These tests assert that for every registered
algorithm, for both samplers (in-memory and out-of-memory), across collision
strategies, detectors and frontier-selection configurations.
"""

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.graph.generators import powerlaw_graph
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler

from bitcompat import assert_equivalent as _assert_equivalent


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(300, 6.0, exponent=2.2, seed=3)


@pytest.fixture(scope="module")
def weighted_graph(graph):
    rng = np.random.default_rng(7)
    return graph.with_weights(rng.uniform(0.1, 2.0, size=graph.num_edges))


SEEDS = list(range(0, 300, 11))


def assert_equivalent(scalar, engine):
    """Bitwise comparison incl. per-kernel records (shared scaffolding)."""
    _assert_equivalent(scalar, engine, kernels=True)


def run_both(graph, info, config, seeds, **run_kwargs):
    scalar = GraphSampler(
        graph, info.program_factory(), config, use_engine=False
    ).run(seeds, **run_kwargs)
    engine = GraphSampler(
        graph, info.program_factory(), config, use_engine=True
    ).run(seeds, **run_kwargs)
    return scalar, engine


class TestInMemoryEquivalence:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_every_registered_algorithm(self, graph, name):
        info = ALGORITHM_REGISTRY[name]
        scalar, engine = run_both(
            graph, info, info.config_factory(seed=11), SEEDS, num_instances=30
        )
        assert_equivalent(scalar, engine)

    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_every_registered_algorithm_weighted(self, weighted_graph, name):
        info = ALGORITHM_REGISTRY[name]
        scalar, engine = run_both(
            weighted_graph, info, info.config_factory(seed=5), SEEDS, num_instances=20
        )
        assert_equivalent(scalar, engine)

    @pytest.mark.parametrize("strategy", ["bipartite", "repeated", "updated"])
    @pytest.mark.parametrize("detector", ["strided_bitmap", "bitmap", "linear"])
    def test_collision_strategy_matrix(self, graph, strategy, detector):
        info = ALGORITHM_REGISTRY["unbiased_neighbor_sampling"]
        config = info.config_factory(seed=3, neighbor_size=3, depth=3).replace(
            strategy=strategy, detector=detector
        )
        scalar, engine = run_both(graph, info, config, SEEDS, num_instances=20)
        assert_equivalent(scalar, engine)

    @pytest.mark.parametrize(
        "name", ["multidimensional_random_walk", "unbiased_neighbor_sampling",
                 "node2vec", "layer_sampling"]
    )
    def test_frontier_selection_interleaving(self, graph, name):
        """Multi-seed pools force line-4 SELECT warps between per-vertex warps."""
        info = ALGORITHM_REGISTRY[name]
        # choice(replace=False): duplicate seeds inside one instance's pool
        # are rejected by the planner's plan-time seed validation.
        nested = [
            [int(v) for v in np.random.default_rng(i).choice(300, 5, replace=False)]
            for i in range(10)
        ]
        config = info.config_factory(seed=7).replace(frontier_size=2)
        scalar, engine = run_both(graph, info, config, nested)
        assert_equivalent(scalar, engine)

    def test_device_cost_accumulation_matches(self, graph):
        info = ALGORITHM_REGISTRY["simple_random_walk"]
        s1 = GraphSampler(graph, info.program_factory(), info.config_factory(seed=1),
                          use_engine=False)
        s2 = GraphSampler(graph, info.program_factory(), info.config_factory(seed=1),
                          use_engine=True)
        s1.run(SEEDS, num_instances=10)
        s2.run(SEEDS, num_instances=10)
        assert s1.device.cost.as_dict() == s2.device.cost.as_dict()


class TestOutOfMemoryEquivalence:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    @pytest.mark.parametrize(
        "oom_config",
        [OutOfMemoryConfig.baseline(), OutOfMemoryConfig.batched_only(),
         OutOfMemoryConfig.fully_optimized()],
        ids=["baseline", "BA", "BA+WS+BAL"],
    )
    def test_oom_paths(self, graph, name, oom_config):
        info = ALGORITHM_REGISTRY[name]
        config = info.config_factory(seed=9)
        scalar = OutOfMemorySampler(
            graph, info.program_factory(), config, oom_config, use_engine=False
        ).run(SEEDS, num_instances=15)
        engine = OutOfMemorySampler(
            graph, info.program_factory(), config, oom_config, use_engine=True
        ).run(SEEDS, num_instances=15)
        assert_equivalent(scalar.sample, engine.sample)
        assert scalar.rounds == engine.rounds
        assert scalar.partition_transfers == engine.partition_transfers
        assert scalar.makespan == pytest.approx(engine.makespan)

    def test_oom_engine_run_is_deterministic(self, graph):
        """Two engine runs of the same configuration are bit-identical."""
        info = ALGORITHM_REGISTRY["simple_random_walk"]
        config = info.config_factory(seed=2, depth=4)
        runs = [
            OutOfMemorySampler(
                graph, info.program_factory(), config,
                OutOfMemoryConfig.batched_only(), use_engine=True,
            ).run(SEEDS, num_instances=10)
            for _ in range(2)
        ]
        assert_equivalent(runs[0].sample, runs[1].sample)
        assert runs[0].makespan == runs[1].makespan


class TestEngineContracts:
    @pytest.mark.parametrize("use_engine", [False, True])
    def test_prev_vertex_only_set_for_single_vertex_frontiers(self, graph, use_engine):
        """Multi-vertex frontiers must not clobber prev_vertex (the node2vec bug)."""
        from repro.api.instance import make_instances
        from repro.gpusim.costmodel import CostModel

        info = ALGORITHM_REGISTRY["unbiased_neighbor_sampling"]
        sampler = GraphSampler(
            graph, info.program_factory(),
            info.config_factory(seed=1, depth=2), use_engine=use_engine,
        )
        insts = make_instances([[1, 2, 3]])
        if use_engine:
            sampler.engine.step_instances(insts, 0, CostModel(), [])
        else:
            sampler._step_instance(insts[0], 0, CostModel(), [])
        assert insts[0].prev_vertex == -1  # three-vertex frontier: untouched

    def test_walk_prev_vertex_still_tracked(self, graph):
        """Single-vertex (walk) frontiers keep feeding node2vec's dynamic bias."""
        from repro.api.instance import make_instances
        from repro.gpusim.costmodel import CostModel

        info = ALGORITHM_REGISTRY["simple_random_walk"]
        sampler = GraphSampler(
            graph, info.program_factory(), info.config_factory(seed=1),
            use_engine=True,
        )
        insts = make_instances([5])
        sampler.engine.step_instances(insts, 0, CostModel(), [])
        assert insts[0].prev_vertex == 5

    def test_push_batch_matches_push_many(self):
        from repro.api.frontier import FrontierQueue

        q1, q2 = FrontierQueue(), FrontierQueue()
        q1.push_many(np.array([4, 5, 6]), instance=2, depth=3)
        q2.push_batch(np.array([4, 5, 6]), np.array([2, 2, 2]), np.array([3, 3, 3]))
        assert list(q1) == list(q2)
        # Scalar broadcast form.
        q3 = FrontierQueue()
        q3.push_batch(np.array([4, 5, 6]), 2, 3)
        assert list(q1) == list(q3)
