"""Cross-route equivalence matrix: the planner refactor's acceptance bar.

Every registry algorithm, through every planner route, must be bit-identical
to its reference execution:

* ``in_memory``  -- the planner-driven engine run vs the legacy scalar loop
  (samples, iteration counts, cost totals *and* per-kernel records);
* ``coalesced``  -- every member of a fused batch vs a standalone run of
  just that member (samples + iteration counts; cost is the batch's);
* ``out_of_memory`` -- the planner-driven engine scheduler vs the scalar
  per-entry expansion, fully optimised (BA + WS + BAL);
* ``sharded``    -- shard-count invariance (1 vs 3 shards, in-process).

The suite is parametrized as one (algorithm x route) matrix over the shared
scaffolding in ``bitcompat.py`` -- the single successor of the three
bespoke bit-compat suites' private comparison helpers.  It also pins the
plan metadata: each facade must *construct* an ExecutionPlan whose route
matches the tier it is.
"""

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.distributed import ShardedSamplingCluster
from repro.engine.hetero import run_coalesced
from repro.graph.generators import powerlaw_graph
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler

from bitcompat import assert_equivalent, assert_same_samples, fingerprint

ALL_ALGORITHMS = sorted(ALGORITHM_REGISTRY)
ROUTES = ("in_memory", "coalesced", "out_of_memory", "sharded")

NUM_SEEDS = 10


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(150, 6.0, exponent=2.2, seed=5)


@pytest.fixture(scope="module")
def seeds(graph):
    step = graph.num_vertices // NUM_SEEDS
    return [int(s) for s in range(0, graph.num_vertices, step)][:NUM_SEEDS]


def _check_in_memory(graph, info, seeds):
    config = info.config_factory(seed=11)
    scalar = GraphSampler(
        graph, info.program_factory(), config, use_engine=False
    ).run(seeds)
    engine_sampler = GraphSampler(graph, info.program_factory(), config)
    assert engine_sampler.plan(seeds).route == "in_memory"
    engine = engine_sampler.run(seeds)
    assert_equivalent(scalar, engine, kernels=True)


def _check_coalesced(graph, info, seeds):
    from repro.api.instance import make_instances

    config = info.config_factory(seed=11)
    if not info.program_factory().supports_coalescing:
        # Stateful programs never fuse; the planner must refuse the batch.
        from repro.planner.errors import PlanError
        from repro.planner.planner import PlanRequest, plan

        with pytest.raises(PlanError, match="stateful"):
            plan(PlanRequest(
                graph=graph,
                program=info.program_factory(),
                config=config,
                members=[make_instances(seeds[:5]), make_instances(seeds[5:])],
                force_route="coalesced",
            ))
        return
    halves = [seeds[:5], seeds[5:]]
    batch = run_coalesced(
        graph, info.program_factory(), config,
        [make_instances(h) for h in halves],
    )
    for half, member_result in zip(halves, batch):
        solo = GraphSampler(graph, info.program_factory(), config).run(half)
        assert_same_samples(solo, member_result)
        assert solo.iteration_counts == member_result.iteration_counts


def _check_out_of_memory(graph, info, seeds):
    config = info.config_factory(seed=9)
    oom = OutOfMemoryConfig.fully_optimized(num_partitions=3)
    runs = {}
    for use_engine in (False, True):
        sampler = OutOfMemorySampler(
            graph, info.program_factory(), config, oom, use_engine=use_engine
        )
        plan = sampler.plan(seeds)
        assert plan.route == "out_of_memory"
        assert plan.layout.oom is oom
        runs[use_engine] = sampler.run(seeds)
    assert_equivalent(runs[False].sample, runs[True].sample)
    assert runs[False].rounds == runs[True].rounds
    assert runs[False].makespan == pytest.approx(runs[True].makespan)


def _check_sharded(graph, info, seeds):
    results = []
    for num_shards in (1, 3):
        cluster = ShardedSamplingCluster(
            graph, info.name, num_shards=num_shards
        )
        plan = cluster.plan(seeds)
        assert plan.route == "sharded"
        assert plan.layout.num_partitions == cluster.num_shards
        results.append(cluster.run(seeds))
    assert fingerprint(results[0].result) == fingerprint(results[1].result)
    assert results[0].result.total_sampled_edges > 0


_CHECKS = {
    "in_memory": _check_in_memory,
    "coalesced": _check_coalesced,
    "out_of_memory": _check_out_of_memory,
    "sharded": _check_sharded,
}


class TestCrossRouteMatrix:
    @pytest.mark.parametrize("route", ROUTES)
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_route_is_bit_identical(self, graph, seeds, algorithm, route):
        _CHECKS[route](graph, ALGORITHM_REGISTRY[algorithm], seeds)


# --------------------------------------------------------------------------- #
# The compiled axis: every algorithm, compiled tier on vs off, every route
# --------------------------------------------------------------------------- #

#: Registry algorithms whose (program, default config) compile -- everything
#: but the four stateful-hook programs below.
COMPILED = frozenset(
    {
        "simple_random_walk",
        "deepwalk",
        "biased_random_walk",
        "node2vec",
        "unbiased_neighbor_sampling",
        "biased_neighbor_sampling",
        "snowball_sampling",
        "layer_sampling",
        "multidimensional_random_walk",
    }
)

#: Of those, the walk shapes that run on the fused walk kernel in-memory;
#: the rest run on the compiled step engine.
COMPILED_WALKS = frozenset(
    {"simple_random_walk", "deepwalk", "biased_random_walk", "node2vec"}
)

#: Stateful-hook programs stay interpreted, each with an explicit reason.
STATEFUL_REASONS = {
    "forest_fire": "overrides",
    "random_walk_with_jump": "overrides",
    "random_walk_with_restart": "overrides",
    "metropolis_hastings": "accept",
}


class TestCompiledAxis:
    """Compiled step kernels vs the interpreted engine, per algorithm.

    The compiled tier is on by default, so the compiled-on leg is exactly
    what users run; the compiled-off leg pins the interpreted reference.
    Bit-identity covers samples, iteration counts, cost totals *and* the
    per-kernel records -- the compiled tier must charge every counter the
    interpreted MAIN loop charges, per depth step.
    """

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_compiled_matches_interpreted_in_memory(self, graph, seeds, algorithm):
        info = ALGORITHM_REGISTRY[algorithm]
        config = info.config_factory(seed=11)
        interp_sampler = GraphSampler(
            graph, info.program_factory(), config, use_compiled=False
        )
        interp_plan = interp_sampler.plan(seeds)
        assert interp_plan.step_tier == "interpreted"
        assert interp_plan.compiled_fallback == "compiled tier disabled by request"
        interp = interp_sampler.run(seeds)

        compiled_sampler = GraphSampler(graph, info.program_factory(), config)
        plan = compiled_sampler.plan(seeds)
        if algorithm in COMPILED:
            assert plan.step_tier == "compiled"
            assert plan.compiled_backend in ("numpy", "numba")
            assert plan.compiled_fallback is None
        else:
            # Stateful-hook programs stay interpreted with a recorded reason.
            assert plan.step_tier == "interpreted"
            reason_match = next(
                v for k, v in STATEFUL_REASONS.items() if algorithm.startswith(k)
            )
            assert reason_match in plan.compiled_fallback
        compiled = compiled_sampler.run(seeds)
        assert_equivalent(interp, compiled, kernels=True)

    @pytest.mark.parametrize("algorithm", sorted(COMPILED))
    def test_compiled_matches_interpreted_coalesced(self, graph, seeds, algorithm):
        from repro.api.instance import make_instances

        info = ALGORITHM_REGISTRY[algorithm]
        config = info.config_factory(seed=11)
        halves = [seeds[:5], seeds[5:]]
        batches = {}
        for use_compiled in (False, None):
            batches[use_compiled] = run_coalesced(
                graph, info.program_factory(), config,
                [make_instances(h) for h in halves],
                use_compiled=use_compiled,
            )
        for interp_member, compiled_member in zip(batches[False], batches[None]):
            assert_same_samples(interp_member, compiled_member)
            assert interp_member.iteration_counts == compiled_member.iteration_counts
            assert interp_member.cost.as_dict() == compiled_member.cost.as_dict()
        # ... and each compiled member still replays its standalone stream.
        for half, member_result in zip(halves, batches[None]):
            solo = GraphSampler(graph, info.program_factory(), config).run(half)
            assert_same_samples(solo, member_result)
            assert solo.iteration_counts == member_result.iteration_counts

    @pytest.mark.parametrize("algorithm", sorted(COMPILED))
    def test_oom_route_compiles_bit_identically(self, graph, seeds, algorithm):
        info = ALGORITHM_REGISTRY[algorithm]
        config = info.config_factory(seed=9)
        oom = OutOfMemoryConfig.fully_optimized(num_partitions=3)
        runs = {}
        for use_compiled in (False, None):
            sampler = OutOfMemorySampler(
                graph, info.program_factory(), config, oom,
                use_compiled=use_compiled,
            )
            plan = sampler.plan(seeds)
            expected = "interpreted" if use_compiled is False else "compiled"
            assert plan.step_tier == expected
            runs[use_compiled] = sampler.run(seeds)
        assert_equivalent(runs[False].sample, runs[None].sample)
        assert runs[False].rounds == runs[None].rounds
        assert runs[False].makespan == pytest.approx(runs[None].makespan)

    @pytest.mark.parametrize("algorithm", sorted(COMPILED))
    def test_sharded_route_compiles_bit_identically(
        self, graph, seeds, algorithm, monkeypatch
    ):
        info = ALGORITHM_REGISTRY[algorithm]
        cluster = ShardedSamplingCluster(graph, info.name, num_shards=3)
        plan = cluster.plan(seeds)
        assert plan.step_tier == "compiled"
        compiled = cluster.run(seeds)

        monkeypatch.setenv("REPRO_COMPILED", "0")
        interp_cluster = ShardedSamplingCluster(graph, info.name, num_shards=3)
        assert interp_cluster.plan(seeds).step_tier == "interpreted"
        interp = interp_cluster.run(seeds)
        assert fingerprint(interp.result) == fingerprint(compiled.result)
        assert compiled.result.total_sampled_edges > 0
