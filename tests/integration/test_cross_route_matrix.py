"""Cross-route equivalence matrix: the planner refactor's acceptance bar.

Every registry algorithm, through every planner route, must be bit-identical
to its reference execution:

* ``in_memory``  -- the planner-driven engine run vs the legacy scalar loop
  (samples, iteration counts, cost totals *and* per-kernel records);
* ``coalesced``  -- every member of a fused batch vs a standalone run of
  just that member (samples + iteration counts; cost is the batch's);
* ``out_of_memory`` -- the planner-driven engine scheduler vs the scalar
  per-entry expansion, fully optimised (BA + WS + BAL);
* ``sharded``    -- shard-count invariance (1 vs 3 shards, in-process).

The suite is parametrized as one (algorithm x route) matrix over the shared
scaffolding in ``bitcompat.py`` -- the single successor of the three
bespoke bit-compat suites' private comparison helpers.  It also pins the
plan metadata: each facade must *construct* an ExecutionPlan whose route
matches the tier it is.
"""

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.distributed import ShardedSamplingCluster
from repro.engine.hetero import run_coalesced
from repro.graph.generators import powerlaw_graph
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler

from bitcompat import assert_equivalent, assert_same_samples, fingerprint

ALL_ALGORITHMS = sorted(ALGORITHM_REGISTRY)
ROUTES = ("in_memory", "coalesced", "out_of_memory", "sharded")

NUM_SEEDS = 10


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(150, 6.0, exponent=2.2, seed=5)


@pytest.fixture(scope="module")
def seeds(graph):
    step = graph.num_vertices // NUM_SEEDS
    return [int(s) for s in range(0, graph.num_vertices, step)][:NUM_SEEDS]


def _check_in_memory(graph, info, seeds):
    config = info.config_factory(seed=11)
    scalar = GraphSampler(
        graph, info.program_factory(), config, use_engine=False
    ).run(seeds)
    engine_sampler = GraphSampler(graph, info.program_factory(), config)
    assert engine_sampler.plan(seeds).route == "in_memory"
    engine = engine_sampler.run(seeds)
    assert_equivalent(scalar, engine, kernels=True)


def _check_coalesced(graph, info, seeds):
    from repro.api.instance import make_instances

    config = info.config_factory(seed=11)
    if not info.program_factory().supports_coalescing:
        # Stateful programs never fuse; the planner must refuse the batch.
        from repro.planner.errors import PlanError
        from repro.planner.planner import PlanRequest, plan

        with pytest.raises(PlanError, match="stateful"):
            plan(PlanRequest(
                graph=graph,
                program=info.program_factory(),
                config=config,
                members=[make_instances(seeds[:5]), make_instances(seeds[5:])],
                force_route="coalesced",
            ))
        return
    halves = [seeds[:5], seeds[5:]]
    batch = run_coalesced(
        graph, info.program_factory(), config,
        [make_instances(h) for h in halves],
    )
    for half, member_result in zip(halves, batch):
        solo = GraphSampler(graph, info.program_factory(), config).run(half)
        assert_same_samples(solo, member_result)
        assert solo.iteration_counts == member_result.iteration_counts


def _check_out_of_memory(graph, info, seeds):
    config = info.config_factory(seed=9)
    oom = OutOfMemoryConfig.fully_optimized(num_partitions=3)
    runs = {}
    for use_engine in (False, True):
        sampler = OutOfMemorySampler(
            graph, info.program_factory(), config, oom, use_engine=use_engine
        )
        plan = sampler.plan(seeds)
        assert plan.route == "out_of_memory"
        assert plan.layout.oom is oom
        runs[use_engine] = sampler.run(seeds)
    assert_equivalent(runs[False].sample, runs[True].sample)
    assert runs[False].rounds == runs[True].rounds
    assert runs[False].makespan == pytest.approx(runs[True].makespan)


def _check_sharded(graph, info, seeds):
    results = []
    for num_shards in (1, 3):
        cluster = ShardedSamplingCluster(
            graph, info.name, num_shards=num_shards
        )
        plan = cluster.plan(seeds)
        assert plan.route == "sharded"
        assert plan.layout.num_partitions == cluster.num_shards
        results.append(cluster.run(seeds))
    assert fingerprint(results[0].result) == fingerprint(results[1].result)
    assert results[0].result.total_sampled_edges > 0


_CHECKS = {
    "in_memory": _check_in_memory,
    "coalesced": _check_coalesced,
    "out_of_memory": _check_out_of_memory,
    "sharded": _check_sharded,
}


class TestCrossRouteMatrix:
    @pytest.mark.parametrize("route", ROUTES)
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_route_is_bit_identical(self, graph, seeds, algorithm, route):
        _CHECKS[route](graph, ALGORITHM_REGISTRY[algorithm], seeds)
