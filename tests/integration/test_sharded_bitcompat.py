"""Shard-count invariance: the sharded cluster's headline contract.

For every registry algorithm, a cluster run must produce **bit-identical**
results -- samples, per-selection iteration counts and cost totals -- across
1, 2 and 4 shards, in both the in-process and multiprocess transports.
Per-instance counter-based RNG streams (instance id + private warp cursor)
make every selection independent of where its step executed, so splitting
the work differently must not change a single bit.

The anchor test additionally pins the cluster's stream semantics: each
walker's sample equals a standalone single-instance ``GraphSampler`` run
built with the same global instance id.
"""

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY, get_algorithm
from repro.api.instance import InstanceState
from repro.api.sampler import GraphSampler
from repro.distributed import ShardedSamplingCluster, walker_program_seed
from repro.gpusim.costmodel import CostModel
from repro.graph.generators import powerlaw_graph

from bitcompat import fingerprint as _fingerprint

ALL_ALGORITHMS = sorted(ALGORITHM_REGISTRY)
SHARD_COUNTS = (1, 2, 4)
NUM_SEEDS = 12


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(80, 6.0, seed=7)


@pytest.fixture(scope="module")
def seeds(graph):
    return [int(s) for s in range(0, graph.num_vertices, graph.num_vertices // NUM_SEEDS)][:NUM_SEEDS]


def fingerprint(cluster_result):
    """Everything the invariance contract covers (shared scaffolding)."""
    return _fingerprint(cluster_result.result)


def run_cluster(graph, algorithm, seeds, num_shards, transport):
    cluster = ShardedSamplingCluster(
        graph,
        algorithm,
        num_shards=num_shards,
        transport=transport,
        mp_context="fork",  # test-only: spawn costs a full interpreter per shard
    )
    return cluster.run(seeds)


class TestInProcessInvariance:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_bit_identical_across_shard_counts(self, graph, seeds, algorithm):
        results = [
            run_cluster(graph, algorithm, seeds, n, "in_process")
            for n in SHARD_COUNTS
        ]
        reference = fingerprint(results[0])
        for result in results[1:]:
            assert fingerprint(result) == reference
        # The multi-shard runs actually exercised migration.
        assert results[-1].migrations > 0
        assert results[0].result.total_sampled_edges > 0


class TestMultiprocessInvariance:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_bit_identical_across_shard_counts_and_transports(
        self, graph, seeds, algorithm
    ):
        reference = fingerprint(
            run_cluster(graph, algorithm, seeds, 1, "in_process")
        )
        for num_shards in SHARD_COUNTS:
            result = run_cluster(graph, algorithm, seeds, num_shards, "multiprocess")
            assert fingerprint(result) == reference


class TestStreamSemantics:
    """The contract behind the invariance: per-walker standalone streams."""

    @pytest.mark.parametrize(
        "algorithm", ["deepwalk", "biased_neighbor_sampling", "forest_fire_sampling"]
    )
    def test_walker_equals_standalone_single_instance_run(
        self, graph, seeds, algorithm
    ):
        info = get_algorithm(algorithm)
        config = info.config_factory()
        coalescable = info.program_factory().supports_coalescing
        sharded = run_cluster(graph, algorithm, seeds, 4, "in_process")
        for rank, seed in enumerate(seeds):
            inst = InstanceState(
                instance_id=rank, frontier_pool=np.array([seed], dtype=np.int64)
            )
            if coalescable:
                program = info.program_factory()
            else:
                # Stateful programs: the cluster seeds one replica per
                # walker so their private hook streams are independent.
                program = info.program_factory(
                    seed=walker_program_seed(0, rank)
                )
            sampler = GraphSampler(graph, program, config)
            iteration_counts = []
            for depth in range(config.depth):
                stepped = sampler.engine.step_instances(
                    [inst], depth, CostModel(), iteration_counts
                )
                if stepped is None:
                    break
            assert np.array_equal(
                inst.sampled_edges(), sharded.result.samples[rank].edges
            )

    def test_stateful_walkers_have_independent_hook_streams(self, graph):
        """Per-walker program replicas must not replay one shared stream.

        With a common replica seed, every jump walker would teleport to the
        same vertex at the same step ordinal; jump_probability=1 makes the
        walk *be* the teleport sequence, so correlated streams show up as
        identical walks from a shared start vertex.
        """
        result = ShardedSamplingCluster(
            graph,
            "random_walk_with_jump",
            num_shards=2,
            program_kwargs={"jump_probability": 1.0},
        ).run([1] * 6)
        walks = [tuple(s.edges[:, 1]) for s in result.result.samples]
        assert len(set(walks)) > 1

    def test_cost_totals_are_sums_of_shard_costs(self, graph, seeds):
        result = run_cluster(graph, "deepwalk", seeds, 4, "in_process")
        summed = CostModel()
        for shard_cost in result.shard_costs:
            summed.merge(shard_cost)
        summed.kernel_launches = result.epochs
        assert summed.as_dict() == result.result.cost.as_dict()
