"""Telemetry must never perturb sampling: spans and metrics observe control
flow only, so every (algorithm x route) cell of the cross-route matrix has to
stay bit-identical with telemetry enabled vs disabled.

This is the observability counterpart of ``test_cross_route_matrix``: the
same 13x4 matrix, but comparing a telemetry-off run against a telemetry-on
run of the *same* leg (and asserting the enabled leg actually recorded
spans, so the instrumentation cannot silently pass by being dead code).
"""

import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.instance import make_instances
from repro.api.sampler import GraphSampler
from repro.distributed import ShardedSamplingCluster
from repro.engine.hetero import run_coalesced
from repro.graph.generators import powerlaw_graph
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler
from repro import telemetry as tel

from bitcompat import fingerprint

ALL_ALGORITHMS = sorted(ALGORITHM_REGISTRY)
ROUTES = ("in_memory", "coalesced", "out_of_memory", "sharded")

NUM_SEEDS = 10


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(150, 6.0, exponent=2.2, seed=5)


@pytest.fixture(scope="module")
def seeds(graph):
    step = graph.num_vertices // NUM_SEEDS
    return [int(s) for s in range(0, graph.num_vertices, step)][:NUM_SEEDS]


def _run_in_memory(graph, info, seeds):
    config = info.config_factory(seed=11)
    result = GraphSampler(graph, info.program_factory(), config).run(seeds)
    return fingerprint(result)


def _run_coalesced(graph, info, seeds):
    if not info.program_factory().supports_coalescing:
        pytest.skip("stateful program: the planner refuses the coalesced route")
    config = info.config_factory(seed=11)
    halves = [seeds[:5], seeds[5:]]
    batch = run_coalesced(
        graph, info.program_factory(), config,
        [make_instances(h) for h in halves],
    )
    return tuple(fingerprint(member) for member in batch)


def _run_out_of_memory(graph, info, seeds):
    config = info.config_factory(seed=9)
    sampler = OutOfMemorySampler(
        graph, info.program_factory(), config,
        OutOfMemoryConfig.fully_optimized(num_partitions=3),
    )
    run = sampler.run(seeds)
    return fingerprint(run.sample), run.rounds


def _run_sharded(graph, info, seeds):
    cluster = ShardedSamplingCluster(graph, info.name, num_shards=3)
    return fingerprint(cluster.run(seeds).result)


_RUNNERS = {
    "in_memory": _run_in_memory,
    "coalesced": _run_coalesced,
    "out_of_memory": _run_out_of_memory,
    "sharded": _run_sharded,
}


@pytest.fixture()
def telemetry_toggle():
    """Clean slate; restores the telemetry switch and buffers afterwards."""
    was_enabled = tel.enabled()
    tel.disable()
    tel.clear()
    tel.FEEDBACK.clear()
    yield
    if was_enabled:
        tel.enable()
    else:
        tel.disable()
    tel.clear()
    tel.FEEDBACK.clear()


class TestTelemetryBitCompat:
    @pytest.mark.parametrize("route", ROUTES)
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_enabled_telemetry_is_bit_identical(self, graph, seeds, algorithm,
                                                route, telemetry_toggle):
        runner = _RUNNERS[route]
        info = ALGORITHM_REGISTRY[algorithm]
        baseline = runner(graph, info, seeds)
        assert tel.spans() == []  # disabled run must not record

        tel.enable()
        try:
            traced = runner(graph, info, seeds)
            assert tel.spans(), "enabled run recorded no spans"
        finally:
            tel.disable()
        assert baseline == traced
