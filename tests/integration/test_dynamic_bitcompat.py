"""Dynamic-graph bit-compatibility (the DeltaGraph acceptance bar).

Sampling a mutated-then-compacted :class:`~repro.graph.delta.DeltaGraph`
must be bit-identical to sampling a freshly built CSR holding the same
edges: same sampled edges in the same order, same iteration counts, same
cost totals.  These tests assert that for every registered algorithm, for
the DeltaGraph handed directly to the samplers, and for the incremental
per-vertex structure caches the compaction patches.
"""

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.engine.hetero import run_coalesced
from repro.api.instance import make_instances
from repro.graph import from_edge_list
from repro.graph.delta import DeltaGraph
from repro.graph.generators import powerlaw_graph
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler

from bitcompat import assert_equivalent

SEEDS = [0, 3, 17, 42, 77, 101]


@pytest.fixture(scope="module")
def mutated_pair():
    """(delta, fresh): a mutated graph and its from-scratch CSR equivalent."""
    base = powerlaw_graph(200, 5.0, exponent=2.1, seed=13)
    rng = np.random.default_rng(29)
    base = base.with_weights(rng.uniform(0.1, 2.0, size=base.num_edges))

    delta = DeltaGraph(base)
    # A representative mutation mix: inserts (some parallel), deletions,
    # new vertices and a retirement.
    for _ in range(60):
        delta.add_edge(int(rng.integers(200)), int(rng.integers(200)),
                       float(rng.uniform(0.1, 2.0)))
    removed = 0
    for v in rng.permutation(200):
        if removed >= 25:
            break
        neigh = delta.neighbors(int(v))
        if neigh.size:
            delta.remove_edge(int(v), int(neigh[removed % neigh.size]))
            removed += 1
    first_new = delta.add_vertices(3)
    delta.add_edge(first_new, 0, 1.0)
    delta.add_edge(0, first_new + 1, 0.7)
    delta.retire_vertex(150)
    delta.compact()

    # The reference graph is built from scratch out of the merged edges.
    nv = delta.num_vertices
    edges, weights = [], []
    for v in range(nv):
        for dst, w in zip(delta.neighbors(v), delta.neighbor_weights(v)):
            edges.append((v, int(dst)))
            weights.append(float(w))
    fresh = from_edge_list(edges, num_vertices=nv, weights=weights)
    return delta, fresh


class TestCompactionBitCompat:
    def test_compacted_arrays_equal_fresh_build(self, mutated_pair):
        delta, fresh = mutated_pair
        assert np.array_equal(delta.base.row_ptr, fresh.row_ptr)
        assert np.array_equal(delta.base.col_idx, fresh.col_idx)
        assert np.array_equal(delta.base.weights, fresh.weights)

    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_every_registered_algorithm(self, mutated_pair, name):
        delta, fresh = mutated_pair
        info = ALGORITHM_REGISTRY[name]
        config = info.config_factory(seed=7)
        via_delta = GraphSampler(delta, info.program_factory(), config).run(
            SEEDS, num_instances=12
        )
        via_fresh = GraphSampler(fresh, info.program_factory(), config).run(
            SEEDS, num_instances=12
        )
        assert_equivalent(via_delta, via_fresh)

    def test_out_of_memory_sampler_accepts_delta(self, mutated_pair):
        delta, fresh = mutated_pair
        info = ALGORITHM_REGISTRY["deepwalk"]
        config = info.config_factory(seed=3, depth=6)
        oom = OutOfMemoryConfig.fully_optimized(num_partitions=3)
        a = OutOfMemorySampler(delta, info.program_factory(), config, oom).run(SEEDS)
        b = OutOfMemorySampler(fresh, info.program_factory(), config, oom).run(SEEDS)
        assert_equivalent(a.sample, b.sample)

    def test_run_coalesced_accepts_delta(self, mutated_pair):
        delta, fresh = mutated_pair
        info = ALGORITHM_REGISTRY["unbiased_neighbor_sampling"]
        config = info.config_factory(seed=5)
        members_a = [make_instances([0, 3]), make_instances([17, 42])]
        members_b = [make_instances([0, 3]), make_instances([17, 42])]
        for ra, rb in zip(
            run_coalesced(delta, info.program_factory(), config, members_a),
            run_coalesced(fresh, info.program_factory(), config, members_b),
        ):
            for sa, sb in zip(ra.samples, rb.samples):
                assert np.array_equal(sa.edges, sb.edges)
