"""Integration tests spanning multiple subsystems.

These exercise the same pipelines the benchmarks use (framework vs CPU
reference distributions, in-memory vs out-of-memory equivalence, C-SAW vs the
baseline engines, the small benchmark scale itself) at a size small enough
for the regular test run.
"""

import numpy as np
import pytest

from repro import generate_dataset, sample_graph
from repro.algorithms import (
    BiasedNeighborSampling,
    SimpleRandomWalk,
    UnbiasedNeighborSampling,
    run_random_walks,
)
from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.baselines.knightking import KnightKingEngine
from repro.baselines.graphsaint import GraphSAINTSampler
from repro.bench import figures
from repro.bench.workloads import SMALL_SCALE
from repro.metrics.stats import total_variation_distance
from repro.oom.multigpu import run_multi_gpu_walks
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler
from repro.selection.collision import CollisionStrategy


class TestFrameworkVsReferenceDistributions:
    def test_walk_visit_distribution_matches_numpy_reference(self, ring10):
        """On a symmetric ring, long uniform walks visit vertices uniformly."""
        result = run_random_walks(ring10, seeds=np.arange(10), num_walkers=200,
                                  walk_length=40, seed=0)
        visits = np.bincount(result.all_edges()[:, 1], minlength=10).astype(float)
        visits /= visits.sum()
        assert total_variation_distance(visits, np.full(10, 0.1)) < 0.05

    def test_neighbor_sampling_first_hop_unbiased(self, toy_graph):
        """First-hop samples of vertex 8 cover all its neighbors roughly evenly."""
        program = UnbiasedNeighborSampling()
        config = program.default_config(depth=1, neighbor_size=1, seed=0)
        counts = {}
        for trial in range(2000):
            result = sample_graph(toy_graph, program, seeds=[8],
                                  config=config.replace(seed=trial))
            dst = int(result.samples[0].edges[0, 1])
            counts[dst] = counts.get(dst, 0) + 1
        freqs = np.array([counts.get(v, 0) for v in toy_graph.neighbors(8)], dtype=float)
        freqs /= freqs.sum()
        assert total_variation_distance(freqs, np.full(5, 0.2)) < 0.06


class TestStrategiesProduceSameSampleShape:
    @pytest.mark.parametrize("strategy", list(CollisionStrategy))
    def test_all_strategies_complete_on_every_algorithm(self, small_weighted_graph, strategy):
        for name, info in list(ALGORITHM_REGISTRY.items())[:6]:
            program = info.program_factory()
            config = info.config_factory(depth=2, strategy=strategy, seed=1)
            seeds = [[0, 1, 2]] if name == "multidimensional_random_walk" else [0, 1, 2]
            result = sample_graph(small_weighted_graph, program, seeds=seeds, config=config)
            assert result.num_instances >= 1


class TestOutOfMemoryMatchesInMemory:
    def test_total_edges_comparable(self, am_dataset):
        program = BiasedNeighborSampling()
        config = program.default_config(depth=2, neighbor_size=2, seed=4)
        seeds = list(range(60))
        in_mem = sample_graph(am_dataset, program, seeds=seeds, config=config)
        oom = OutOfMemorySampler(am_dataset, program, config,
                                 OutOfMemoryConfig.fully_optimized()).run(seeds)
        assert oom.total_sampled_edges > 0
        ratio = oom.total_sampled_edges / in_mem.total_sampled_edges
        assert 0.6 < ratio < 1.4


class TestCSawBeatsBaselines:
    def test_beats_knightking_on_biased_walks(self, am_dataset):
        engine = KnightKingEngine(am_dataset, biased=True, seed=0)
        kk = engine.run_walks(list(range(50)), walk_length=20, num_walkers=300)
        csaw = run_multi_gpu_walks(am_dataset, np.arange(50), num_walkers=300,
                                   walk_length=20, num_gpus=1, biased=True, seed=0)
        assert csaw.seps() > kk.seps()

    def test_beats_graphsaint_on_frontier_sampling(self, am_dataset):
        from repro.algorithms import MultiDimensionalRandomWalk

        saint = GraphSAINTSampler(am_dataset, seed=0)
        gs = saint.run(num_instances=30, frontier_size=200, steps=10)
        program = MultiDimensionalRandomWalk()
        rng = np.random.default_rng(0)
        pools = [rng.integers(0, am_dataset.num_vertices, 200).tolist() for _ in range(30)]
        csaw = sample_graph(am_dataset, program, seeds=pools,
                            config=program.default_config(depth=10, seed=0))
        assert csaw.seps() > gs.seps()


class TestSmallBenchmarkScale:
    """Smoke-run the per-figure experiment functions at the tiny test scale."""

    def test_table_experiments(self):
        assert len(figures.table1_design_space(SMALL_SCALE)) >= 13
        assert len(figures.table2_datasets(SMALL_SCALE)) == len(SMALL_SCALE.all_graphs)

    def test_inmemory_figures(self):
        fig10 = figures.fig10_inmemory_speedups(SMALL_SCALE)
        fig11 = figures.fig11_iteration_counts(SMALL_SCALE)
        fig12 = figures.fig12_search_reduction(SMALL_SCALE)
        assert len(fig10) == len(SMALL_SCALE.in_memory_graphs) * 4
        assert all(r["iterations_bipartite"] <= r["iterations_baseline"] + 1e-9 for r in fig11)
        assert all(r["ratio"] <= 1.0 + 1e-9 for r in fig12)

    def test_oom_figures(self):
        fig13 = figures.fig13_oom_speedups(SMALL_SCALE)
        fig15 = figures.fig15_partition_transfers(SMALL_SCALE)
        assert len(fig13) == len(SMALL_SCALE.all_graphs) * 4
        assert np.mean([r["speedup_BA"] for r in fig13]) > 1.0
        assert all(r["transfers_workload_aware"] <= r["transfers_active"] for r in fig15)

    def test_scaling_figures(self):
        fig17 = figures.fig17_multi_gpu_scaling(SMALL_SCALE)
        assert len(fig17) > 0
        assert all(r["speedup"] > 0 for r in fig17)


class TestDatasetPipeline:
    def test_generate_sample_and_walk_roundtrip(self):
        graph = generate_dataset("WG", seed=2, weighted=True)
        program = SimpleRandomWalk()
        result = sample_graph(graph, program, seeds=list(range(10)),
                              config=program.default_config(depth=5))
        assert result.total_sampled_edges > 0
        walks = run_random_walks(graph, seeds=np.arange(10), walk_length=5, seed=2)
        assert walks.total_sampled_edges > 0
