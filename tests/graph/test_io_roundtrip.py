"""NPZ round-trips across the full compressed x mmap matrix.

``save_npz(compressed=)`` and ``load_npz(mmap=)`` combine four ways:

* compressed + copy load -- the default cache format;
* compressed + ``mmap=True`` -- DEFLATE members cannot be mapped, so the
  loader must *fall back* to a copying load (still correct, never an error);
* uncompressed + copy load;
* uncompressed + ``mmap=True`` -- true zero-copy page-cache views.

Every combination must round-trip weighted, unweighted, empty and
zero-degree-vertex graphs exactly.
"""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list
from repro.graph.io import load_npz, save_npz


def weighted_graph():
    return from_edge_list(
        [(0, 1), (0, 2), (1, 2), (3, 0), (3, 3)], num_vertices=5,
        weights=[0.5, 1.5, 2.0, 0.25, 3.0],
    )


def unweighted_graph():
    return from_edge_list([(0, 1), (1, 2), (2, 0)], num_vertices=4)


def empty_graph():
    return CSRGraph(np.array([0]), np.array([], dtype=np.int64))


def edgeless_graph():
    # Vertices exist but every one of them has degree zero.
    return CSRGraph(np.zeros(7, dtype=np.int64), np.array([], dtype=np.int64))


def zero_degree_tail_graph():
    # The last vertices have no edges: their row_ptr entries all equal |E|,
    # which trips naive row reconstruction.
    return from_edge_list([(0, 1)], num_vertices=6, weights=[2.0])


GRAPHS = [
    ("weighted", weighted_graph),
    ("unweighted", unweighted_graph),
    ("empty", empty_graph),
    ("edgeless", edgeless_graph),
    ("zero_degree_tail", zero_degree_tail_graph),
]


def assert_graphs_equal(a: CSRGraph, b: CSRGraph) -> None:
    assert a.num_vertices == b.num_vertices
    assert a.num_edges == b.num_edges
    assert np.array_equal(a.row_ptr, b.row_ptr)
    assert np.array_equal(a.col_idx, b.col_idx)
    assert (a.weights is None) == (b.weights is None)
    if a.weights is not None:
        assert np.array_equal(a.weights, b.weights)


@pytest.mark.parametrize("label,factory", GRAPHS)
@pytest.mark.parametrize("compressed", [True, False])
@pytest.mark.parametrize("mmap", [True, False])
def test_npz_roundtrip_matrix(tmp_path, label, factory, compressed, mmap):
    graph = factory()
    path = tmp_path / f"{label}.npz"
    save_npz(graph, path, compressed=compressed)
    loaded = load_npz(path, mmap=mmap)
    assert_graphs_equal(graph, loaded)


def test_mmap_load_of_uncompressed_is_a_view(tmp_path):
    graph = weighted_graph()
    path = tmp_path / "g.npz"
    save_npz(graph, path, compressed=False)
    loaded = load_npz(path, mmap=True)
    # CSRGraph canonicalisation may wrap the memmap in a plain view; either
    # way the file's pages back the data (no heap copy was made).
    assert isinstance(loaded.col_idx, np.memmap) or isinstance(
        loaded.col_idx.base, np.memmap
    )
    assert not loaded.col_idx.flags.writeable
    assert_graphs_equal(graph, loaded)


def test_mmap_load_of_compressed_falls_back_to_copy(tmp_path):
    graph = weighted_graph()
    path = tmp_path / "g.npz"
    save_npz(graph, path, compressed=True)
    loaded = load_npz(path, mmap=True)
    assert not isinstance(loaded.col_idx, np.memmap)
    assert not isinstance(loaded.col_idx.base, np.memmap)
    assert_graphs_equal(graph, loaded)


def test_roundtrip_preserves_sampling_determinism(tmp_path):
    from repro.algorithms.registry import ALGORITHM_REGISTRY
    from repro.api.sampler import GraphSampler

    graph = weighted_graph()
    path = tmp_path / "g.npz"
    save_npz(graph, path, compressed=False)
    loaded = load_npz(path, mmap=True)
    info = ALGORITHM_REGISTRY["biased_random_walk"]
    config = info.config_factory(depth=4, seed=3)
    a = GraphSampler(graph, info.program_factory(), config).run([0, 3])
    b = GraphSampler(loaded, info.program_factory(), config).run([0, 3])
    for sa, sb in zip(a.samples, b.samples):
        assert np.array_equal(sa.edges, sb.edges)
