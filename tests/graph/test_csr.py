"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph


def simple_graph():
    #   0 -> 1, 2 ; 1 -> 2 ; 2 -> (none) ; 3 -> 0
    return CSRGraph(
        row_ptr=np.array([0, 2, 3, 3, 4]),
        col_idx=np.array([1, 2, 2, 0]),
    )


class TestConstruction:
    def test_basic_counts(self):
        g = simple_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4
        assert g.average_degree == 1.0

    def test_degrees(self):
        g = simple_graph()
        assert list(g.degrees) == [2, 1, 0, 1]
        assert g.degree(0) == 2
        assert g.degree(2) == 0

    def test_neighbors(self):
        g = simple_graph()
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(2)) == []
        assert g.has_edge(3, 0)
        assert not g.has_edge(0, 3)

    def test_edge_range(self):
        g = simple_graph()
        assert g.edge_range(0) == (0, 2)
        assert g.edge_range(2) == (3, 3)

    def test_neighbor_weights_default_ones(self):
        g = simple_graph()
        assert np.allclose(g.neighbor_weights(0), [1.0, 1.0])
        assert not g.is_weighted

    def test_weighted_graph(self):
        g = simple_graph().with_weights([0.5, 1.5, 2.0, 3.0])
        assert g.is_weighted
        assert np.allclose(g.neighbor_weights(0), [0.5, 1.5])
        assert np.allclose(g.neighbor_weights(3), [3.0])

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree == 0.0

    def test_arrays_are_read_only(self):
        g = simple_graph()
        with pytest.raises(ValueError):
            g.col_idx[0] = 3

    def test_repr_mentions_counts(self):
        assert "num_vertices=4" in repr(simple_graph())


class TestValidation:
    def test_row_ptr_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_row_ptr_must_match_edges(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_row_ptr_must_be_nondecreasing(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_col_idx_in_range(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0]), np.array([-1.0]))

    def test_nonfinite_weights_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0]), np.array([np.inf]))

    def test_weight_shape_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))

    def test_vertex_out_of_range_access(self):
        g = simple_graph()
        with pytest.raises(IndexError):
            g.neighbors(4)
        with pytest.raises(IndexError):
            g.degree(-1)


class TestTransforms:
    def test_edge_array_roundtrip(self):
        g = simple_graph()
        edges = g.edge_array()
        rebuilt = from_edge_list(edges, num_vertices=g.num_vertices)
        assert rebuilt == g

    def test_edges_iterator_matches_edge_array(self):
        g = simple_graph()
        assert list(g.edges()) == [tuple(e) for e in g.edge_array()]

    def test_reverse_flips_edges(self):
        g = simple_graph()
        rev = g.reverse()
        assert rev.num_edges == g.num_edges
        for src, dst in g.edges():
            assert rev.has_edge(dst, src)

    def test_reverse_preserves_weights(self):
        g = simple_graph().with_weights([1.0, 2.0, 3.0, 4.0])
        rev = g.reverse()
        assert rev.is_weighted
        assert rev.weights.sum() == pytest.approx(10.0)

    def test_subgraph_by_vertex_range_keeps_global_ids(self):
        g = simple_graph()
        sub = g.subgraph_by_vertex_range(0, 2)
        assert sub.num_vertices == g.num_vertices
        assert list(sub.neighbors(0)) == [1, 2]
        assert list(sub.neighbors(1)) == [2]
        assert list(sub.neighbors(3)) == []  # outside the range -> empty

    def test_subgraph_invalid_range(self):
        with pytest.raises(ValueError):
            simple_graph().subgraph_by_vertex_range(3, 2)

    def test_nbytes_positive_and_grows_with_weights(self):
        g = simple_graph()
        assert g.nbytes > 0
        assert g.with_weights([1, 1, 1, 1]).nbytes > g.nbytes

    def test_equality(self):
        assert simple_graph() == simple_graph()
        other = CSRGraph(np.array([0, 1, 1, 1, 1]), np.array([1]))
        assert simple_graph() != other
