"""Tests for synthetic graph generators and the Table II registry."""

import numpy as np
import pytest

from repro.graph.generators import (
    ALL_DATASETS,
    IN_MEMORY_DATASETS,
    TABLE2_DATASETS,
    complete_graph,
    erdos_renyi_graph,
    generate_dataset,
    grid_graph,
    powerlaw_graph,
    ring_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.properties import gini_coefficient, graph_stats


class TestElementaryGraphs:
    def test_ring_degrees(self):
        g = ring_graph(8)
        assert g.num_vertices == 8
        assert np.all(g.degrees == 2)

    def test_ring_directed(self):
        g = ring_graph(5, bidirectional=False)
        assert np.all(g.degrees == 1)

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_edges == 5 * 4
        assert np.all(g.degrees == 4)

    def test_complete_graph_with_self_loops(self):
        g = complete_graph(3, self_loops=True)
        assert g.num_edges == 9

    def test_star_graph(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        # Corner vertices have degree 2, edge vertices 3, inner 4.
        assert g.degree(0) == 2
        assert int(g.degrees.max()) == 4

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ring_graph(0)
        with pytest.raises(ValueError):
            star_graph(0)
        with pytest.raises(ValueError):
            grid_graph(0, 3)


class TestRandomGraphs:
    def test_erdos_renyi_degree_target(self):
        g = erdos_renyi_graph(2000, 10.0, seed=1)
        assert 5.0 < g.average_degree < 15.0

    def test_powerlaw_is_skewed(self):
        g = powerlaw_graph(2000, 10.0, exponent=2.1, seed=1)
        stats = graph_stats(g)
        assert stats.max_degree > 10 * stats.avg_degree
        assert stats.degree_gini > 0.3

    def test_powerlaw_determinism(self):
        a = powerlaw_graph(500, 6.0, seed=9)
        b = powerlaw_graph(500, 6.0, seed=9)
        assert a == b

    def test_powerlaw_different_seeds_differ(self):
        a = powerlaw_graph(500, 6.0, seed=1)
        b = powerlaw_graph(500, 6.0, seed=2)
        assert a != b

    def test_powerlaw_validation(self):
        with pytest.raises(ValueError):
            powerlaw_graph(1, 4.0)
        with pytest.raises(ValueError):
            powerlaw_graph(100, 4.0, exponent=0.9)

    def test_rmat_size(self):
        g = rmat_graph(10, 8.0, seed=2)
        assert g.num_vertices == 1024
        assert g.num_edges > 1024  # symmetrised, deduplicated

    def test_rmat_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, 4.0, a=0.5, b=0.4, c=0.3)


class TestTable2Registry:
    def test_registry_has_all_ten_datasets(self):
        assert len(TABLE2_DATASETS) == 10
        assert set(ALL_DATASETS) == set(TABLE2_DATASETS)
        assert set(IN_MEMORY_DATASETS) == set(ALL_DATASETS) - {"FR", "TW"}

    def test_out_of_memory_flags(self):
        assert TABLE2_DATASETS["FR"].out_of_memory
        assert TABLE2_DATASETS["TW"].out_of_memory
        assert not TABLE2_DATASETS["AM"].out_of_memory

    @pytest.mark.parametrize("abbr", ["AM", "RE", "WG", "TW"])
    def test_generate_dataset_degree_close_to_paper(self, abbr):
        spec = TABLE2_DATASETS[abbr]
        g = generate_dataset(abbr, seed=0)
        assert g.num_vertices >= 16
        assert 0.3 * spec.paper_avg_degree < g.average_degree < 2.5 * spec.paper_avg_degree

    def test_generate_dataset_unknown(self):
        with pytest.raises(KeyError):
            generate_dataset("NOPE")

    def test_generate_dataset_weighted(self):
        g = generate_dataset("AM", seed=0, weighted=True)
        assert g.is_weighted
        assert np.all(g.weights > 0)

    def test_generate_dataset_heavy_tailed_weights(self):
        g = generate_dataset("AM", seed=0, weighted=True, weight_distribution="heavy_tailed")
        assert gini_coefficient(g.weights) > 0.5

    def test_generate_dataset_bad_weight_distribution(self):
        with pytest.raises(ValueError):
            generate_dataset("AM", weighted=True, weight_distribution="banana")

    def test_scale_factor_changes_size(self):
        small = generate_dataset("AM", seed=0, scale_factor=0.5)
        full = generate_dataset("AM", seed=0, scale_factor=1.0)
        assert small.num_vertices < full.num_vertices
