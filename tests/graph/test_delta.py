"""DeltaGraph: merged views, mutations, budgeted compaction, bit-compat."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list
from repro.graph.delta import DeltaGraph, as_csr


@pytest.fixture
def base():
    # 0 -> 1, 2 ; 1 -> 2 ; 2 -> 0 ; 3 isolated
    return from_edge_list(
        [(0, 1), (0, 2), (1, 2), (2, 0)], num_vertices=4,
        weights=[1.0, 2.0, 3.0, 4.0],
    )


class TestMergedView:
    def test_fresh_delta_matches_base(self, base):
        delta = DeltaGraph(base)
        assert delta.num_vertices == 4
        assert delta.num_edges == 4
        for v in range(4):
            assert np.array_equal(delta.neighbors(v), base.neighbors(v))
            assert np.array_equal(delta.neighbor_weights(v), base.neighbor_weights(v))
            assert delta.degree(v) == base.degree(v)

    def test_insertions_append_after_base_edges(self, base):
        delta = DeltaGraph(base)
        delta.add_edge(0, 3, 5.0)
        assert delta.degree(0) == 3
        assert np.array_equal(delta.neighbors(0), [1, 2, 3])
        assert np.array_equal(delta.neighbor_weights(0), [1.0, 2.0, 5.0])
        assert delta.num_edges == 5
        assert delta.has_edge(0, 3)

    def test_unweighted_insert_defaults_to_one(self, base):
        delta = DeltaGraph(base)
        delta.add_edge(3, 0)
        assert np.array_equal(delta.neighbor_weights(3), [1.0])

    def test_removal_tombstones_base_edge(self, base):
        delta = DeltaGraph(base)
        delta.remove_edge(0, 1)
        assert np.array_equal(delta.neighbors(0), [2])
        assert delta.num_edges == 3
        assert not delta.has_edge(0, 1)

    def test_removal_prefers_base_copy_then_insert(self, base):
        delta = DeltaGraph(base)
        delta.add_edge(0, 1, 9.0)  # parallel to the base 0 -> 1
        delta.remove_edge(0, 1)    # kills the *base* copy first
        assert np.array_equal(delta.neighbor_weights(0), [2.0, 9.0])
        delta.remove_edge(0, 1)    # now the inserted copy
        assert np.array_equal(delta.neighbors(0), [2])
        with pytest.raises(KeyError):
            delta.remove_edge(0, 1)

    def test_add_vertices_grows_id_space(self, base):
        delta = DeltaGraph(base)
        first = delta.add_vertices(2)
        assert first == 4
        assert delta.num_vertices == 6
        assert delta.degree(5) == 0
        delta.add_edge(5, 0, 1.5)
        delta.add_edge(0, 4)
        assert np.array_equal(delta.neighbors(5), [0])
        assert np.array_equal(delta.neighbors(0), [1, 2, 4])

    def test_retire_vertex_drops_both_directions(self, base):
        delta = DeltaGraph(base)
        delta.retire_vertex(2)
        assert delta.degree(2) == 0
        assert np.array_equal(delta.neighbors(0), [1])  # 0 -> 2 gone
        assert np.array_equal(delta.neighbors(1), [])   # 1 -> 2 gone
        assert delta.num_edges == 1
        assert delta.is_retired(2)
        delta.retire_vertex(2)  # idempotent
        assert delta.num_edges == 1
        with pytest.raises(ValueError):
            delta.add_edge(0, 2)
        with pytest.raises(ValueError):
            delta.add_edge(2, 0)

    def test_retire_drops_pending_inserts_into_vertex(self, base):
        delta = DeltaGraph(base)
        delta.add_edge(3, 1, 7.0)
        delta.retire_vertex(1)
        assert np.array_equal(delta.neighbors(3), [])
        assert delta.num_edges == 2  # 0->2 and 2->0 survive

    def test_retire_newly_added_vertex_hides_inserts_everywhere(self, base):
        # A vertex born after the base can only be referenced by buffered
        # inserts; retiring it must scrub them from views AND compaction.
        delta = DeltaGraph(base)
        new = delta.add_vertices(1)
        delta.add_edge(0, new, 2.0)
        delta.add_edge(new, 0, 3.0)
        delta.retire_vertex(new)
        assert np.array_equal(delta.neighbors(0), [1, 2])
        assert delta.num_edges == 4
        snap = delta.to_csr()
        assert snap.num_edges == 4
        assert not np.any(snap.col_idx == new)

    def test_remove_edge_into_retired_vertex_raises(self, base):
        delta = DeltaGraph(base)
        delta.retire_vertex(2)
        with pytest.raises(KeyError):
            delta.remove_edge(0, 2)  # hidden by the retirement, not live
        with pytest.raises(KeyError):
            delta.remove_edge(2, 0)  # retired source has no live edges

    def test_bounds_checks(self, base):
        delta = DeltaGraph(base)
        with pytest.raises(IndexError):
            delta.add_edge(0, 99)
        with pytest.raises(IndexError):
            delta.neighbors(-1)
        with pytest.raises(ValueError):
            delta.add_edge(0, 1, -1.0)


class TestCompaction:
    def test_to_csr_matches_from_edge_list(self, base):
        delta = DeltaGraph(base)
        delta.add_edge(0, 3, 5.0)
        delta.remove_edge(1, 2)
        delta.add_edge(3, 3, 0.5)
        snap = delta.to_csr()
        ref = from_edge_list(
            [(0, 1), (0, 2), (0, 3), (2, 0), (3, 3)], num_vertices=4,
            weights=[1.0, 2.0, 5.0, 4.0, 0.5],
        )
        assert np.array_equal(snap.row_ptr, ref.row_ptr)
        assert np.array_equal(snap.col_idx, ref.col_idx)
        assert np.array_equal(snap.weights, ref.weights)

    def test_unweighted_base_stays_unweighted(self):
        base = from_edge_list([(0, 1), (1, 0)], num_vertices=2)
        delta = DeltaGraph(base)
        delta.add_edge(0, 0)
        assert not delta.to_csr().is_weighted
        delta.add_edge(1, 1, 2.0)  # a weighted insert promotes the graph
        snap = delta.to_csr()
        assert snap.is_weighted
        assert np.array_equal(snap.weights, [1.0, 1.0, 1.0, 2.0])

    def test_compact_clears_overlay_and_bumps_version(self, base):
        delta = DeltaGraph(base)
        delta.add_edge(0, 3)
        delta.remove_edge(2, 0)
        touched = delta.compact()
        assert np.array_equal(touched, [0, 2])
        assert delta.overlay_size == 0
        assert delta.version == 1
        assert delta.base.num_edges == 4
        assert np.array_equal(delta.neighbors(0), [1, 2, 3])

    def test_compact_touches_in_neighbors_of_retired(self, base):
        delta = DeltaGraph(base)
        delta.retire_vertex(2)
        touched = delta.compact()
        # 0 and 1 lose their edge into 2 even though never mutated directly.
        assert np.array_equal(touched, [0, 1, 2])
        assert delta.base.degree(2) == 0
        assert delta.num_edges == 1

    def test_retirement_survives_compaction(self, base):
        delta = DeltaGraph(base)
        delta.retire_vertex(3)
        delta.compact()
        with pytest.raises(ValueError):
            delta.add_edge(0, 3)
        assert delta.is_retired(3)

    def test_budget_triggers_auto_compaction(self, base):
        seen = []
        delta = DeltaGraph(
            base, compaction_budget=2,
            on_compact=lambda g, touched: seen.append((g, list(touched))),
        )
        delta.add_edge(0, 3)
        delta.add_edge(1, 3)
        assert delta.version == 0  # at budget, not over it
        delta.add_edge(3, 0)
        assert delta.version == 1
        assert delta.overlay_size == 0
        assert len(seen) == 1
        new_base, touched = seen[0]
        assert isinstance(new_base, CSRGraph)
        assert touched == [0, 1, 3]
        assert new_base.num_edges == 7

    def test_compact_includes_new_vertices_in_touched(self, base):
        delta = DeltaGraph(base)
        delta.add_vertices(2)
        delta.add_edge(4, 5)
        touched = delta.compact()
        assert np.array_equal(touched, [4, 5])
        assert delta.base.num_vertices == 6

    def test_empty_base_graph(self):
        delta = DeltaGraph(CSRGraph(np.array([0]), np.array([], dtype=np.int64)))
        assert delta.num_vertices == 0
        delta.add_vertices(2)
        delta.add_edge(0, 1)
        snap = delta.to_csr()
        assert snap.num_vertices == 2
        assert np.array_equal(snap.col_idx, [1])


class TestAsCsr:
    def test_as_csr_passthrough_and_snapshot(self, base):
        assert as_csr(base) is base
        delta = DeltaGraph(base)
        delta.add_edge(0, 3)
        snap = as_csr(delta)
        assert isinstance(snap, CSRGraph)
        assert snap.num_edges == 5
        with pytest.raises(TypeError):
            as_csr([1, 2, 3])
