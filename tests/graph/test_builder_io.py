"""Tests for graph builders and persistence."""

import numpy as np
import networkx as nx
import pytest

from repro.graph.builder import from_edge_list, from_networkx, to_networkx
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz


class TestFromEdgeList:
    def test_basic(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.has_edge(0, 1)

    def test_explicit_vertex_count(self):
        g = from_edge_list([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_vertex_count_too_small(self):
        with pytest.raises(ValueError):
            from_edge_list([(0, 4)], num_vertices=3)

    def test_symmetrize(self):
        g = from_edge_list([(0, 1)], symmetrize=True)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_edges == 2

    def test_dedup(self):
        g = from_edge_list([(0, 1), (0, 1), (1, 0)], dedup=True)
        assert g.num_edges == 2

    def test_weights_preserved_and_aligned(self):
        g = from_edge_list([(1, 0), (0, 2), (0, 1)], weights=[5.0, 2.0, 3.0])
        # After grouping by source, vertex 0's neighbors are [2, 1] with
        # weights [2.0, 3.0] (stable order) and vertex 1's neighbor 0 has 5.0.
        assert np.allclose(sorted(g.neighbor_weights(0)), [2.0, 3.0])
        assert np.allclose(g.neighbor_weights(1), [5.0])

    def test_sort_neighbors(self):
        g = from_edge_list([(0, 5), (0, 2), (0, 4)], num_vertices=6, sort_neighbors=True)
        assert list(g.neighbors(0)) == [2, 4, 5]

    def test_empty_edges(self):
        g = from_edge_list([], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list([(-1, 0)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list(np.array([[0, 1, 2]]))


class TestNetworkxRoundtrip:
    def test_undirected_graph_is_symmetrised(self):
        nxg = nx.path_graph(4)
        g = from_networkx(nxg)
        assert g.num_edges == 2 * nxg.number_of_edges()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_directed_graph(self):
        nxg = nx.DiGraph([(0, 1), (1, 2)])
        g = from_networkx(nxg)
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_weight_attribute(self):
        nxg = nx.DiGraph()
        nxg.add_edge(0, 1, weight=2.5)
        g = from_networkx(nxg, weight_attr="weight")
        assert np.allclose(g.neighbor_weights(0), [2.5])

    def test_roundtrip_to_networkx(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], weights=[1.0, 2.0, 3.0])
        nxg = to_networkx(g)
        assert nxg.number_of_edges() == 3
        assert nxg[0][1]["weight"] == pytest.approx(1.0)


class TestIO:
    def test_npz_roundtrip(self, tmp_path, small_weighted_graph):
        path = tmp_path / "graph.npz"
        save_npz(small_weighted_graph, path)
        loaded = load_npz(path)
        assert loaded == small_weighted_graph

    def test_npz_roundtrip_unweighted(self, tmp_path, ring10):
        path = tmp_path / "ring.npz"
        save_npz(ring10, path)
        assert load_npz(path) == ring10

    def test_edge_list_roundtrip(self, tmp_path):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], weights=[1.5, 2.5, 3.5])
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.num_edges == 3
        assert np.allclose(sorted(loaded.weights), [1.5, 2.5, 3.5])

    def test_edge_list_comments_ignored(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# comment line\n% another\n0 1\n1 2\n", encoding="utf-8")
        g = load_edge_list(path)
        assert g.num_edges == 2
        assert not g.is_weighted
