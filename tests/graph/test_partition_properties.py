"""Tests for graph partitioning and analytics."""

import numpy as np
import pytest

from repro.graph.builder import from_edge_list
from repro.graph.generators import powerlaw_graph, ring_graph
from repro.graph.partition import (
    PartitionSet,
    partition_bounds,
    partition_graph,
    range_owners,
    uniform_stride,
)
from repro.graph.properties import degree_histogram, gini_coefficient, graph_stats


class TestPartition:
    def test_partition_counts(self, small_powerlaw_graph):
        parts = partition_graph(small_powerlaw_graph, 4)
        assert parts.num_partitions == 4
        assert sum(p.num_vertices for p in parts) == small_powerlaw_graph.num_vertices
        assert sum(p.num_edges for p in parts) == small_powerlaw_graph.num_edges

    def test_partition_of_matches_ranges(self, small_powerlaw_graph):
        parts = partition_graph(small_powerlaw_graph, 4)
        for p in parts:
            assert parts.partition_of(p.lo) == p.index
            assert parts.partition_of(p.hi - 1) == p.index

    def test_partition_of_many_vectorised(self, small_powerlaw_graph):
        parts = partition_graph(small_powerlaw_graph, 3)
        vertices = np.arange(small_powerlaw_graph.num_vertices)
        owners = parts.partition_of_many(vertices)
        scalar = np.array([parts.partition_of(int(v)) for v in vertices])
        assert np.array_equal(owners, scalar)

    def test_partition_neighbor_lists_complete(self, small_powerlaw_graph):
        """Every partition keeps the *full* neighbor list of its vertices."""
        parts = partition_graph(small_powerlaw_graph, 4)
        for p in parts:
            for v in range(p.lo, min(p.hi, p.lo + 20)):
                assert np.array_equal(
                    p.subgraph.neighbors(v), small_powerlaw_graph.neighbors(v)
                )

    def test_edge_balanced_partition(self):
        g = powerlaw_graph(1000, 10.0, seed=4)
        by_vertex = partition_graph(g, 4, balance="vertices")
        by_edge = partition_graph(g, 4, balance="edges")
        assert np.std(by_edge.edge_counts()) <= np.std(by_vertex.edge_counts()) + 1e-9

    def test_single_partition(self, ring10):
        parts = partition_graph(ring10, 1)
        assert parts.num_partitions == 1
        assert parts[0].num_edges == ring10.num_edges

    def test_invalid_partition_requests(self, ring10):
        with pytest.raises(ValueError):
            partition_graph(ring10, 0)
        with pytest.raises(ValueError):
            partition_graph(ring10, 11)
        with pytest.raises(ValueError):
            partition_graph(ring10, 3, balance="magic")

    def test_partition_of_out_of_range(self, ring10):
        parts = partition_graph(ring10, 2)
        with pytest.raises(IndexError):
            parts.partition_of(10)

    def test_bad_boundaries_rejected(self, ring10):
        with pytest.raises(ValueError):
            PartitionSet(ring10, [0, 5, 5, 10])
        with pytest.raises(ValueError):
            PartitionSet(ring10, [1, 10])

    def test_sizes_bytes(self, small_powerlaw_graph):
        parts = partition_graph(small_powerlaw_graph, 4)
        sizes = parts.sizes_bytes()
        assert sizes.shape == (4,)
        assert np.all(sizes > 0)


class TestOwnerLookup:
    def test_owner_matches_partition_of(self, small_powerlaw_graph):
        parts = partition_graph(small_powerlaw_graph, 4)
        vertices = np.arange(small_powerlaw_graph.num_vertices)
        owners = parts.owner(vertices)
        scalar = np.array([parts.partition_of(int(v)) for v in vertices])
        assert np.array_equal(owners, scalar)

    def test_owner_scalar(self, ring10):
        parts = partition_graph(ring10, 2)
        assert int(parts.owner(0)) == 0
        assert int(parts.owner(9)) == 1
        with pytest.raises(IndexError):
            parts.owner(10)
        with pytest.raises(IndexError):
            parts.owner(np.array([-1, 3]))

    def test_uniform_stride_fast_path(self):
        # 100 vertices into 4 equal ranges: the O(1) division path.
        g = powerlaw_graph(100, 6.0, seed=1)
        bounds = partition_bounds(g, 4)
        assert uniform_stride(bounds) == 25
        vertices = np.arange(100)
        assert np.array_equal(
            range_owners(bounds, vertices, stride=25),
            range_owners(bounds, vertices),
        )

    def test_non_uniform_falls_back_to_searchsorted(self):
        bounds = np.array([0, 3, 50, 100], dtype=np.int64)
        assert uniform_stride(bounds) is None
        owners = range_owners(bounds, np.array([0, 2, 3, 49, 50, 99]))
        assert owners.tolist() == [0, 0, 1, 1, 2, 2]


class TestEdgeBalancedOnSkew:
    """The equal-edge policy under heavy (power-law) degree skew."""

    @pytest.fixture(scope="class")
    def skewed_graph(self):
        # exponent close to 2 gives a very heavy head: the first vertices
        # concentrate a large share of all edges.
        return powerlaw_graph(5000, 12.0, exponent=1.9, seed=13)

    @pytest.mark.parametrize("num_partitions", [2, 4, 8])
    def test_ranges_cover_all_vertices(self, skewed_graph, num_partitions):
        parts = partition_graph(skewed_graph, num_partitions, balance="edges")
        bounds = parts.boundaries
        assert bounds[0] == 0
        assert bounds[-1] == skewed_graph.num_vertices
        assert np.all(np.diff(bounds) > 0)
        assert sum(p.num_vertices for p in parts) == skewed_graph.num_vertices
        assert sum(p.num_edges for p in parts) == skewed_graph.num_edges

    @pytest.mark.parametrize("num_partitions", [2, 4])
    def test_edge_counts_within_tolerance(self, skewed_graph, num_partitions):
        parts = partition_graph(skewed_graph, num_partitions, balance="edges")
        counts = parts.edge_counts()
        target = skewed_graph.num_edges / num_partitions
        # A contiguous split cannot beat the heaviest single vertex, so the
        # tolerance is the max degree plus the ideal per-partition share.
        slack = int(skewed_graph.degrees.max()) + 1
        assert np.all(np.abs(counts - target) <= target + slack)
        # And it must be far better balanced than the equal-vertex split.
        by_vertex = partition_graph(skewed_graph, num_partitions, balance="vertices")
        assert counts.std() <= by_vertex.edge_counts().std()

    def test_empty_graph_rejected(self):
        empty = from_edge_list(np.empty((0, 2), dtype=np.int64), num_vertices=0)
        with pytest.raises(ValueError, match="empty graph"):
            partition_bounds(empty, 2, balance="edges")

    def test_single_vertex_graph(self):
        lonely = from_edge_list(np.empty((0, 2), dtype=np.int64), num_vertices=1)
        parts = partition_graph(lonely, 1, balance="edges")
        assert parts.num_partitions == 1
        assert parts[0].num_vertices == 1
        assert parts[0].num_edges == 0
        with pytest.raises(ValueError, match="more partitions than vertices"):
            partition_bounds(lonely, 2, balance="edges")

    def test_edgeless_graph_with_vertices(self):
        hermits = from_edge_list(np.empty((0, 2), dtype=np.int64), num_vertices=7)
        parts = partition_graph(hermits, 3, balance="edges")
        bounds = parts.boundaries
        assert bounds[0] == 0 and bounds[-1] == 7
        assert np.all(np.diff(bounds) > 0)
        assert sum(p.num_vertices for p in parts) == 7


class TestProperties:
    def test_graph_stats_ring(self, ring10):
        stats = graph_stats(ring10)
        assert stats.num_vertices == 10
        assert stats.avg_degree == pytest.approx(2.0)
        assert stats.max_degree == 2
        assert stats.degree_gini == pytest.approx(0.0, abs=1e-9)
        assert stats.isolated_vertices == 0

    def test_gini_coefficient_extremes(self):
        assert gini_coefficient(np.array([1.0, 1.0, 1.0])) == pytest.approx(0.0, abs=1e-9)
        skewed = gini_coefficient(np.array([0.0] * 99 + [100.0]))
        assert skewed > 0.9
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    def test_degree_histogram(self, ring10):
        hist = degree_histogram(ring10)
        assert hist[2] == 10
        assert hist.sum() == 10

    def test_stats_as_dict(self, ring10):
        d = graph_stats(ring10).as_dict()
        assert d["num_vertices"] == 10
        assert "degree_gini" in d
