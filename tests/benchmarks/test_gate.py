"""The perf-regression gate: passes on shipped baselines, fails when slowed."""

import json
import shutil
from pathlib import Path

import pytest

import gate

REPO = Path(__file__).resolve().parents[2]
SHIPPED_RESULTS = REPO / "benchmarks" / "results" / "BENCH_planner.json"
SHIPPED_BASELINE = REPO / "benchmarks" / "baselines" / "BENCH_planner.json"
SHIPPED_TELEMETRY = REPO / "benchmarks" / "results" / "BENCH_telemetry.json"


def slowed_copy(src: Path, dst: Path, factor: float, metric: str = "wall_time_s"):
    rows = json.loads(src.read_text())
    for row in rows:
        row[metric] = row[metric] * factor
    dst.write_text(json.dumps(rows))
    return dst


class TestGate:
    def test_passes_on_shipped_baselines(self, capsys):
        assert gate.main([]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "REGRESSION" not in out

    def test_fails_on_deliberately_slowed_run(self, tmp_path, capsys):
        slowed = slowed_copy(SHIPPED_RESULTS, tmp_path / "slow.json", 2.0)
        assert gate.main(["--results", str(slowed)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "+100.0%" in out

    def test_tolerance_is_respected(self, tmp_path):
        barely = slowed_copy(SHIPPED_RESULTS, tmp_path / "barely.json", 1.20)
        assert gate.main(["--results", str(barely)]) == 0  # within 25%
        assert gate.main(["--results", str(barely), "--tolerance", "0.1"]) == 1

    def test_improvements_pass(self, tmp_path):
        faster = slowed_copy(SHIPPED_RESULTS, tmp_path / "fast.json", 0.5)
        assert gate.main(["--results", str(faster)]) == 0

    def test_new_and_missing_records_never_fail(self, tmp_path, capsys):
        rows = json.loads(SHIPPED_RESULTS.read_text())
        partial = [rows[0]]  # a smoke run producing one record
        partial.append({"bench": "brand_new", "route": "in_memory", "wall_time_s": 9.9})
        current = tmp_path / "partial.json"
        current.write_text(json.dumps(partial))
        assert gate.main(["--results", str(current)]) == 0
        out = capsys.readouterr().out
        assert "baseline only" in out and "new record" in out

    def test_update_accepts_current(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        shutil.copyfile(SHIPPED_BASELINE, baseline)
        slowed = slowed_copy(SHIPPED_RESULTS, tmp_path / "slow.json", 3.0)
        args = ["--results", str(slowed), "--baseline", str(baseline)]
        assert gate.main(args) == 1
        assert gate.main(args + ["--update"]) == 0
        assert gate.main(args) == 0  # accepted: now the baseline itself

    def test_missing_files_are_usage_errors(self, tmp_path):
        assert gate.main(["--results", str(tmp_path / "none.json")]) == 2
        assert gate.main(["--baseline", str(tmp_path / "none.json")]) == 2

    def _latency_workdir(self, tmp_path, factor):
        """Results + baseline dirs where only the latency snapshot moved."""
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        shutil.copyfile(SHIPPED_RESULTS, results / "BENCH_planner.json")
        shutil.copyfile(SHIPPED_BASELINE, baselines / "BENCH_planner.json")
        shutil.copyfile(SHIPPED_TELEMETRY, baselines / "BENCH_telemetry.json")
        rows = json.loads(SHIPPED_TELEMETRY.read_text())
        for row in rows:
            row["p50_s"] *= factor
            row["p99_s"] *= factor
        (results / "BENCH_telemetry.json").write_text(json.dumps(rows))
        return ["--results", str(results / "BENCH_planner.json"),
                "--baseline", str(baselines / "BENCH_planner.json")]

    def test_latency_percentiles_gate_when_baselined(self, tmp_path, capsys):
        args = self._latency_workdir(tmp_path, 2.0)
        assert gate.main(args) == 1
        out = capsys.readouterr().out
        assert "p99_s" in out and "FAIL" in out

    def test_latency_tolerance_is_wider_than_wall_time(self, tmp_path):
        # +40% p50/p99 passes the default 50% latency band even though it
        # would trip the 25% wall-time tolerance.
        args = self._latency_workdir(tmp_path, 1.4)
        assert gate.main(args) == 0
        assert gate.main(args + ["--latency-tolerance", "0.2"]) == 1

    def test_latency_without_baseline_never_fails(self, tmp_path, capsys):
        args = self._latency_workdir(tmp_path, 5.0)
        # Drop the latency baseline: the snapshot is new, so it reports
        # but cannot gate until --update persists one.
        (tmp_path / "baselines" / "BENCH_telemetry.json").unlink()
        assert gate.main(args) == 0
        assert "(new)" in capsys.readouterr().out

    def test_update_persists_the_latency_baseline(self, tmp_path):
        args = self._latency_workdir(tmp_path, 3.0)
        assert gate.main(args) == 1
        assert gate.main(args + ["--update"]) == 0
        baseline = json.loads(
            (tmp_path / "baselines" / "BENCH_telemetry.json").read_text())
        current = json.loads(
            (tmp_path / "results" / "BENCH_telemetry.json").read_text())
        assert baseline == current
        assert gate.main(args) == 0  # accepted: now the baseline itself

    def test_shipped_baseline_matches_results_snapshot(self):
        # The baseline is a real snapshot of the trajectory file, not an
        # unrelated artifact: both must parse and share record keys.
        current = gate.load_records(SHIPPED_RESULTS)
        baseline = gate.load_records(SHIPPED_BASELINE)
        assert set(baseline) == set(current)
