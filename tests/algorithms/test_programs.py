"""Tests for the algorithm zoo: every Table I program behaves as specified."""

import numpy as np
import pytest

from repro.algorithms import (
    BiasedNeighborSampling,
    BiasedRandomWalk,
    DeepWalk,
    ForestFireSampling,
    LayerSampling,
    MetropolisHastingsWalk,
    MultiDimensionalRandomWalk,
    Node2Vec,
    RandomWalkWithJump,
    RandomWalkWithRestart,
    SimpleRandomWalk,
    SnowballSampling,
    UnbiasedNeighborSampling,
    run_random_walks,
)
from repro.api.bias import EdgePool
from repro.api.instance import InstanceState
from repro.api.sampler import sample_graph
from repro.api.select import gather_neighbors


def edge_pool(graph, vertex, prev=-1):
    inst = InstanceState(0, np.array([vertex]))
    inst.prev_vertex = prev
    return gather_neighbors(graph, vertex, inst)


class TestNeighborSampling:
    def test_unbiased_edge_bias_uniform(self, toy_graph):
        pool = edge_pool(toy_graph, 8)
        assert np.allclose(UnbiasedNeighborSampling().edge_bias(pool), 1.0)

    def test_biased_uses_weights_when_available(self, weighted_toy_graph):
        pool = edge_pool(weighted_toy_graph, 8)
        assert np.allclose(BiasedNeighborSampling().edge_bias(pool), pool.weights)

    def test_biased_falls_back_to_degree(self, toy_graph):
        pool = edge_pool(toy_graph, 8)
        bias = BiasedNeighborSampling().edge_bias(pool)
        assert np.array_equal(bias, toy_graph.degrees[pool.neighbors] + 1.0)

    def test_update_filters_visited(self, toy_graph):
        pool = edge_pool(toy_graph, 8)
        pool.instance.mark_visited(np.array([5, 7]))
        fresh = UnbiasedNeighborSampling().update(pool, np.array([5, 7, 9]))
        assert list(fresh) == [9]

    def test_no_duplicate_edges_and_no_reexpansion(self, small_powerlaw_graph):
        """Traversal sampling without replacement: per instance, the same edge
        is never sampled twice and no vertex is expanded as a frontier vertex
        more than once (the visited filter keeps it out of later pools)."""
        program = UnbiasedNeighborSampling()
        config = program.default_config(depth=3, neighbor_size=3)
        result = sample_graph(small_powerlaw_graph, program, seeds=list(range(10)),
                              config=config)
        for sample in result.samples:
            pairs = [tuple(e) for e in sample.edges.tolist()]
            assert len(pairs) == len(set(pairs)), "an edge was sampled twice"
            sources = sample.edges[:, 0]
            # A frontier vertex expanded once contributes a contiguous block of
            # source entries; count how many distinct blocks each source has.
            for src in np.unique(sources):
                positions = np.nonzero(sources == src)[0]
                assert np.all(np.diff(positions) == 1), "a vertex was expanded twice"


class TestForestFireAndSnowball:
    def test_forest_fire_neighbor_count_bounded(self, toy_graph):
        program = ForestFireSampling(burning_probability=0.7, seed=1)
        pool = edge_pool(toy_graph, 8)
        for _ in range(50):
            count = program.neighbor_count(pool, 999)
            assert 0 <= count <= pool.size

    def test_forest_fire_mean_burn_rate(self, toy_graph):
        program = ForestFireSampling(burning_probability=0.7, seed=2)
        pool = edge_pool(toy_graph, 8)
        draws = [program.neighbor_count(pool, 999) for _ in range(3000)]
        # Mean of the geometric draw is p/(1-p) = 2.33, truncated by pool size 5.
        assert 1.2 < np.mean(draws) < 3.0

    def test_forest_fire_invalid_probability(self):
        with pytest.raises(ValueError):
            ForestFireSampling(burning_probability=1.5)

    def test_snowball_takes_every_neighbor(self, toy_graph):
        program = SnowballSampling()
        pool = edge_pool(toy_graph, 8)
        assert program.neighbor_count(pool, 1) == pool.size

    def test_snowball_cap(self, toy_graph):
        program = SnowballSampling(max_per_vertex=2)
        pool = edge_pool(toy_graph, 8)
        assert program.neighbor_count(pool, 1) == 2
        with pytest.raises(ValueError):
            SnowballSampling(max_per_vertex=0)

    def test_snowball_depth1_samples_all_neighbors(self, toy_graph):
        program = SnowballSampling()
        result = sample_graph(toy_graph, program, seeds=[8],
                              config=program.default_config(depth=1))
        assert result.total_sampled_edges == toy_graph.degree(8)


class TestLayerSampling:
    def test_layer_budget_shared_across_frontier(self, toy_graph):
        program = LayerSampling()
        config = program.default_config(depth=1, neighbor_size=3)
        result = sample_graph(toy_graph, program, seeds=[[8, 0]], config=config)
        # Per-layer scope: at most NeighborSize edges for the whole layer.
        assert 0 < result.total_sampled_edges <= 3

    def test_uses_weights_when_available(self, weighted_toy_graph):
        program = LayerSampling()
        pool = edge_pool(weighted_toy_graph, 8)
        assert np.allclose(program.edge_bias(pool), pool.weights)


class TestRandomWalks:
    def test_walk_is_a_path(self, toy_graph):
        program = SimpleRandomWalk()
        config = program.default_config(depth=6)
        result = sample_graph(toy_graph, program, seeds=[8], config=config)
        edges = result.samples[0].edges
        # Consecutive edges chain: dst of step i == src of step i+1.
        for i in range(len(edges) - 1):
            assert edges[i, 1] == edges[i + 1, 0]
        for src, dst in edges:
            assert toy_graph.has_edge(int(src), int(dst))

    def test_deepwalk_is_unbiased_alias(self, toy_graph):
        pool = edge_pool(toy_graph, 8)
        assert np.allclose(DeepWalk().edge_bias(pool), 1.0)

    def test_biased_walk_prefers_heavy_edges(self, weighted_toy_graph):
        pool = edge_pool(weighted_toy_graph, 8)
        assert np.allclose(BiasedRandomWalk().edge_bias(pool), pool.weights)

    def test_run_random_walks_lengths(self, small_powerlaw_graph):
        result = run_random_walks(small_powerlaw_graph, seeds=np.arange(20),
                                  walk_length=15, seed=3)
        assert result.num_instances == 20
        assert result.total_sampled_edges <= 20 * 15
        assert result.total_sampled_edges > 0
        for sample in result.samples:
            for src, dst in sample.edges:
                assert small_powerlaw_graph.has_edge(int(src), int(dst))

    def test_run_random_walks_deterministic(self, small_powerlaw_graph):
        a = run_random_walks(small_powerlaw_graph, seeds=np.arange(10), walk_length=5, seed=1)
        b = run_random_walks(small_powerlaw_graph, seeds=np.arange(10), walk_length=5, seed=1)
        assert np.array_equal(a.all_edges(), b.all_edges())

    def test_run_random_walks_invalid_length(self, ring10):
        with pytest.raises(ValueError):
            run_random_walks(ring10, seeds=[0], walk_length=0)


class TestMetropolisHastings:
    def test_rejection_keeps_walker_in_place(self, toy_graph):
        program = MetropolisHastingsWalk(seed=0)
        pool = edge_pool(toy_graph, 8)
        stay = program.update(pool, np.array([], dtype=np.int64))
        assert list(stay) == [8]

    def test_acceptance_probability_degree_ratio(self, toy_graph):
        program = MetropolisHastingsWalk(seed=1)
        # From a low-degree vertex to the hub 8, acceptance should be partial.
        pool = edge_pool(toy_graph, 12)
        accepted = sum(
            program.accept(pool, np.array([pool.neighbors[0]])).size for _ in range(500)
        )
        ratio = toy_graph.degree(12) / toy_graph.degree(int(pool.neighbors[0]))
        assert accepted / 500 == pytest.approx(min(1.0, ratio), abs=0.1)

    def test_walk_runs(self, toy_graph):
        program = MetropolisHastingsWalk(seed=2)
        result = sample_graph(toy_graph, program, seeds=[8, 0],
                              config=program.default_config(depth=5))
        assert result.num_instances == 2


class TestJumpRestart:
    def test_jump_probability_one_always_teleports(self, toy_graph):
        program = RandomWalkWithJump(jump_probability=1.0, seed=3)
        pool = edge_pool(toy_graph, 8)
        targets = {int(program.update(pool, np.array([5]))[0]) for _ in range(100)}
        assert len(targets) > 3  # teleports all over the graph

    def test_jump_probability_zero_never_teleports(self, toy_graph):
        program = RandomWalkWithJump(jump_probability=0.0, seed=3)
        pool = edge_pool(toy_graph, 8)
        assert list(program.update(pool, np.array([5]))) == [5]

    def test_restart_returns_to_seed(self, toy_graph):
        program = RandomWalkWithRestart(restart_probability=1.0, seed=4)
        inst = InstanceState(0, np.array([2]))
        inst.set_pool(np.array([8]))
        pool = EdgePool(src=8, neighbors=toy_graph.neighbors(8),
                        weights=toy_graph.neighbor_weights(8), instance=inst,
                        graph=toy_graph)
        assert list(program.update(pool, np.array([5]))) == [2]

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomWalkWithJump(jump_probability=1.5)


class TestMultiDimensionalRandomWalk:
    def test_pool_size_stays_constant(self, small_powerlaw_graph):
        program = MultiDimensionalRandomWalk()
        config = program.default_config(depth=10)
        sampler_seeds = [[0, 1, 2, 3, 4]]
        result = sample_graph(small_powerlaw_graph, program, seeds=sampler_seeds, config=config)
        # One edge sampled per step (when the selected vertex has neighbors).
        assert 0 < result.total_sampled_edges <= 10

    def test_vertex_bias_is_degree_based(self, toy_graph):
        from repro.api.bias import FrontierPoolView
        program = MultiDimensionalRandomWalk()
        inst = InstanceState(0, np.array([8, 12, 0]))
        view = FrontierPoolView(vertices=inst.frontier_pool,
                                degrees=toy_graph.degrees[inst.frontier_pool],
                                instance=inst, graph=toy_graph)
        bias = program.vertex_bias(view)
        assert bias[0] > bias[1]  # hub 8 outweighs low-degree 12


class TestNode2Vec:
    def test_first_step_uses_plain_weights(self, weighted_toy_graph):
        program = Node2Vec(p=4.0, q=0.25)
        pool = edge_pool(weighted_toy_graph, 8, prev=-1)
        assert np.allclose(program.edge_bias(pool), pool.weights)

    def test_return_and_outward_biases(self, weighted_toy_graph):
        p, q = 4.0, 0.25
        program = Node2Vec(p=p, q=q)
        pool = edge_pool(weighted_toy_graph, 8, prev=5)
        bias = program.edge_bias(pool)
        neighbors = pool.neighbors.tolist()
        prev_neighbors = set(weighted_toy_graph.neighbors(5).tolist())
        for i, u in enumerate(neighbors):
            w = pool.weights[i]
            if u == 5:
                assert bias[i] == pytest.approx(w / p)
            elif u in prev_neighbors:
                assert bias[i] == pytest.approx(w)
            else:
                assert bias[i] == pytest.approx(w / q)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Node2Vec(p=0.0)
        with pytest.raises(ValueError):
            Node2Vec(q=-1.0)

    def test_walk_runs_end_to_end(self, weighted_toy_graph):
        program = Node2Vec(p=2.0, q=0.5)
        result = sample_graph(weighted_toy_graph, program, seeds=[8, 0, 3],
                              config=program.default_config(depth=6))
        assert result.total_sampled_edges > 0
