"""Tests for the Table I design-space registry."""

import pytest

from repro.algorithms.registry import (
    ALGORITHM_REGISTRY,
    default_config,
    get_algorithm,
    list_algorithms,
)
from repro.api.bias import SamplingProgram
from repro.api.config import SamplingConfig


class TestRegistryContents:
    def test_all_table1_algorithms_present(self):
        expected = {
            "simple_random_walk",
            "deepwalk",
            "metropolis_hastings_walk",
            "random_walk_with_jump",
            "random_walk_with_restart",
            "unbiased_neighbor_sampling",
            "forest_fire_sampling",
            "snowball_sampling",
            "biased_random_walk",
            "biased_neighbor_sampling",
            "layer_sampling",
            "multidimensional_random_walk",
            "node2vec",
        }
        assert expected <= set(ALGORITHM_REGISTRY)

    def test_every_bias_category_covered(self):
        assert set(list_algorithms(bias="unbiased"))
        assert set(list_algorithms(bias="static"))
        assert set(list_algorithms(bias="dynamic")) == {
            "multidimensional_random_walk",
            "node2vec",
        }

    def test_random_walk_filter(self):
        walks = list_algorithms(random_walk=True)
        samplers = list_algorithms(random_walk=False)
        assert "deepwalk" in walks and "deepwalk" not in samplers
        assert "layer_sampling" in samplers
        assert set(walks) | set(samplers) == set(ALGORITHM_REGISTRY)

    def test_factories_produce_program_and_config(self):
        for name, info in ALGORITHM_REGISTRY.items():
            program = info.program_factory()
            config = info.config_factory()
            assert isinstance(program, SamplingProgram), name
            assert isinstance(config, SamplingConfig), name
            assert program.name == name

    def test_walks_allow_replacement_samplers_do_not(self):
        for name, info in ALGORITHM_REGISTRY.items():
            config = info.config_factory()
            if info.is_random_walk:
                assert config.with_replacement, name
            else:
                assert not config.with_replacement, name

    def test_get_algorithm_and_default_config(self):
        info = get_algorithm("node2vec")
        assert info.bias == "dynamic"
        config = default_config("node2vec", depth=11)
        assert config.depth == 11

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            get_algorithm("quantum_walk")
