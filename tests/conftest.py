"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import from_edge_list
from repro.graph.generators import generate_dataset, powerlaw_graph, ring_graph


@pytest.fixture(scope="session")
def toy_graph():
    """The paper's Fig. 1(a) toy graph (13 vertices, undirected).

    Vertex 8's neighbors are {5, 7, 9, 10, 11}, matching the running example
    used throughout the paper's selection figures.
    """
    edges = [
        (0, 1), (0, 4), (0, 5),
        (1, 2), (1, 5),
        (2, 3), (2, 6),
        (3, 6), (3, 7),
        (4, 5), (4, 7),
        (5, 8), (5, 6),
        (6, 9), (6, 10),
        (7, 8), (7, 11), (7, 3),
        (8, 9), (8, 10), (8, 11), (8, 5), (8, 7),
        (9, 12), (10, 12), (11, 12),
    ]
    return from_edge_list(edges, num_vertices=13, symmetrize=True, dedup=True)


@pytest.fixture(scope="session")
def weighted_toy_graph(toy_graph):
    """The toy graph with deterministic pseudo-random edge weights."""
    rng = np.random.default_rng(11)
    return toy_graph.with_weights(rng.uniform(0.5, 3.0, size=toy_graph.num_edges))


@pytest.fixture(scope="session")
def small_powerlaw_graph():
    """A 500-vertex scale-free graph used by mid-size tests."""
    return powerlaw_graph(500, 8.0, exponent=2.2, seed=3)


@pytest.fixture(scope="session")
def small_weighted_graph(small_powerlaw_graph):
    """The scale-free graph with uniform random weights."""
    rng = np.random.default_rng(5)
    weights = rng.uniform(0.1, 1.0, size=small_powerlaw_graph.num_edges)
    return small_powerlaw_graph.with_weights(weights)


@pytest.fixture(scope="session")
def ring10():
    """A 10-vertex bidirectional ring (every vertex has degree 2)."""
    return ring_graph(10)


@pytest.fixture(scope="session")
def am_dataset():
    """The Table II 'AM' stand-in graph, weighted."""
    return generate_dataset("AM", seed=1, weighted=True)
