"""Statistical correctness of every selection kernel (chi-square GOF).

Each kernel draws a large, *fixed-seed* sample and a chi-square
goodness-of-fit test compares the empirical category counts against the
exact edge-weight distribution.

Rejection thresholds
--------------------

All tests assert ``p > ALPHA`` with ``ALPHA = 1e-3``: a correct kernel
fails such a test for ~1 in 1000 seeds, and because every seed here is
fixed the tests are fully deterministic -- each one was verified to pass
at its pinned seed, so any future failure means a kernel's distribution
actually changed, not statistical bad luck.  Sample sizes keep every
expected cell count well above 5 (the classical chi-square validity rule).

Without-replacement kernels are checked two ways:

* the *first* selection of every trial is exactly bias-proportional
  (multinomial over candidates);
* the *selected set* of every trial follows successive weighted sampling
  without replacement, whose exact set probabilities are enumerated over
  all ordered selections -- repeated, updated and bipartite strategies must
  all match it (Theorem 2's equivalence), whatever collision detector
  backs them.
"""

import itertools

import numpy as np
import pytest
from scipy import stats

from repro.gpusim.prng import CounterRNG
from repro.selection import (
    CTPS,
    build_alias_table,
    dartboard_sample,
    sample_with_replacement,
    select_without_replacement,
)

ALPHA = 1e-3

#: A deliberately skewed pool: the shapes rejection/bitmap kernels struggle
#: with, and small enough for exact set-probability enumeration.
BIASES = np.array([0.5, 1.0, 2.0, 4.0, 0.25])


def chisquare_pvalue(counts, probabilities):
    total = int(np.sum(counts))
    expected = np.asarray(probabilities, dtype=np.float64) * total
    assert expected.min() > 5, "sample size too small for a valid chi-square"
    return stats.chisquare(counts, expected).pvalue


def exact_set_probabilities(biases, k):
    """P(selected set) under successive weighted sampling w/o replacement."""
    probs = {}
    total = float(np.sum(biases))
    for sequence in itertools.permutations(range(len(biases)), k):
        p, remaining = 1.0, total
        for index in sequence:
            p *= biases[index] / remaining
            remaining -= biases[index]
        key = frozenset(sequence)
        probs[key] = probs.get(key, 0.0) + p
    return probs


class TestWithReplacementKernels:
    def test_its_sample_with_replacement(self):
        rng = CounterRNG(101)
        draws = sample_with_replacement(BIASES, 40_000, rng, 0)
        counts = np.bincount(draws, minlength=BIASES.size)
        assert chisquare_pvalue(counts, BIASES / BIASES.sum()) > ALPHA

    def test_ctps_search_many(self):
        ctps = CTPS.from_biases(BIASES)
        rng = CounterRNG(202)
        rs = rng.uniform(np.arange(40_000, dtype=np.int64))
        counts = np.bincount(ctps.search_many(rs), minlength=BIASES.size)
        assert chisquare_pvalue(counts, ctps.probabilities()) > ALPHA

    def test_ctps_zero_width_regions_never_hit(self):
        biases = np.array([1.0, 0.0, 2.0, 0.0, 1.0])
        ctps = CTPS.from_biases(biases)
        rng = CounterRNG(303)
        rs = rng.uniform(np.arange(30_000, dtype=np.int64))
        counts = np.bincount(ctps.search_many(rs), minlength=biases.size)
        assert counts[1] == 0 and counts[3] == 0
        positive = biases > 0
        assert chisquare_pvalue(
            counts[positive], biases[positive] / biases.sum()
        ) > ALPHA

    def test_alias_table_sample_many(self):
        table = build_alias_table(BIASES)
        rng = CounterRNG(404)
        draws = table.sample_many(40_000, rng, 0)
        counts = np.bincount(draws, minlength=BIASES.size)
        assert chisquare_pvalue(counts, BIASES / BIASES.sum()) > ALPHA
        # The reconstructed table probabilities are exact.
        np.testing.assert_allclose(table.probabilities(), BIASES / BIASES.sum())

    def test_dartboard_rejection_sampling(self):
        rng = CounterRNG(505)
        counts = np.zeros(BIASES.size, dtype=np.int64)
        for trial in range(8_000):
            index, _ = dartboard_sample(BIASES, rng, trial)
            counts[index] += 1
        assert chisquare_pvalue(counts, BIASES / BIASES.sum()) > ALPHA


#: (strategy, detector) pairs cover every collision-mitigation kernel and
#: every bitmap layout; all must produce the same selection distribution.
STRATEGY_MATRIX = [
    ("bipartite", "strided_bitmap", 606),
    ("bipartite", "bitmap", 707),
    ("repeated", "bitmap", 808),
    ("repeated", "linear", 909),
    ("updated", "strided_bitmap", 1010),
    ("updated", "linear", 1111),
]


class TestWithoutReplacementKernels:
    @pytest.mark.parametrize("strategy,detector,seed", STRATEGY_MATRIX)
    def test_first_selection_is_bias_proportional(self, strategy, detector, seed):
        rng = CounterRNG(seed)
        counts = np.zeros(BIASES.size, dtype=np.int64)
        for trial in range(8_000):
            result = select_without_replacement(
                BIASES, 3, rng, trial, strategy=strategy, detector=detector
            )
            counts[result.indices[0]] += 1
        assert chisquare_pvalue(counts, BIASES / BIASES.sum()) > ALPHA

    @pytest.mark.parametrize("strategy,detector,seed", STRATEGY_MATRIX)
    def test_selected_set_matches_exact_enumeration(self, strategy, detector, seed):
        k = 3
        exact = exact_set_probabilities(BIASES, k)
        keys = sorted(exact, key=sorted)
        rng = CounterRNG(seed + 1)
        counts = {key: 0 for key in keys}
        trials = 6_000
        for trial in range(trials):
            result = select_without_replacement(
                BIASES, k, rng, trial, strategy=strategy, detector=detector
            )
            counts[frozenset(int(i) for i in result.indices)] += 1
        observed = np.array([counts[key] for key in keys])
        probabilities = np.array([exact[key] for key in keys])
        assert chisquare_pvalue(observed, probabilities) > ALPHA

    def test_uniform_pool_full_selection_is_exhaustive(self):
        rng = CounterRNG(1212)
        biases = np.ones(4)
        for trial in range(50):
            result = select_without_replacement(
                biases, 4, rng, trial, strategy="bipartite"
            )
            assert sorted(result.indices.tolist()) == [0, 1, 2, 3]


# --------------------------------------------------------------------------- #
# Compiled-tier kernels: the same exact-enumeration bar, end to end
# --------------------------------------------------------------------------- #

#: Backends to drive the compiled engine through (the numba leg only runs
#: where numba is installed -- the CI compiled-smoke job's with-numba leg).
def _compiled_backends():
    from repro.compiled import NUMBA_AVAILABLE

    backends = ["numpy"]
    if NUMBA_AVAILABLE:
        backends.append("numba")
    return backends


class TestCompiledSelectionDistributions:
    """Distribution correctness of the compiled step engine's selections.

    The compiled tier must not just be bit-identical to the interpreted
    engine on pinned seeds -- its without-replacement and frontier-scope
    selections must themselves match the exact enumerated set
    probabilities, closing the loop against a shared bug in both tiers'
    shapes.  Every test asserts the run actually used the compiled engine.
    """

    TRIALS = 6_000

    def _weighted_star(self):
        """Hub vertex 0 with 5 weighted out-edges (BIASES), leaf sinks."""
        from repro.graph.csr import CSRGraph

        row_ptr = np.array([0, 5, 5, 5, 5, 5, 5], dtype=np.int64)
        col_idx = np.arange(1, 6, dtype=np.int64)
        return CSRGraph(row_ptr, col_idx, weights=BIASES.copy())

    @pytest.mark.parametrize("backend", _compiled_backends())
    def test_compiled_without_replacement_matches_enumeration(self, backend):
        from repro.algorithms.neighbor_sampling import BiasedNeighborSampling
        from repro.api.sampler import GraphSampler
        from repro.compiled import force_backend
        from repro.compiled.step_engine import CompiledStepEngine

        graph = self._weighted_star()
        config = BiasedNeighborSampling.default_config(
            depth=1, neighbor_size=3, seed=77
        )
        with force_backend(backend):
            sampler = GraphSampler(graph, BiasedNeighborSampling(), config)
            assert isinstance(sampler.engine, CompiledStepEngine)
            result = sampler.run([0], num_instances=self.TRIALS)
        k = 3
        exact = exact_set_probabilities(BIASES, k)
        keys = sorted(exact, key=sorted)
        counts = {key: 0 for key in keys}
        for sample in result.samples:
            # Hub edges go to vertices 1..5; index = destination - 1.
            chosen = frozenset(int(dst) - 1 for dst in sample.edges[:, 1])
            assert len(chosen) == k
            counts[chosen] += 1
        observed = np.array([counts[key] for key in keys])
        probabilities = np.array([exact[key] for key in keys])
        assert chisquare_pvalue(observed, probabilities) > ALPHA

    def _frontier_graph(self):
        """Candidates 0..4 with controlled degrees; leaves are sinks."""
        from repro.graph.csr import CSRGraph

        degrees = np.array([1, 2, 4, 8, 3], dtype=np.int64)
        row_ptr = np.zeros(int(degrees.sum()) + len(degrees) + 1, dtype=np.int64)
        row_ptr[1:len(degrees) + 1] = np.cumsum(degrees)
        row_ptr[len(degrees) + 1:] = degrees.sum()
        col_idx = np.arange(
            len(degrees), len(degrees) + int(degrees.sum()), dtype=np.int64
        )
        return CSRGraph(row_ptr, col_idx), degrees

    @pytest.mark.parametrize("backend", _compiled_backends())
    def test_compiled_frontier_scope_matches_enumeration(self, backend):
        from repro.algorithms.multidim_walk import MultiDimensionalRandomWalk
        from repro.api.sampler import GraphSampler
        from repro.compiled import force_backend
        from repro.compiled.step_engine import CompiledStepEngine

        graph, degrees = self._frontier_graph()
        biases = degrees.astype(np.float64) + 1.0
        k = 3
        config = MultiDimensionalRandomWalk.default_config(
            frontier_size=k, depth=1, seed=88
        )
        with force_backend(backend):
            sampler = GraphSampler(graph, MultiDimensionalRandomWalk(), config)
            assert isinstance(sampler.engine, CompiledStepEngine)
            result = sampler.run(
                [[0, 1, 2, 3, 4]], num_instances=self.TRIALS
            )
        exact = exact_set_probabilities(biases, k)
        keys = sorted(exact, key=sorted)
        counts = {key: 0 for key in keys}
        for sample in result.samples:
            # Every candidate has at least one neighbor, so each selected
            # frontier vertex contributes exactly one sampled edge.
            chosen = frozenset(int(src) for src in sample.edges[:, 0])
            assert len(chosen) == k
            counts[chosen] += 1
        observed = np.array([counts[key] for key in keys])
        probabilities = np.array([exact[key] for key in keys])
        assert chisquare_pvalue(observed, probabilities) > ALPHA
