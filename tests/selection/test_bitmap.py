"""Tests for collision detectors: linear search, contiguous and strided bitmaps."""

import numpy as np
import pytest

from repro.gpusim.costmodel import CostModel
from repro.selection.bitmap import (
    ContiguousBitmap,
    LinearSearchDetector,
    StridedBitmap,
    make_detector,
)


DETECTOR_KINDS = ["linear", "bitmap", "strided_bitmap"]


@pytest.mark.parametrize("kind", DETECTOR_KINDS)
class TestDetectorSemantics:
    def test_first_mark_is_fresh_second_is_duplicate(self, kind):
        det = make_detector(kind, 10)
        assert det.check_and_mark(3) is False
        assert det.check_and_mark(3) is True
        assert det.is_marked(3)
        assert not det.is_marked(4)

    def test_reset_clears_marks(self, kind):
        det = make_detector(kind, 10)
        det.check_and_mark(1)
        det.reset()
        assert not det.is_marked(1)
        assert det.check_and_mark(1) is False

    def test_all_candidates_trackable(self, kind):
        det = make_detector(kind, 37)
        for candidate in range(37):
            assert det.check_and_mark(candidate) is False
        assert all(det.is_marked(c) for c in range(37))

    def test_out_of_range_rejected(self, kind):
        det = make_detector(kind, 5)
        with pytest.raises(IndexError):
            det.check_and_mark(5)
        with pytest.raises(IndexError):
            det.is_marked(-1)


class TestLinearSearchCosts:
    def test_probe_count_grows_with_selected(self):
        det = LinearSearchDetector(16)
        cost = CostModel()
        for candidate in range(8):
            det.check_and_mark(candidate, cost)
        # Probes: 1 + 1 + 2 + 3 + ... + 7
        assert cost.collision_probes == 1 + sum(range(1, 8))
        assert cost.shared_accesses == cost.collision_probes
        assert det.selected == list(range(8))

    def test_append_requires_atomic(self):
        cost = CostModel()
        det = LinearSearchDetector(4)
        det.check_and_mark(0, cost)
        det.check_and_mark(0, cost)
        assert cost.atomic_ops == 1  # only the successful append


class TestBitmaps:
    def test_bitmap_probe_is_constant(self):
        cost = CostModel()
        det = ContiguousBitmap(64)
        for candidate in range(16):
            det.check_and_mark(candidate, cost)
        assert cost.collision_probes == 16
        assert cost.atomic_ops == 16

    def test_contiguous_layout_packs_adjacent_candidates(self):
        det = ContiguousBitmap(16)
        assert det._locate(0)[0] == det._locate(7)[0] == 0
        assert det._locate(8)[0] == 1

    def test_strided_layout_spreads_adjacent_candidates(self):
        det = StridedBitmap(16)
        words = {det._locate(c)[0] for c in range(min(8, det.stride))}
        assert len(words) == min(8, det.stride)

    def test_strided_conflicts_fewer_than_contiguous(self):
        """Fig. 7: concurrent lanes marking adjacent candidates conflict on the
        contiguous bitmap but not on the strided one."""
        candidates = np.arange(8)
        contiguous, strided = ContiguousBitmap(64), StridedBitmap(64)
        cost_c, cost_s = CostModel(), CostModel()
        contiguous.check_and_mark_many(candidates, cost_c)
        strided.check_and_mark_many(candidates, cost_s)
        assert cost_c.atomic_conflicts > 0
        assert cost_s.atomic_conflicts == 0

    def test_check_and_mark_many_detects_duplicates(self):
        det = StridedBitmap(32)
        was_set = det.check_and_mark_many(np.array([4, 4, 5]))
        assert list(was_set) == [False, True, False]

    def test_strided_custom_stride_validation(self):
        StridedBitmap(64, stride=8)
        with pytest.raises(ValueError):
            StridedBitmap(64, stride=4)  # too few words for 64 candidates

    def test_strided_capacity(self):
        det = StridedBitmap(100)
        assert det.capacity >= 100

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ContiguousBitmap(0)
        with pytest.raises(ValueError):
            StridedBitmap(0)
        with pytest.raises(ValueError):
            LinearSearchDetector(0)

    def test_make_detector_unknown(self):
        with pytest.raises(ValueError):
            make_detector("magic", 8)
