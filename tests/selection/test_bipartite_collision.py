"""Tests for bipartite region search and the collision-mitigation strategies.

The key correctness property (Theorem 2) is that bipartite region search
selects with exactly the distribution of updated sampling, i.e. sequential
weighted sampling without replacement, while never rebuilding the CTPS.
"""

import numpy as np
import pytest

from repro.baselines.reference import reference_select_without_replacement
from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.metrics.stats import total_variation_distance
from repro.selection.bipartite import bipartite_remap, bipartite_search_select
from repro.selection.bitmap import LinearSearchDetector, StridedBitmap
from repro.selection.collision import (
    CollisionStrategy,
    select_without_replacement,
)
from repro.selection.ctps import CTPS


class TestBipartiteRemap:
    def test_paper_example(self):
        """Fig. 6(c): r' = 0.58 with region (0.2, 0.6) selected remaps to 0.748."""
        remapped = bipartite_remap(0.58, (0.2, 0.6))
        assert remapped == pytest.approx(0.748, abs=1e-9)
        ctps = CTPS.from_biases(np.array([3.0, 6.0, 2.0, 2.0, 2.0]))
        # 0.748 falls in the fourth candidate's region (v10 in the paper).
        assert ctps.search(remapped) == 3

    def test_left_branch(self):
        """Small draws remap into the region left of the selected block."""
        remapped = bipartite_remap(0.1, (0.2, 0.6))
        assert remapped == pytest.approx(0.1 * (1 - 0.4), abs=1e-12)
        assert remapped < 0.2

    def test_matches_updated_ctps_boundaries(self):
        """Theorem 2: the remap reproduces the updated CTPS region boundaries."""
        biases = np.array([3.0, 6.0, 2.0, 2.0, 2.0])
        ctps = CTPS.from_biases(biases)
        selected = 1
        updated = ctps.exclude(np.array([selected]))
        region = ctps.region(selected)
        for r_prime in np.linspace(0.001, 0.998, 300):
            expected = updated.search(float(r_prime))
            got = ctps.search(min(bipartite_remap(float(r_prime), region),
                                  np.nextafter(1.0, 0.0)))
            assert got == expected

    def test_invalid_regions(self):
        with pytest.raises(ValueError):
            bipartite_remap(0.5, (0.6, 0.2))
        with pytest.raises(ValueError):
            bipartite_remap(0.5, (0.0, 1.0))


class TestBipartiteSearchSelect:
    def test_never_selects_marked(self):
        biases = np.array([5.0, 1.0, 1.0, 1.0, 1.0])
        ctps = CTPS.from_biases(biases)
        rng = CounterRNG(0)
        detector = StridedBitmap(5)
        chosen = []
        for lane in range(5):
            outcome = bipartite_search_select(ctps, detector, rng, lane)
            chosen.append(outcome.index)
        assert sorted(chosen) == [0, 1, 2, 3, 4]

    def test_sole_candidate_already_selected(self):
        ctps = CTPS.from_biases(np.array([1.0]))
        detector = StridedBitmap(1)
        detector.check_and_mark(0)
        with pytest.raises(RuntimeError):
            bipartite_search_select(ctps, detector, CounterRNG(0), 0)

    def test_iterations_counted(self):
        ctps = CTPS.from_biases(np.array([1.0, 1.0]))
        detector = StridedBitmap(2)
        outcome = bipartite_search_select(ctps, detector, CounterRNG(1), 0)
        assert outcome.iterations >= 1
        assert outcome.remaps == 0  # nothing selected yet -> no remapping


@pytest.mark.parametrize("strategy", ["repeated", "updated", "bipartite"])
class TestStrategiesAgainstReference:
    def test_selects_distinct_valid_candidates(self, strategy):
        biases = np.array([3.0, 6.0, 2.0, 2.0, 2.0])
        result = select_without_replacement(
            biases, 4, CounterRNG(3), 0, strategy=strategy, detector="linear"
        )
        assert len(set(result.indices.tolist())) == 4
        assert all(0 <= i < 5 for i in result.indices)
        assert result.iterations.shape == (4,)
        assert result.total_iterations >= 4

    def test_never_selects_zero_bias(self, strategy):
        biases = np.array([1.0, 0.0, 2.0, 0.0, 3.0])
        for trial in range(20):
            result = select_without_replacement(
                biases, 3, CounterRNG(trial), trial, strategy=strategy,
                detector="strided_bitmap",
            )
            assert 1 not in result.indices and 3 not in result.indices

    def test_distribution_of_first_pick_matches_theorem1(self, strategy):
        biases = np.array([1.0, 2.0, 3.0, 4.0])
        expected = biases / biases.sum()
        firsts = []
        for trial in range(4000):
            result = select_without_replacement(
                biases, 2, CounterRNG(trial), strategy=strategy, detector="linear"
            )
            firsts.append(result.indices[0])
        empirical = np.bincount(np.array(firsts), minlength=4) / len(firsts)
        assert total_variation_distance(empirical, expected) < 0.04

    def test_requesting_too_many_raises(self, strategy):
        with pytest.raises(ValueError):
            select_without_replacement(
                np.array([1.0, 0.0]), 2, CounterRNG(0), strategy=strategy
            )


class TestBipartiteMatchesUpdatedDistribution:
    def test_pairwise_distribution_equivalence(self):
        """The full 2-selection distribution of bipartite region search matches
        sequential weighted sampling without replacement."""
        biases = np.array([5.0, 3.0, 1.0, 1.0])
        trials = 6000
        ref_rng = np.random.default_rng(0)

        def pair_histogram(strategy):
            counts = {}
            for trial in range(trials):
                result = select_without_replacement(
                    biases, 2, CounterRNG(trial), 17, strategy=strategy, detector="linear"
                )
                key = tuple(result.indices.tolist())
                counts[key] = counts.get(key, 0) + 1
            return counts

        bipartite = pair_histogram("bipartite")
        reference = {}
        for _ in range(trials):
            picks = tuple(reference_select_without_replacement(biases, 2, ref_rng).tolist())
            reference[picks] = reference.get(picks, 0) + 1

        keys = sorted(set(bipartite) | set(reference))
        b = np.array([bipartite.get(k, 0) for k in keys], dtype=float) / trials
        r = np.array([reference.get(k, 0) for k in keys], dtype=float) / trials
        assert total_variation_distance(b, r) < 0.05

    def test_bipartite_needs_fewer_iterations_than_repeated_on_skew(self):
        """The paper's Fig. 11 effect: skewed biases make repeated sampling
        retry many times while bipartite region search does not."""
        biases = np.array([100.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        repeated_total, bipartite_total = 0, 0
        for trial in range(200):
            repeated = select_without_replacement(
                biases, 4, CounterRNG(trial), 1, strategy="repeated", detector="linear"
            )
            bipartite = select_without_replacement(
                biases, 4, CounterRNG(trial), 1, strategy="bipartite", detector="linear"
            )
            repeated_total += repeated.total_iterations
            bipartite_total += bipartite.total_iterations
        assert repeated_total > 2 * bipartite_total


class TestStrategyMechanics:
    def test_updated_strategy_pays_prefix_sum_rebuilds(self):
        biases = np.ones(32)
        cost_updated, cost_bipartite = CostModel(), CostModel()
        select_without_replacement(
            biases, 8, CounterRNG(0), strategy="updated", detector="linear",
            cost=cost_updated,
        )
        select_without_replacement(
            biases, 8, CounterRNG(0), strategy="bipartite", detector="linear",
            cost=cost_bipartite,
        )
        assert cost_updated.prefix_sum_steps > 3 * cost_bipartite.prefix_sum_steps

    def test_zero_count(self):
        result = select_without_replacement(np.ones(4), 0, CounterRNG(0))
        assert result.indices.size == 0
        assert result.mean_iterations == 0.0

    def test_negative_count(self):
        with pytest.raises(ValueError):
            select_without_replacement(np.ones(4), -1, CounterRNG(0))

    def test_strategy_coercion(self):
        assert CollisionStrategy.coerce("BIPARTITE") is CollisionStrategy.BIPARTITE
        assert CollisionStrategy.coerce(CollisionStrategy.UPDATED) is CollisionStrategy.UPDATED
        with pytest.raises(ValueError):
            CollisionStrategy.coerce("never_heard_of_it")

    def test_detector_instance_can_be_passed(self):
        detector = LinearSearchDetector(4)
        result = select_without_replacement(
            np.ones(4), 2, CounterRNG(5), strategy="repeated", detector=detector
        )
        assert all(detector.is_marked(int(i)) for i in result.indices)
