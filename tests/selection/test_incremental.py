"""Incremental per-vertex sampling-structure rebuilds: bit-compat with full builds."""

import numpy as np
import pytest

from repro.baselines.knightking import KnightKingEngine
from repro.graph import from_edge_list
from repro.graph.delta import DeltaGraph
from repro.gpusim.costmodel import CostModel
from repro.selection import (
    CTPS,
    VertexAliasCache,
    VertexITSCache,
    bind_caches,
    build_alias_table,
)


def make_graph(num_vertices=40, seed=7):
    rng = np.random.default_rng(seed)
    edges, weights = [], []
    for v in range(num_vertices):
        deg = int(rng.integers(0, 6))
        for dst in rng.integers(0, num_vertices, size=deg):
            edges.append((v, int(dst)))
            weights.append(float(rng.uniform(0.1, 3.0)))
    return from_edge_list(edges, num_vertices=num_vertices, weights=weights)


def assert_its_matches_fresh(cache, graph):
    for v in range(graph.num_vertices):
        weights = graph.neighbor_weights(v)
        if weights.size == 0 or not np.any(weights > 0):
            assert not cache.has(v)
            with pytest.raises(KeyError):
                cache.ctps(v)
        else:
            fresh = CTPS.from_biases(weights)
            assert np.array_equal(cache.ctps(v).boundaries, fresh.boundaries)
            assert cache.ctps(v).total_bias == fresh.total_bias


def assert_alias_matches_fresh(cache, graph):
    for v in range(graph.num_vertices):
        weights = graph.neighbor_weights(v)
        if weights.size == 0 or not np.any(weights > 0):
            assert not cache.has(v)
        else:
            fresh = build_alias_table(weights)
            assert np.array_equal(cache.table(v).prob, fresh.prob)
            assert np.array_equal(cache.table(v).alias, fresh.alias)


class TestFullBuild:
    def test_its_build_matches_fresh_ctps(self):
        graph = make_graph()
        cache = VertexITSCache.build(graph)
        assert_its_matches_fresh(cache, graph)
        assert cache.num_cached == cache.built_total

    def test_alias_build_matches_fresh_tables(self):
        graph = make_graph()
        cache = VertexAliasCache.build(graph)
        assert_alias_matches_fresh(cache, graph)

    def test_build_charges_cost(self):
        graph = make_graph()
        cost = CostModel()
        VertexITSCache.build(graph, cost)
        assert cost.prefix_sum_steps > 0


class TestIncrementalUpdate:
    def _mutate(self, graph):
        delta = DeltaGraph(graph)
        delta.add_edge(0, 5, 2.5)
        delta.add_edge(0, 7, 0.5)
        delta.add_edge(3, 1, 1.0)
        if delta.degree(1) > 0:
            delta.remove_edge(1, int(delta.neighbors(1)[0]))
        delta.retire_vertex(9)
        return delta

    def test_updated_cache_is_bit_identical_to_full_rebuild(self):
        graph = make_graph()
        its = VertexITSCache.build(graph)
        alias = VertexAliasCache.build(graph)
        delta = self._mutate(graph)
        touched = delta.compact()
        new_graph = delta.base
        rebuilt = its.update(new_graph, touched)
        alias.update(new_graph, touched)
        assert rebuilt <= touched.size
        assert its.last_update_size == touched.size
        assert_its_matches_fresh(its, new_graph)
        assert_alias_matches_fresh(alias, new_graph)

    def test_update_only_rebuilds_touched(self):
        graph = make_graph()
        cache = VertexITSCache.build(graph)
        before = cache.built_total
        untouched = [
            v for v in range(graph.num_vertices)
            if v not in (0,) and cache.has(v)
        ]
        keep = {v: cache.ctps(v) for v in untouched}
        delta = DeltaGraph(graph)
        delta.add_edge(0, 1, 1.0)
        touched = delta.compact()
        cache.update(delta.base, touched)
        assert cache.built_total - before <= touched.size
        for v, old in keep.items():
            assert cache.ctps(v) is old  # untouched structures are reused

    def test_update_rejects_out_of_range_touched(self):
        graph = make_graph()
        cache = VertexITSCache.build(graph)
        with pytest.raises(IndexError):
            cache.update(graph, np.array([graph.num_vertices]))

    def test_bind_patches_on_auto_compaction(self):
        graph = make_graph()
        its = VertexITSCache.build(graph)
        alias = VertexAliasCache.build(graph)
        delta = DeltaGraph(graph, compaction_budget=3)
        bind_caches(delta, its, alias)
        for i in range(6):
            delta.add_edge(i % 5, (i + 2) % 5, 1.0 + i)
        assert delta.version >= 1
        delta.compact()
        assert_its_matches_fresh(its, delta.base)
        assert_alias_matches_fresh(alias, delta.base)

    def test_vertex_losing_all_edges_drops_structure(self):
        graph = from_edge_list([(0, 1), (1, 0)], num_vertices=2,
                               weights=[1.0, 2.0])
        cache = VertexITSCache.build(graph)
        delta = DeltaGraph(graph)
        delta.remove_edge(0, 1)
        touched = delta.compact()
        cache.update(delta.base, touched)
        assert not cache.has(0)
        assert cache.has(1)


class TestKnightKingDynamic:
    def test_update_graph_matches_fresh_engine(self):
        graph = make_graph(num_vertices=25, seed=3)
        engine = KnightKingEngine(graph, biased=True, seed=11)
        delta = DeltaGraph(graph)
        delta.add_edge(2, 3, 4.0)
        delta.add_edge(4, 2, 0.25)
        touched = delta.compact()
        engine.update_graph(delta.base, touched)

        fresh = KnightKingEngine(delta.base, biased=True, seed=11)
        walks_a = engine.run_walks([0, 1, 2, 3], walk_length=8)
        walks_b = fresh.run_walks([0, 1, 2, 3], walk_length=8)
        for a, b in zip(walks_a.walks, walks_b.walks):
            assert np.array_equal(a, b)

    def test_update_graph_requires_weights_when_biased(self):
        graph = make_graph(num_vertices=10, seed=5)
        engine = KnightKingEngine(graph, biased=True)
        unweighted = from_edge_list([(0, 1), (1, 0)], num_vertices=10)
        with pytest.raises(ValueError):
            engine.update_graph(unweighted)
