"""Tests for the alias method and dartboard (rejection) sampling."""

import numpy as np
import pytest

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.metrics.stats import total_variation_distance
from repro.selection.alias import build_alias_table
from repro.selection.dartboard import dartboard_sample


class TestAliasTable:
    def test_probabilities_reconstructed(self):
        biases = np.array([3.0, 6.0, 2.0, 2.0, 2.0])
        table = build_alias_table(biases)
        assert np.allclose(table.probabilities(), biases / biases.sum(), atol=1e-12)

    def test_uniform_biases(self):
        table = build_alias_table(np.ones(7))
        assert np.allclose(table.prob, 1.0)
        assert np.allclose(table.probabilities(), 1 / 7)

    def test_single_candidate(self):
        table = build_alias_table(np.array([4.0]))
        assert table.sample(CounterRNG(0), 0) == 0

    def test_sampling_distribution(self):
        biases = np.array([8.0, 1.0, 1.0, 2.0])
        table = build_alias_table(biases)
        picks = table.sample_many(30000, CounterRNG(5), 0)
        empirical = np.bincount(picks, minlength=4) / 30000
        assert total_variation_distance(empirical, biases / biases.sum()) < 0.02

    def test_zero_bias_candidate_never_selected(self):
        biases = np.array([5.0, 0.0, 5.0])
        table = build_alias_table(biases)
        picks = table.sample_many(5000, CounterRNG(1), 0)
        assert 1 not in picks

    def test_sample_many_edge_cases(self):
        table = build_alias_table(np.array([1.0, 2.0]))
        assert table.sample_many(0, CounterRNG(0), 0).size == 0
        with pytest.raises(ValueError):
            table.sample_many(-1, CounterRNG(0), 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_alias_table(np.array([]))
        with pytest.raises(ValueError):
            build_alias_table(np.array([-1.0]))
        with pytest.raises(ValueError):
            build_alias_table(np.array([0.0, 0.0]))

    def test_construction_cost_is_linear_work(self):
        cost = CostModel()
        build_alias_table(np.ones(100), cost)
        assert cost.warp_steps >= 100  # O(n) sequential preprocessing


class TestDartboard:
    def test_selects_valid_index(self):
        index, trials = dartboard_sample(np.array([1.0, 2.0, 3.0]), CounterRNG(0), 0)
        assert 0 <= index < 3
        assert trials >= 1

    def test_distribution(self):
        biases = np.array([4.0, 1.0, 1.0])
        counts = np.zeros(3)
        rng = CounterRNG(2)
        for i in range(5000):
            idx, _ = dartboard_sample(biases, rng, i)
            counts[idx] += 1
        assert total_variation_distance(counts / counts.sum(), biases / biases.sum()) < 0.03

    def test_skewed_biases_need_more_trials(self):
        """The paper's motivation: rejection suffers on skewed distributions."""
        rng = CounterRNG(3)
        uniform_trials = sum(
            dartboard_sample(np.ones(16), rng, 0, i)[1] for i in range(300)
        )
        skewed = np.ones(16)
        skewed[0] = 200.0
        skewed_trials = sum(
            dartboard_sample(skewed, rng, 1, i)[1] for i in range(300)
        )
        assert skewed_trials > 2 * uniform_trials

    def test_zero_bias_never_selected(self):
        rng = CounterRNG(4)
        for i in range(200):
            idx, _ = dartboard_sample(np.array([0.0, 1.0]), rng, i)
            assert idx == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            dartboard_sample(np.array([]), CounterRNG(0))
        with pytest.raises(ValueError):
            dartboard_sample(np.array([0.0]), CounterRNG(0))
        with pytest.raises(ValueError):
            dartboard_sample(np.array([-1.0, 1.0]), CounterRNG(0))

    def test_cost_counts_trials(self):
        cost = CostModel()
        _, trials = dartboard_sample(np.array([1.0, 1.0]), CounterRNG(7), 0, cost=cost)
        assert cost.rng_draws == 2 * trials
        assert cost.selection_attempts == trials
