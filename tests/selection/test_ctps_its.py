"""Tests for the CTPS and inverse transform sampling (Theorem 1)."""

import numpy as np
import pytest

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.metrics.stats import chi_square_uniformity, total_variation_distance
from repro.selection.ctps import CTPS
from repro.selection.its import sample_one, sample_with_replacement


class TestCTPSConstruction:
    def test_paper_example(self):
        """The Fig. 1(b) example: biases {3, 6, 2, 2, 2} -> CTPS boundaries."""
        ctps = CTPS.from_biases(np.array([3.0, 6.0, 2.0, 2.0, 2.0]))
        assert np.allclose(ctps.boundaries, [0, 0.2, 0.6, 0.7333, 0.8667, 1.0], atol=1e-3)
        assert ctps.total_bias == pytest.approx(15.0)
        assert ctps.num_candidates == 5

    def test_probabilities_follow_theorem_1(self):
        biases = np.array([1.0, 4.0, 5.0])
        ctps = CTPS.from_biases(biases)
        assert np.allclose(ctps.probabilities(), biases / biases.sum())
        assert ctps.probability(1) == pytest.approx(0.4)

    def test_region_boundaries(self):
        ctps = CTPS.from_biases(np.array([3.0, 6.0, 2.0, 2.0, 2.0]))
        assert ctps.region(1) == (pytest.approx(0.2), pytest.approx(0.6))

    def test_single_candidate(self):
        ctps = CTPS.from_biases(np.array([7.0]))
        assert ctps.search(0.3) == 0
        assert ctps.probability(0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CTPS.from_biases(np.array([]))
        with pytest.raises(ValueError):
            CTPS.from_biases(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            CTPS.from_biases(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            CTPS.from_biases(np.array([np.nan, 1.0]))

    def test_cost_charged(self):
        cost = CostModel()
        CTPS.from_biases(np.ones(32), cost)
        assert cost.prefix_sum_steps > 0
        assert cost.global_bytes > 0


class TestCTPSSearch:
    def test_search_paper_example(self):
        """r = 0.5 falls in v7's region (the second candidate) in Fig. 1(b)."""
        ctps = CTPS.from_biases(np.array([3.0, 6.0, 2.0, 2.0, 2.0]))
        assert ctps.search(0.5) == 1
        assert ctps.search(0.0) == 0
        assert ctps.search(0.999) == 4

    def test_search_skips_zero_width_regions(self):
        ctps = CTPS.from_biases(np.array([1.0, 0.0, 1.0]))
        for r in np.linspace(0, 0.999, 50):
            assert ctps.search(float(r)) != 1

    def test_search_many_matches_scalar(self):
        ctps = CTPS.from_biases(np.array([3.0, 6.0, 2.0, 2.0, 2.0]))
        rs = np.linspace(0, 0.999, 97)
        vectorised = ctps.search_many(rs)
        scalar = np.array([ctps.search(float(r)) for r in rs])
        assert np.array_equal(vectorised, scalar)

    def test_search_range_validation(self):
        ctps = CTPS.from_biases(np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            ctps.search(1.0)
        with pytest.raises(ValueError):
            ctps.search(-0.1)
        with pytest.raises(ValueError):
            ctps.search_many(np.array([0.5, 1.0]))

    def test_search_charges_binary_search_and_bytes(self):
        cost = CostModel()
        ctps = CTPS.from_biases(np.ones(64))
        ctps.search(0.5, cost)
        assert cost.binary_search_steps == int(np.ceil(np.log2(65)))
        assert cost.global_bytes >= cost.binary_search_steps * 8


class TestCTPSExclude:
    def test_exclude_matches_paper_update_example(self):
        """Fig. 6(b): excluding v7 gives the updated CTPS {0, .33, .56, .78, 1}."""
        ctps = CTPS.from_biases(np.array([3.0, 6.0, 2.0, 2.0, 2.0]))
        updated = ctps.exclude(np.array([1]))
        expected = np.array([0, 3, 3, 5, 7, 9]) / 9.0
        assert np.allclose(updated.boundaries, expected, atol=1e-9)
        # r = 0.58 now selects the third original candidate (v10 in the paper
        # counts candidates 1-based; index 3 is the fourth vertex v10).
        assert updated.search(0.58) == 3

    def test_exclude_never_selects_excluded(self):
        ctps = CTPS.from_biases(np.array([5.0, 1.0, 1.0, 1.0]))
        updated = ctps.exclude(np.array([0, 2]))
        selections = updated.search_many(np.linspace(0, 0.999, 200))
        assert 0 not in selections and 2 not in selections

    def test_exclude_charges_rebuild(self):
        cost = CostModel()
        ctps = CTPS.from_biases(np.ones(32))
        before = cost.prefix_sum_steps
        ctps.exclude(np.array([0]), cost)
        assert cost.prefix_sum_steps > before


class TestInverseTransformSampling:
    def test_sample_one_in_range(self):
        rng = CounterRNG(0)
        for i in range(20):
            idx = sample_one(np.array([1.0, 2.0, 3.0]), rng, i)
            assert 0 <= idx < 3

    def test_sample_with_replacement_distribution(self):
        rng = CounterRNG(1)
        biases = np.array([1.0, 2.0, 3.0, 4.0])
        picks = sample_with_replacement(biases, 20000, rng, 0)
        _, p_value = chi_square_uniformity(picks, biases / biases.sum())
        assert p_value > 0.001

    def test_zero_bias_never_selected(self):
        rng = CounterRNG(2)
        picks = sample_with_replacement(np.array([1.0, 0.0, 3.0]), 5000, rng, 0)
        assert 1 not in picks

    def test_empirical_matches_theorem_one(self):
        rng = CounterRNG(3)
        biases = np.array([10.0, 1.0, 1.0, 5.0, 3.0])
        picks = sample_with_replacement(biases, 30000, rng, 9)
        empirical = np.bincount(picks, minlength=5) / 30000
        assert total_variation_distance(empirical, biases / biases.sum()) < 0.02

    def test_zero_count(self):
        assert sample_with_replacement(np.array([1.0]), 0, CounterRNG(0), 0).size == 0

    def test_negative_count(self):
        with pytest.raises(ValueError):
            sample_with_replacement(np.array([1.0]), -1, CounterRNG(0), 0)
