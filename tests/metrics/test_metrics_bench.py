"""Tests for the metrics helpers and the benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentTable, format_table, write_csv
from repro.bench.workloads import DEFAULT_SCALE, SMALL_SCALE, get_graph
from repro.metrics.seps import million_seps, seps, speedup
from repro.metrics.stats import (
    chi_square_uniformity,
    empirical_distribution,
    kernel_time_std,
    mean_iterations,
    search_reduction_ratio,
    total_variation_distance,
)
from repro.metrics.timing import Timer, host_time


class TestSEPS:
    def test_basic(self):
        assert seps(1000, 2.0) == 500.0
        assert million_seps(2_000_000, 1.0) == 2.0

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 2.0) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            seps(-1, 1.0)
        with pytest.raises(ValueError):
            seps(10, 0.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestStats:
    def test_empirical_distribution(self):
        dist = empirical_distribution(np.array([0, 0, 1, 2]), 4)
        assert np.allclose(dist, [0.5, 0.25, 0.25, 0.0])
        with pytest.raises(ValueError):
            empirical_distribution(np.array([5]), 3)

    def test_chi_square_accepts_matching_distribution(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.1, 0.2, 0.3, 0.4])
        selections = rng.choice(4, size=20000, p=probs)
        _, p_value = chi_square_uniformity(selections, probs)
        assert p_value > 0.001

    def test_chi_square_rejects_mismatched_distribution(self):
        selections = np.zeros(1000, dtype=np.int64)
        _, p_value = chi_square_uniformity(selections, np.array([0.5, 0.5]))
        assert p_value < 1e-6

    def test_chi_square_zero_prob_violation(self):
        stat, p = chi_square_uniformity(np.array([0, 1]), np.array([0.0, 1.0]))
        assert stat == float("inf") and p == 0.0

    def test_total_variation(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0
        assert total_variation_distance(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == 0.0
        with pytest.raises(ValueError):
            total_variation_distance(np.ones(2), np.ones(3))

    def test_mean_iterations(self):
        assert mean_iterations([1, 2, 3]) == 2.0
        assert mean_iterations([]) == 0.0

    def test_search_reduction_ratio(self):
        assert search_reduction_ratio(30, 100) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            search_reduction_ratio(1, 0)

    def test_kernel_time_std(self):
        assert kernel_time_std([1.0, 1.0, 1.0]) == pytest.approx(0.0)
        assert kernel_time_std([1.0, 3.0]) > 0
        assert kernel_time_std([]) == 0.0
        assert kernel_time_std([1.0, 3.0], normalize=False) == pytest.approx(1.0)


class TestTiming:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer.measure("phase"):
            sum(range(1000))
        with timer.measure("phase"):
            sum(range(1000))
        assert timer.total("phase") > 0
        assert timer.mean("phase") > 0
        assert timer.counts["phase"] == 2
        assert "phase" in timer.as_dict()

    def test_host_time(self):
        with host_time() as t:
            sum(range(1000))
        assert t["seconds"] > 0


class TestHarness:
    def test_format_table_aligns_columns(self):
        rows = [{"graph": "AM", "seps": 12.5}, {"graph": "LJ", "seps": 3.25}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "graph" in text
        assert len(text.splitlines()) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_write_csv(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(rows, tmp_path / "out" / "table.csv")
        content = path.read_text(encoding="utf-8").splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

    def test_experiment_table_roundtrip(self, tmp_path):
        table = ExperimentTable("fig_test")
        table.add(graph="AM", value=1.0)
        table.extend([{"graph": "LJ", "value": 2.0}])
        assert table.column("graph") == ["AM", "LJ"]
        saved = table.save(tmp_path)
        assert saved.exists()
        assert "fig_test" in table.render()


class TestWorkloads:
    def test_scales_are_consistent(self):
        assert set(SMALL_SCALE.in_memory_graphs) <= set(SMALL_SCALE.all_graphs)
        assert set(DEFAULT_SCALE.in_memory_graphs) <= set(DEFAULT_SCALE.all_graphs)
        assert min(DEFAULT_SCALE.gpu_counts) == 1

    def test_get_graph_cached(self):
        a = get_graph("AM", scale=SMALL_SCALE)
        b = get_graph("AM", scale=SMALL_SCALE)
        assert a is b
        weighted = get_graph("AM", weighted=True, scale=SMALL_SCALE)
        assert weighted is not a and weighted.is_weighted
