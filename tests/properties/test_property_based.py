"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.api.select import warp_select
from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.gpusim.scan import kogge_stone_inclusive, warp_prefix_sum
from repro.gpusim.warp import WarpExecutor
from repro.graph.builder import from_edge_list
from repro.graph.partition import partition_graph
from repro.graph.properties import gini_coefficient
from repro.selection.alias import build_alias_table
from repro.selection.bipartite import bipartite_remap
from repro.selection.bitmap import ContiguousBitmap, StridedBitmap
from repro.selection.collision import select_without_replacement
from repro.selection.ctps import CTPS
from repro.selection.dartboard import dartboard_sample
from repro.selection.segmented import (
    SegmentedCTPS,
    segmented_alias_sample_many,
    segmented_dartboard_sample,
    segmented_kogge_stone_inclusive,
    segmented_warp_select,
)


positive_biases = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=0, max_size=120
)


class TestCTPSProperties:
    @given(positive_biases)
    @settings(max_examples=60, deadline=None)
    def test_boundaries_monotone_and_normalised(self, biases):
        ctps = CTPS.from_biases(np.array(biases))
        assert ctps.boundaries[0] == 0.0
        assert ctps.boundaries[-1] == 1.0
        assert np.all(np.diff(ctps.boundaries) >= -1e-12)
        assert np.isclose(ctps.probabilities().sum(), 1.0)

    @given(positive_biases, st.floats(min_value=0.0, max_value=0.999999))
    @settings(max_examples=60, deadline=None)
    def test_search_returns_region_containing_r(self, biases, r):
        ctps = CTPS.from_biases(np.array(biases))
        index = ctps.search(r)
        lo, hi = ctps.region(index)
        assert lo <= r < hi or np.isclose(hi, r, atol=1e-12)

    @given(positive_biases)
    @settings(max_examples=40, deadline=None)
    def test_probabilities_proportional_to_biases(self, biases):
        biases = np.array(biases)
        ctps = CTPS.from_biases(biases)
        expected = biases / biases.sum()
        assert np.allclose(ctps.probabilities(), expected, atol=1e-9)


class TestScanProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_kogge_stone_equals_cumsum(self, values):
        values = np.array(values)
        assert np.allclose(kogge_stone_inclusive(values), np.cumsum(values), rtol=1e-9)

    @given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_warp_prefix_sum_starts_at_zero_ends_at_total(self, values):
        values = np.array(values)
        out = warp_prefix_sum(values)
        assert out[0] == 0.0
        assert np.isclose(out[-1], values.sum())
        assert out.size == values.size + 1


class TestSelectionProperties:
    @given(positive_biases, st.integers(min_value=1, max_value=8), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_without_replacement_indices_distinct_and_valid(self, biases, count, seed):
        biases = np.array(biases)
        count = min(count, biases.size)
        result = select_without_replacement(
            biases, count, CounterRNG(seed), strategy="bipartite", detector="strided_bitmap"
        )
        assert result.indices.size == count
        assert len(set(result.indices.tolist())) == count
        assert result.indices.min() >= 0 and result.indices.max() < biases.size

    @given(positive_biases)
    @settings(max_examples=40, deadline=None)
    def test_alias_table_reconstructs_distribution(self, biases):
        biases = np.array(biases)
        table = build_alias_table(biases)
        assert np.allclose(table.probabilities(), biases / biases.sum(), atol=1e-9)

    @given(
        st.floats(min_value=0.0, max_value=0.999999),
        st.floats(min_value=0.0, max_value=0.98),
        st.floats(min_value=0.001, max_value=0.9),
    )
    @settings(max_examples=100, deadline=None)
    def test_bipartite_remap_avoids_selected_region(self, r_prime, lo, width):
        hi = min(lo + width, 0.999)
        if hi <= lo:
            return
        remapped = bipartite_remap(r_prime, (lo, hi))
        assert 0.0 <= remapped <= 1.0 + 1e-12
        # The remapped draw never lands strictly inside the excluded region.
        assert not (lo < remapped < hi) or np.isclose(remapped, lo) or np.isclose(remapped, hi)


class TestBitmapProperties:
    @given(st.integers(1, 300), st.data())
    @settings(max_examples=50, deadline=None)
    def test_bitmaps_agree_with_set_semantics(self, num_candidates, data):
        marks = data.draw(
            st.lists(st.integers(0, num_candidates - 1), min_size=0, max_size=50)
        )
        contiguous = ContiguousBitmap(num_candidates)
        strided = StridedBitmap(num_candidates)
        seen = set()
        for candidate in marks:
            expected = candidate in seen
            assert contiguous.check_and_mark(candidate) is expected
            assert strided.check_and_mark(candidate) is expected
            seen.add(candidate)
        for candidate in range(num_candidates):
            assert contiguous.is_marked(candidate) == (candidate in seen)
            assert strided.is_marked(candidate) == (candidate in seen)


class TestGraphProperties:
    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_csr_roundtrip_preserves_edges(self, edges):
        graph = from_edge_list(edges, num_vertices=31)
        assert graph.num_edges == len(edges)
        rebuilt = sorted(map(tuple, graph.edge_array().tolist()))
        assert rebuilt == sorted((int(a), int(b)) for a, b in edges)
        assert int(graph.degrees.sum()) == graph.num_edges

    @given(edge_lists, st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_all_edges_exactly_once(self, edges, parts):
        graph = from_edge_list(edges, num_vertices=31)
        partition = partition_graph(graph, min(parts, graph.num_vertices))
        assert sum(p.num_edges for p in partition) == graph.num_edges
        owners = partition.partition_of_many(np.arange(graph.num_vertices))
        for p in partition:
            assert np.all(owners[p.lo:p.hi] == p.index)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_gini_in_unit_interval(self, values):
        g = gini_coefficient(np.array(values))
        assert -1e-9 <= g < 1.0


# Zero biases are allowed; positive biases stay well away from the denormal
# range where a candidate's CTPS region rounds to zero width (there both the
# scalar and the segmented selectors raise the same RuntimeError).
segment_pools = st.lists(
    st.lists(
        st.one_of(
            st.just(0.0),
            st.floats(min_value=0.01, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=24,
    ).filter(lambda seg: any(b > 0 for b in seg)),
    min_size=1,
    max_size=12,
)


def _flatten_pools(pools):
    lengths = np.array([len(p) for p in pools], dtype=np.int64)
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    biases = np.concatenate([np.asarray(p, dtype=np.float64) for p in pools])
    return biases, offsets, lengths


class TestSegmentedSelectionProperties:
    """The engine's segmented kernels must equal per-segment scalar calls."""

    @given(segment_pools)
    @settings(max_examples=50, deadline=None)
    def test_segmented_scan_equals_per_segment_scan(self, pools):
        biases, offsets, _ = _flatten_pools(pools)
        c_seg, c_ref = CostModel(), CostModel()
        got = segmented_kogge_stone_inclusive(biases, offsets, c_seg)
        ref = np.concatenate(
            [kogge_stone_inclusive(np.asarray(p, dtype=np.float64), c_ref)
             for p in pools]
        )
        assert np.array_equal(got, ref)
        assert c_seg.as_dict() == c_ref.as_dict()

    @given(segment_pools)
    @settings(max_examples=40, deadline=None)
    def test_segmented_ctps_boundaries_bitwise_equal(self, pools):
        biases, offsets, _ = _flatten_pools(pools)
        ctps = SegmentedCTPS.from_biases(biases, offsets)
        for k, pool in enumerate(pools):
            ref = CTPS.from_biases(np.asarray(pool, dtype=np.float64))
            assert np.array_equal(ctps.segment_boundaries(k), ref.boundaries)

    @given(segment_pools, st.integers(0, 2**20), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_segmented_its_matches_scalar_warp_select(self, pools, seed, with_repl):
        """Segmented ITS == per-segment warp_select for identical coordinates."""
        biases, offsets, lengths = _flatten_pools(pools)
        rng = CounterRNG(seed)
        positives = np.array(
            [int(np.count_nonzero(np.asarray(p) > 0)) for p in pools], dtype=np.int64
        )
        counts = np.minimum(3, positives) if not with_repl else np.minimum(3, lengths)
        insts = np.arange(len(pools), dtype=np.int64)
        depths = np.full(len(pools), 2, dtype=np.int64)
        slots = insts + 5
        warps = insts + 100
        c_seg, c_ref = CostModel(), CostModel()
        result = segmented_warp_select(
            biases, offsets, counts, rng, [insts, depths, slots, warps],
            with_replacement=with_repl, cost=c_seg,
        )
        for k, pool in enumerate(pools):
            warp = WarpExecutor(warp_id=int(warps[k]), cost=c_ref, rng=rng)
            ref = warp_select(
                np.asarray(pool, dtype=np.float64), int(counts[k]), warp,
                int(insts[k]), int(depths[k]), int(slots[k]),
                with_replacement=with_repl,
            )
            idx, iters = result.segment(k)
            assert np.array_equal(idx, ref.indices)
            assert np.array_equal(iters, ref.iterations)
            if not with_repl:
                assert int(result.probes[k]) == ref.probes
                assert int(result.collisions[k]) == ref.collisions
        assert c_seg.as_dict() == c_ref.as_dict()

    @given(segment_pools, st.integers(0, 2**20),
           st.sampled_from(["bipartite", "repeated", "updated"]),
           st.sampled_from(["strided_bitmap", "bitmap", "linear"]))
    @settings(max_examples=30, deadline=None)
    def test_segmented_strategies_match_scalar(self, pools, seed, strategy, detector):
        biases, offsets, _ = _flatten_pools(pools)
        rng = CounterRNG(seed)
        positives = np.array(
            [int(np.count_nonzero(np.asarray(p) > 0)) for p in pools], dtype=np.int64
        )
        counts = np.minimum(2, positives)
        insts = np.arange(len(pools), dtype=np.int64)
        depths = np.zeros(len(pools), dtype=np.int64)
        slots = insts
        warps = insts + 7
        c_seg, c_ref = CostModel(), CostModel()
        result = segmented_warp_select(
            biases, offsets, counts, rng, [insts, depths, slots, warps],
            with_replacement=False, strategy=strategy, detector=detector, cost=c_seg,
        )
        for k, pool in enumerate(pools):
            warp = WarpExecutor(warp_id=int(warps[k]), cost=c_ref, rng=rng)
            ref = warp_select(
                np.asarray(pool, dtype=np.float64), int(counts[k]), warp,
                int(insts[k]), int(depths[k]), int(slots[k]),
                with_replacement=False, strategy=strategy, detector=detector,
            )
            idx, iters = result.segment(k)
            assert np.array_equal(idx, ref.indices)
            assert np.array_equal(iters, ref.iterations)
        assert c_seg.as_dict() == c_ref.as_dict()

    @given(segment_pools, st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_segmented_alias_matches_scalar_sample_many(self, pools, seed):
        biases, offsets, lengths = _flatten_pools(pools)
        rng = CounterRNG(seed)
        counts = np.minimum(4, lengths)
        insts = np.arange(len(pools), dtype=np.int64)
        depths = insts + 3
        prob = np.concatenate(
            [build_alias_table(np.asarray(p, dtype=np.float64)).prob for p in pools]
        )
        alias = np.concatenate(
            [build_alias_table(np.asarray(p, dtype=np.float64)).alias for p in pools]
        )
        c_seg, c_ref = CostModel(), CostModel()
        result = segmented_alias_sample_many(
            prob, alias, offsets, counts, rng, [insts, depths], c_seg
        )
        for k, pool in enumerate(pools):
            table = build_alias_table(np.asarray(pool, dtype=np.float64))
            ref = table.sample_many(
                int(counts[k]), rng, int(insts[k]), int(depths[k]), cost=c_ref
            )
            idx, _ = result.segment(k)
            assert np.array_equal(idx, ref)
        assert c_seg.as_dict() == c_ref.as_dict()

    @given(segment_pools, st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_segmented_dartboard_matches_scalar(self, pools, seed):
        biases, offsets, _ = _flatten_pools(pools)
        rng = CounterRNG(seed)
        insts = np.arange(len(pools), dtype=np.int64)
        depths = insts + 1
        c_seg, c_ref = CostModel(), CostModel()
        indices, trials = segmented_dartboard_sample(
            biases, offsets, rng, [insts, depths], c_seg
        )
        for k, pool in enumerate(pools):
            ref_idx, ref_trials = dartboard_sample(
                np.asarray(pool, dtype=np.float64), rng,
                int(insts[k]), int(depths[k]), cost=c_ref,
            )
            assert int(indices[k]) == ref_idx
            assert int(trials[k]) == ref_trials
        assert c_seg.as_dict() == c_ref.as_dict()


class TestRNGProperties:
    @given(st.integers(0, 2**32), st.integers(0, 2**20), st.integers(0, 2**20))
    @settings(max_examples=80, deadline=None)
    def test_uniform_in_range_and_deterministic(self, seed, a, b):
        rng = CounterRNG(seed)
        x = rng.uniform(a, b)
        assert 0.0 <= x < 1.0
        assert x == CounterRNG(seed).uniform(a, b)

    @given(st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_cost_model_merge_is_additive(self, n):
        a, b = CostModel(), CostModel()
        a.rng_draws = n
        b.rng_draws = 2 * n
        a.merge(b)
        assert a.rng_draws == 3 * n
