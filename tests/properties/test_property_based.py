"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.gpusim.scan import kogge_stone_inclusive, warp_prefix_sum
from repro.graph.builder import from_edge_list
from repro.graph.partition import partition_graph
from repro.graph.properties import gini_coefficient
from repro.selection.alias import build_alias_table
from repro.selection.bipartite import bipartite_remap
from repro.selection.bitmap import ContiguousBitmap, StridedBitmap
from repro.selection.collision import select_without_replacement
from repro.selection.ctps import CTPS


positive_biases = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=0, max_size=120
)


class TestCTPSProperties:
    @given(positive_biases)
    @settings(max_examples=60, deadline=None)
    def test_boundaries_monotone_and_normalised(self, biases):
        ctps = CTPS.from_biases(np.array(biases))
        assert ctps.boundaries[0] == 0.0
        assert ctps.boundaries[-1] == 1.0
        assert np.all(np.diff(ctps.boundaries) >= -1e-12)
        assert np.isclose(ctps.probabilities().sum(), 1.0)

    @given(positive_biases, st.floats(min_value=0.0, max_value=0.999999))
    @settings(max_examples=60, deadline=None)
    def test_search_returns_region_containing_r(self, biases, r):
        ctps = CTPS.from_biases(np.array(biases))
        index = ctps.search(r)
        lo, hi = ctps.region(index)
        assert lo <= r < hi or np.isclose(hi, r, atol=1e-12)

    @given(positive_biases)
    @settings(max_examples=40, deadline=None)
    def test_probabilities_proportional_to_biases(self, biases):
        biases = np.array(biases)
        ctps = CTPS.from_biases(biases)
        expected = biases / biases.sum()
        assert np.allclose(ctps.probabilities(), expected, atol=1e-9)


class TestScanProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_kogge_stone_equals_cumsum(self, values):
        values = np.array(values)
        assert np.allclose(kogge_stone_inclusive(values), np.cumsum(values), rtol=1e-9)

    @given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_warp_prefix_sum_starts_at_zero_ends_at_total(self, values):
        values = np.array(values)
        out = warp_prefix_sum(values)
        assert out[0] == 0.0
        assert np.isclose(out[-1], values.sum())
        assert out.size == values.size + 1


class TestSelectionProperties:
    @given(positive_biases, st.integers(min_value=1, max_value=8), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_without_replacement_indices_distinct_and_valid(self, biases, count, seed):
        biases = np.array(biases)
        count = min(count, biases.size)
        result = select_without_replacement(
            biases, count, CounterRNG(seed), strategy="bipartite", detector="strided_bitmap"
        )
        assert result.indices.size == count
        assert len(set(result.indices.tolist())) == count
        assert result.indices.min() >= 0 and result.indices.max() < biases.size

    @given(positive_biases)
    @settings(max_examples=40, deadline=None)
    def test_alias_table_reconstructs_distribution(self, biases):
        biases = np.array(biases)
        table = build_alias_table(biases)
        assert np.allclose(table.probabilities(), biases / biases.sum(), atol=1e-9)

    @given(
        st.floats(min_value=0.0, max_value=0.999999),
        st.floats(min_value=0.0, max_value=0.98),
        st.floats(min_value=0.001, max_value=0.9),
    )
    @settings(max_examples=100, deadline=None)
    def test_bipartite_remap_avoids_selected_region(self, r_prime, lo, width):
        hi = min(lo + width, 0.999)
        if hi <= lo:
            return
        remapped = bipartite_remap(r_prime, (lo, hi))
        assert 0.0 <= remapped <= 1.0 + 1e-12
        # The remapped draw never lands strictly inside the excluded region.
        assert not (lo < remapped < hi) or np.isclose(remapped, lo) or np.isclose(remapped, hi)


class TestBitmapProperties:
    @given(st.integers(1, 300), st.data())
    @settings(max_examples=50, deadline=None)
    def test_bitmaps_agree_with_set_semantics(self, num_candidates, data):
        marks = data.draw(
            st.lists(st.integers(0, num_candidates - 1), min_size=0, max_size=50)
        )
        contiguous = ContiguousBitmap(num_candidates)
        strided = StridedBitmap(num_candidates)
        seen = set()
        for candidate in marks:
            expected = candidate in seen
            assert contiguous.check_and_mark(candidate) is expected
            assert strided.check_and_mark(candidate) is expected
            seen.add(candidate)
        for candidate in range(num_candidates):
            assert contiguous.is_marked(candidate) == (candidate in seen)
            assert strided.is_marked(candidate) == (candidate in seen)


class TestGraphProperties:
    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_csr_roundtrip_preserves_edges(self, edges):
        graph = from_edge_list(edges, num_vertices=31)
        assert graph.num_edges == len(edges)
        rebuilt = sorted(map(tuple, graph.edge_array().tolist()))
        assert rebuilt == sorted((int(a), int(b)) for a, b in edges)
        assert int(graph.degrees.sum()) == graph.num_edges

    @given(edge_lists, st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_all_edges_exactly_once(self, edges, parts):
        graph = from_edge_list(edges, num_vertices=31)
        partition = partition_graph(graph, min(parts, graph.num_vertices))
        assert sum(p.num_edges for p in partition) == graph.num_edges
        owners = partition.partition_of_many(np.arange(graph.num_vertices))
        for p in partition:
            assert np.all(owners[p.lo:p.hi] == p.index)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_gini_in_unit_interval(self, values):
        g = gini_coefficient(np.array(values))
        assert -1e-9 <= g < 1.0


class TestRNGProperties:
    @given(st.integers(0, 2**32), st.integers(0, 2**20), st.integers(0, 2**20))
    @settings(max_examples=80, deadline=None)
    def test_uniform_in_range_and_deterministic(self, seed, a, b):
        rng = CounterRNG(seed)
        x = rng.uniform(a, b)
        assert 0.0 <= x < 1.0
        assert x == CounterRNG(seed).uniform(a, b)

    @given(st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_cost_model_merge_is_additive(self, n):
        a, b = CostModel(), CostModel()
        a.rng_draws = n
        b.rng_draws = 2 * n
        a.merge(b)
        assert a.rng_draws == 3 * n
