"""Tests for out-of-memory scheduling, batching, balancing and multi-GPU division."""

import numpy as np
import pytest

from repro.algorithms import BiasedNeighborSampling, SimpleRandomWalk, UnbiasedNeighborSampling
from repro.api.config import SamplingConfig
from repro.api.sampler import sample_graph
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device, V100_SPEC
from repro.gpusim.memory import TransferEngine
from repro.graph.partition import partition_graph
from repro.oom.balancing import block_fractions
from repro.oom.batching import group_entries_by_instance, single_batch
from repro.oom.multigpu import run_multi_gpu_sampling, run_multi_gpu_walks
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler
from repro.oom.transfer import PartitionResidency


class TestPartitionResidency:
    def make(self, graph, max_resident=2):
        parts = partition_graph(graph, 4)
        return parts, PartitionResidency(parts, max_resident, TransferEngine(1e9))

    def test_transfer_once_until_evicted(self, small_powerlaw_graph):
        _, residency = self.make(small_powerlaw_graph)
        cost = CostModel()
        first = residency.ensure_resident(0, cost)
        again = residency.ensure_resident(0, cost)
        assert first > 0 and again == 0.0
        assert residency.transfer_count == 1
        assert cost.partition_transfers == 1

    def test_lru_eviction(self, small_powerlaw_graph):
        _, residency = self.make(small_powerlaw_graph, max_resident=2)
        residency.ensure_resident(0)
        residency.ensure_resident(1)
        residency.ensure_resident(2)  # evicts 0
        assert not residency.is_resident(0)
        assert residency.is_resident(1) and residency.is_resident(2)
        # Re-loading 0 counts as a new transfer.
        residency.ensure_resident(0)
        assert residency.transfer_count == 4

    def test_protected_partitions_not_evicted(self, small_powerlaw_graph):
        _, residency = self.make(small_powerlaw_graph, max_resident=2)
        residency.ensure_resident(0)
        residency.ensure_resident(1)
        residency.ensure_resident(2, protect={1})
        assert residency.is_resident(1)
        assert not residency.is_resident(0)

    def test_all_protected_raises(self, small_powerlaw_graph):
        _, residency = self.make(small_powerlaw_graph, max_resident=1)
        residency.ensure_resident(0)
        with pytest.raises(RuntimeError):
            residency.ensure_resident(1, protect={0, 1})

    def test_release(self, small_powerlaw_graph):
        _, residency = self.make(small_powerlaw_graph)
        residency.ensure_resident(3)
        residency.release(3)
        assert not residency.is_resident(3)

    def test_out_of_range(self, small_powerlaw_graph):
        _, residency = self.make(small_powerlaw_graph)
        with pytest.raises(IndexError):
            residency.ensure_resident(9)


class TestBatchingHelpers:
    def test_group_by_instance(self):
        vertices = np.array([1, 2, 3, 4])
        instances = np.array([0, 1, 0, 1])
        depths = np.array([0, 0, 1, 1])
        groups = group_entries_by_instance(vertices, instances, depths)
        assert len(groups) == 2
        assert list(groups[0][0]) == [1, 3]
        assert list(groups[1][0]) == [2, 4]

    def test_single_batch(self):
        groups = single_batch(np.array([1, 2]), np.array([0, 1]), np.array([0, 0]))
        assert len(groups) == 1
        assert groups[0][0].size == 2
        assert single_batch(np.array([]), np.array([]), np.array([])) == []

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            group_entries_by_instance(np.array([1]), np.array([1, 2]), np.array([1]))


class TestBlockFractions:
    def test_unbalanced_equal_shares(self):
        fractions = block_fractions([10, 1, 1], balanced=False)
        assert np.allclose(fractions, 1 / 3)

    def test_balanced_proportional(self):
        fractions = block_fractions([30, 10], balanced=True)
        assert fractions[0] == pytest.approx(0.75)
        assert fractions.sum() == pytest.approx(1.0)

    def test_floor_protects_tiny_workloads(self):
        fractions = block_fractions([1000, 1], balanced=True, floor=0.1)
        assert fractions[1] >= 0.09

    def test_validation(self):
        with pytest.raises(ValueError):
            block_fractions([], balanced=True)
        with pytest.raises(ValueError):
            block_fractions([-1, 2], balanced=True)


class TestOutOfMemorySampler:
    def run_config(self, graph, oom_config, instances=40, depth=2):
        program = UnbiasedNeighborSampling()
        config = program.default_config(depth=depth, neighbor_size=2, seed=3)
        sampler = OutOfMemorySampler(graph, program, config, oom_config,
                                     device=Device(V100_SPEC.scaled(concurrent_warps=128)))
        return sampler.run(list(range(instances)))

    def test_produces_valid_samples(self, small_powerlaw_graph):
        result = self.run_config(small_powerlaw_graph, OutOfMemoryConfig.batched_only())
        assert result.total_sampled_edges > 0
        for sample in result.sample.samples:
            for src, dst in sample.edges:
                assert small_powerlaw_graph.has_edge(int(src), int(dst))
        assert result.makespan > 0
        assert result.partition_transfers >= 1
        assert result.rounds >= 1

    def test_matches_in_memory_edge_volume(self, small_powerlaw_graph):
        """Out-of-memory scheduling changes the order, not the amount, of sampling."""
        program = UnbiasedNeighborSampling()
        config = program.default_config(depth=2, neighbor_size=2, seed=3)
        in_memory = sample_graph(small_powerlaw_graph, program, seeds=list(range(40)),
                                 config=config)
        oom = self.run_config(small_powerlaw_graph, OutOfMemoryConfig.fully_optimized())
        ratio = oom.total_sampled_edges / max(in_memory.total_sampled_edges, 1)
        assert 0.6 < ratio < 1.4

    def test_all_optimisation_configs_run(self, small_powerlaw_graph):
        makespans = {}
        for name, factory in [
            ("baseline", OutOfMemoryConfig.baseline),
            ("BA", OutOfMemoryConfig.batched_only),
            ("BA+WS", OutOfMemoryConfig.batched_scheduled),
            ("BA+WS+BAL", OutOfMemoryConfig.fully_optimized),
        ]:
            result = self.run_config(small_powerlaw_graph, factory())
            makespans[name] = result.makespan
        assert makespans["BA"] < makespans["baseline"]
        assert makespans["BA+WS"] <= makespans["BA"] * 1.05

    def test_workload_aware_never_more_transfers(self, small_powerlaw_graph):
        ba = self.run_config(small_powerlaw_graph, OutOfMemoryConfig.batched_only(), depth=3)
        ws = self.run_config(small_powerlaw_graph, OutOfMemoryConfig.batched_scheduled(), depth=3)
        assert ws.partition_transfers <= ba.partition_transfers

    def test_random_walk_program_supported(self, small_powerlaw_graph):
        program = SimpleRandomWalk()
        config = program.default_config(depth=4, seed=1)
        sampler = OutOfMemorySampler(small_powerlaw_graph, program, config,
                                     OutOfMemoryConfig.fully_optimized())
        result = sampler.run(list(range(20)))
        assert result.total_sampled_edges > 0
        # A walk samples at most `depth` edges per instance.
        assert result.total_sampled_edges <= 20 * 4

    def test_invalid_seeds(self, small_powerlaw_graph):
        program = BiasedNeighborSampling()
        config = program.default_config(seed=0)
        sampler = OutOfMemorySampler(small_powerlaw_graph, program, config)
        with pytest.raises(ValueError):
            sampler.run([10**6])

    def test_invalid_oom_config(self):
        with pytest.raises(ValueError):
            OutOfMemoryConfig(num_partitions=0)
        with pytest.raises(ValueError):
            OutOfMemoryConfig(num_kernels=0)

    def test_metrics_accessible(self, small_powerlaw_graph):
        result = self.run_config(small_powerlaw_graph, OutOfMemoryConfig.fully_optimized())
        assert result.seps() > 0
        assert result.kernel_time_std() >= 0.0
        assert result.stream_imbalance() >= 0.0
        assert len(result.stream_busy_times) == 2


class TestMultiGPU:
    def test_walks_split_across_gpus(self, small_powerlaw_graph):
        single = run_multi_gpu_walks(small_powerlaw_graph, np.arange(50), num_walkers=200,
                                     walk_length=10, num_gpus=1, seed=2)
        multi = run_multi_gpu_walks(small_powerlaw_graph, np.arange(50), num_walkers=200,
                                    walk_length=10, num_gpus=4, seed=2)
        assert multi.num_gpus == 4
        # Same total amount of work gets done.
        assert abs(multi.total_sampled_edges - single.total_sampled_edges) < 0.2 * single.total_sampled_edges
        assert multi.makespan() <= single.makespan() * 1.05
        assert multi.speedup_over(single) >= 0.95

    def test_sampling_split_across_gpus(self, small_powerlaw_graph):
        program = BiasedNeighborSampling()
        config = program.default_config(depth=2, neighbor_size=2, seed=0)
        result = run_multi_gpu_sampling(small_powerlaw_graph, program, config,
                                        np.arange(64), num_instances=128, num_gpus=2)
        assert result.num_gpus == 2
        assert result.total_sampled_edges > 0
        assert result.seps() > 0

    def test_invalid_arguments(self, small_powerlaw_graph):
        program = BiasedNeighborSampling()
        config = program.default_config()
        with pytest.raises(ValueError):
            run_multi_gpu_sampling(small_powerlaw_graph, program, config, [0],
                                   num_instances=10, num_gpus=0)
        with pytest.raises(ValueError):
            run_multi_gpu_walks(small_powerlaw_graph, [], num_walkers=10,
                                walk_length=5, num_gpus=2)

    def test_fewer_instances_than_gpus_skips_idle_devices(self, small_powerlaw_graph):
        """Surplus GPUs get no (degenerate) empty runs and counts stay honest."""
        program = BiasedNeighborSampling()
        config = program.default_config(depth=2, neighbor_size=2, seed=0)
        result = run_multi_gpu_sampling(small_powerlaw_graph, program, config,
                                        [0, 1], num_instances=2, num_gpus=4)
        assert result.num_gpus == 2
        assert result.requested_gpus == 4
        assert result.instances_per_gpu() == [1, 1]
        assert [d.device_id for d in result.devices] == [0, 1]
        assert all(r.num_instances == 1 for r in result.per_gpu)
        assert result.seps() >= 0

    def test_fewer_walkers_than_gpus(self, small_powerlaw_graph):
        result = run_multi_gpu_walks(small_powerlaw_graph, [3], num_walkers=2,
                                     walk_length=4, num_gpus=5, seed=1)
        assert result.num_gpus == 2
        assert result.requested_gpus == 5
        assert result.instances_per_gpu() == [1, 1]
        assert result.total_sampled_edges > 0

    def test_device_specs_must_cover_requested_gpus(self, small_powerlaw_graph):
        program = BiasedNeighborSampling()
        config = program.default_config()
        with pytest.raises(ValueError, match="device_specs"):
            run_multi_gpu_sampling(small_powerlaw_graph, program, config, [0, 1],
                                   num_instances=8, num_gpus=4,
                                   device_specs=[V100_SPEC])
