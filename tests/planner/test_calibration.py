"""Host calibration: fitting, persistence, and the planner's use of it."""

import json
from pathlib import Path

import pytest

from repro.planner.calibration import (
    Calibration,
    DEFAULT_PATH,
    clear_calibration_cache,
    fit_calibration,
    load_calibration,
    save_calibration,
)

BASELINE_RECORDS = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "baselines"
    / "BENCH_planner.json"
)


@pytest.fixture()
def records():
    return json.loads(BASELINE_RECORDS.read_text())


class TestFit:
    def test_geomean_fit(self):
        records = [
            {"bench": "a", "route": "r", "predicted_time_s": 1.0, "actual_time_s": 2.0},
            {"bench": "b", "route": "r", "predicted_time_s": 1.0, "actual_time_s": 8.0},
        ]
        cal = fit_calibration(records)
        assert cal.time_scale == pytest.approx(4.0)  # geomean(2, 8)
        assert cal.fitted_from == ("a:r", "b:r")

    def test_unusable_records_skipped_and_empty_raises(self):
        good = {"bench": "a", "route": "r", "predicted_time_s": 1.0, "actual_time_s": 3.0}
        bad = {"bench": "b", "route": "r", "predicted_time_s": 0.0, "actual_time_s": 3.0}
        assert fit_calibration([good, bad]).time_scale == pytest.approx(3.0)
        with pytest.raises(ValueError):
            fit_calibration([bad])

    def test_shipped_fit_brings_predictions_into_band(self, records):
        """The satellite's acceptance: the raw cost model was up to ~26x off;

        after applying the fitted constant every shipped record's prediction
        lands within a [1/8, 8] band of its measured time.
        """
        cal = fit_calibration(records)
        assert cal.time_scale > 1.0  # the model systematically under-predicted
        # band-check exactly the records the fit uses: wall-time-only rows
        # (e.g. the telemetry-overhead bench) carry no cost-model prediction
        usable = [r for r in records
                  if float(r.get("predicted_time_s", 0.0)) > 0.0
                  and float(r.get("actual_time_s", 0.0)) > 0.0]
        assert usable
        for rec in usable:
            calibrated = cal.calibrated_time_s(rec["predicted_time_s"])
            ratio = rec["actual_time_s"] / calibrated
            assert 1 / 8 <= ratio <= 8, (rec["bench"], rec["route"], ratio)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        cal = fit_calibration([
            {"bench": "x", "route": "y", "predicted_time_s": 2.0, "actual_time_s": 5.0},
        ])
        path = save_calibration(cal, tmp_path / "calibration.json")
        assert load_calibration(path) == cal

    def test_shipped_calibration_loads_by_default(self):
        clear_calibration_cache()
        cal = load_calibration()
        assert DEFAULT_PATH.is_file()
        assert cal.time_scale > 1.0
        assert cal.fitted_from  # provenance recorded

    def test_env_override_and_missing_file_fallback(self, tmp_path, monkeypatch):
        path = tmp_path / "cal.json"
        save_calibration(Calibration(time_scale=7.5), path)
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        clear_calibration_cache()
        try:
            assert load_calibration().time_scale == pytest.approx(7.5)
            monkeypatch.setenv("REPRO_CALIBRATION", str(tmp_path / "absent.json"))
            clear_calibration_cache()
            assert load_calibration() == Calibration()  # defaults, no crash
        finally:
            clear_calibration_cache()


class TestPlannerIntegration:
    def test_plans_report_calibrated_time(self):
        from repro.algorithms.random_walk import SimpleRandomWalk
        from repro.api.instance import make_instances
        from repro.graph.generators import powerlaw_graph
        from repro.planner.planner import PlanRequest, plan

        graph = powerlaw_graph(200, 5.0, seed=1)
        config = SimpleRandomWalk.default_config()
        clear_calibration_cache()
        cal = load_calibration()
        execution_plan = plan(PlanRequest(
            graph=graph, program=SimpleRandomWalk(), config=config,
            instances=make_instances([0, 1, 2]), force_route="in_memory",
        ))
        assert execution_plan.predicted_time_s > 0
        scaled = cal.calibrated_time_s(execution_plan.predicted_time_s)
        if execution_plan.step_tier == "compiled":
            scaled = cal.compiled_overhead_s + scaled / cal.compiled_speedup
        assert execution_plan.calibrated_time_s == pytest.approx(scaled)
        assert "calibrated" in execution_plan.explain()
        assert "calibrated_time_s" in execution_plan.summary()
