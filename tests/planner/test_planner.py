"""Unit tests of the execution planner: routing, layout, explain, scaling."""

import pickle

import pytest

from repro.algorithms.registry import default_config, get_algorithm
from repro.api.instance import make_instances
from repro.graph.generators import powerlaw_graph
from repro.oom.scheduler import OutOfMemoryConfig
from repro.planner.errors import PlanError, SeedValidationError
from repro.planner.plan import ExecutionPlan, PartitionLayout
from repro.planner.planner import (
    GraphStats,
    PlanRequest,
    plan,
    plan_admission,
    plan_route,
    scale_plan,
    validate_seed_tuples,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(200, 6.0, seed=3)


def make_plan(graph, algorithm="deepwalk", **overrides):
    info = get_algorithm(algorithm)
    defaults = dict(
        graph=graph,
        program=info.program_factory(),
        config=info.config_factory(),
        instances=make_instances([0, 1, 2]),
    )
    defaults.update(overrides)
    return plan(PlanRequest(**defaults))


class TestRouting:
    def test_within_budget_routes_in_memory(self, graph):
        assert plan_route(
            graph.nbytes,
            memory_budget_bytes=graph.nbytes + 1,
            cluster_shards=4,
        ) == "in_memory"

    def test_no_budget_routes_in_memory(self, graph):
        assert plan_route(
            graph.nbytes, memory_budget_bytes=None, cluster_shards=0
        ) == "in_memory"

    def test_over_budget_without_shards_routes_oom(self, graph):
        assert plan_route(
            graph.nbytes, memory_budget_bytes=1024, cluster_shards=0
        ) == "out_of_memory"

    def test_over_budget_with_shards_routes_sharded(self, graph):
        assert plan_route(
            graph.nbytes, memory_budget_bytes=1024, cluster_shards=2
        ) == "sharded"

    def test_cost_model_prefers_parallel_shards(self, graph):
        """With both over-budget tiers available the estimate picks sharded:
        the overlappable work divides across shards while the serial
        scheduler additionally pays PCIe partition transfers."""
        route = plan_route(
            graph.nbytes,
            memory_budget_bytes=1024,
            cluster_shards=4,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            config=default_config("deepwalk"),
            num_instances=100,
        )
        assert route == "sharded"

    def test_admission_freezes_oom_layout(self, graph):
        route, layout = plan_admission(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            nbytes=graph.nbytes,
            memory_budget_bytes=graph.nbytes // 3,
            cluster_shards=0,
        )
        assert route == "out_of_memory"
        assert layout.kind == "oom_partitions"
        assert layout.oom.num_partitions >= 3
        assert layout.oom.batched and layout.oom.workload_aware

    def test_admission_sizes_shards_to_budget(self, graph):
        route, layout = plan_admission(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            nbytes=graph.nbytes,
            memory_budget_bytes=graph.nbytes // 5,
            cluster_shards=2,
        )
        assert route == "sharded"
        # Floor of 2, but the budget needs at least 5 shards.
        assert layout.num_partitions >= 5

    def test_explicit_oom_config_wins(self, graph):
        oom = OutOfMemoryConfig.baseline(num_partitions=7)
        _, layout = plan_admission(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            nbytes=graph.nbytes,
            memory_budget_bytes=1024,
            cluster_shards=0,
            oom_config=oom,
        )
        assert layout.oom is oom
        assert layout.num_partitions == 7


class TestPlanConstruction:
    def test_in_memory_plan_shape(self, graph):
        p = make_plan(graph, force_route="in_memory")
        assert p.route == "in_memory"
        assert p.num_instances == 3
        assert p.member_sizes == (3,)
        assert p.warp_cursors == "global"
        assert p.layout.kind == "none"
        assert p.predicted_time_s > 0
        assert p.predicted_cost.rng_draws > 0

    def test_coalesced_plan_members(self, graph):
        info = get_algorithm("deepwalk")
        p = plan(PlanRequest(
            graph=graph,
            program=info.program_factory(),
            config=info.config_factory(),
            members=[make_instances([0, 1]), make_instances([2, 3, 4])],
            force_route="coalesced",
        ))
        assert p.member_sizes == (2, 3)
        assert p.num_instances == 5
        assert p.warp_cursors == "per_member"

    def test_stateful_program_cannot_coalesce(self, graph):
        info = get_algorithm("forest_fire_sampling")
        with pytest.raises(PlanError, match="stateful"):
            plan(PlanRequest(
                graph=graph,
                program=info.program_factory(),
                config=info.config_factory(),
                members=[make_instances([0]), make_instances([1])],
                force_route="coalesced",
            ))

    def test_sharded_plan_uses_boundaries(self, graph):
        import numpy as np

        p = make_plan(
            graph,
            force_route="sharded",
            boundaries=np.array([0, 100, 200]),
        )
        assert p.layout.kind == "shard_ranges"
        assert p.layout.num_partitions == 2
        assert p.warp_cursors == "per_walker"

    def test_empty_graph_rejected(self):
        from repro.graph.csr import CSRGraph
        import numpy as np

        empty = CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        with pytest.raises(PlanError, match="empty graph"):
            make_plan(empty, instances=make_instances([0]))

    def test_plan_is_picklable(self, graph):
        p = make_plan(graph)
        clone = pickle.loads(pickle.dumps(p))
        assert clone.route == p.route
        assert clone.predicted_cost.as_dict() == p.predicted_cost.as_dict()

    def test_unknown_route_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown route"):
            ExecutionPlan(route="warp_drive", config=default_config("deepwalk"))


class TestExplain:
    def test_explain_mentions_route_layout_and_cost(self, graph):
        p = make_plan(
            graph,
            force_route="out_of_memory",
            oom_config=OutOfMemoryConfig.fully_optimized(num_partitions=4),
            memory_budget_bytes=graph.nbytes // 4,
        )
        text = p.explain()
        assert "route=out_of_memory" in text
        assert "over budget" in text
        assert "4 scheduled partitions" in text
        assert "BA+WS+BAL" in text
        assert "predicted:" in text

    def test_summary_is_flat_and_picklable(self, graph):
        summary = make_plan(graph).summary()
        assert summary["route"] == "in_memory"
        assert "explain" in summary
        pickle.dumps(summary)


class TestScalePlan:
    def test_multi_member_unit_becomes_coalesced(self, graph):
        base = make_plan(graph, force_route="in_memory")
        unit = scale_plan(base, [2, 3, 1])
        assert unit.route == "coalesced"
        assert unit.warp_cursors == "per_member"
        assert unit.member_sizes == (2, 3, 1)
        assert unit.num_instances == 6

    def test_predicted_cost_scales_with_instances(self, graph):
        base = make_plan(graph, force_route="in_memory")
        small = scale_plan(base, [10])
        large = scale_plan(base, [1000])
        assert large.predicted_cost.rng_draws == 100 * small.predicted_cost.rng_draws
        assert large.predicted_time_s > small.predicted_time_s

    def test_sharded_route_survives_scaling(self, graph):
        import numpy as np

        base = make_plan(
            graph, force_route="sharded", boundaries=np.array([0, 100, 200])
        )
        unit = scale_plan(base, [4])
        assert unit.route == "sharded"
        assert unit.warp_cursors == "per_walker"


class TestSeedValidationUniformity:
    """One error type across every entry point (the satellite contract)."""

    def test_tuple_validator_flags(self):
        with pytest.raises(SeedValidationError, match="at least one seed"):
            validate_seed_tuples((), 10)
        with pytest.raises(SeedValidationError, match="outside"):
            validate_seed_tuples((5, 12), 10)
        with pytest.raises(SeedValidationError, match="no seed"):
            validate_seed_tuples(((), (1,)), 10)
        with pytest.raises(SeedValidationError, match="duplicate"):
            validate_seed_tuples(((1, 1, 2),), 10, reject_duplicates=True)
        assert validate_seed_tuples(((1, 1, 2),), 10) == 1  # walks: allowed
        assert validate_seed_tuples((1, 2), 10, num_instances=8) == 8

    def test_truncation_matches_make_instances(self):
        """num_instances < len(seeds) drops the tail before instances are
        built, so the tuple validator must ignore the dropped seeds exactly
        as a standalone sampler would."""
        assert validate_seed_tuples((5, 10**9), 100, num_instances=1) == 1
        with pytest.raises(SeedValidationError, match="outside"):
            validate_seed_tuples((10**9, 5), 100, num_instances=1)
        assert validate_seed_tuples(((1,), (10**9,)), 100, num_instances=1) == 1

    def test_graph_sampler_raises_seed_validation_error(self, graph):
        from repro.api.sampler import GraphSampler

        info = get_algorithm("unbiased_neighbor_sampling")
        sampler = GraphSampler(graph, info.program_factory(), info.config_factory())
        with pytest.raises(SeedValidationError):
            sampler.run([graph.num_vertices + 5])
        with pytest.raises(SeedValidationError, match="duplicate"):
            sampler.run([[1, 1, 2]])

    def test_oom_sampler_raises_seed_validation_error(self, graph):
        from repro.oom.scheduler import OutOfMemorySampler

        info = get_algorithm("deepwalk")
        sampler = OutOfMemorySampler(
            graph, info.program_factory(), info.config_factory()
        )
        with pytest.raises(SeedValidationError):
            sampler.run([-1])

    def test_run_coalesced_raises_seed_validation_error(self, graph):
        from repro.engine.hetero import run_coalesced

        info = get_algorithm("deepwalk")
        with pytest.raises(SeedValidationError):
            run_coalesced(
                graph, info.program_factory(), info.config_factory(),
                [make_instances([0]), make_instances([graph.num_vertices])],
            )

    def test_cluster_raises_seed_validation_error(self, graph):
        from repro.distributed import ShardedSamplingCluster

        cluster = ShardedSamplingCluster(graph, "deepwalk", num_shards=2)
        with pytest.raises(SeedValidationError):
            cluster.run([0, graph.num_vertices + 1])

    def test_error_is_a_value_error(self):
        assert issubclass(SeedValidationError, ValueError)
        assert issubclass(SeedValidationError, PlanError)

    def test_empty_seed_list_is_uniform_too(self, graph):
        from repro.api.instance import make_instances as mk
        from repro.api.requests import SampleRequest

        with pytest.raises(SeedValidationError, match="at least one seed"):
            mk([])
        with pytest.raises(SeedValidationError, match="at least one seed"):
            SampleRequest(graph="g", algorithm="deepwalk", seeds=())


class TestCostModelPrediction:
    def test_graph_stats_average_degree(self):
        stats = GraphStats(100, 500, 8000)
        assert stats.average_degree == 5.0
        assert GraphStats(0, 0, 0).average_degree == 0.0

    def test_oom_prediction_charges_transfers(self, graph):
        from repro.planner.cost import predict_cost

        cfg = default_config("deepwalk")
        in_mem = predict_cost(graph, cfg, 100)
        oom = predict_cost(
            graph, cfg, 100,
            route="out_of_memory", num_partitions=4, max_resident_partitions=2,
        )
        assert in_mem.h2d_bytes == 0
        assert oom.h2d_bytes > 0
        assert oom.partition_transfers > 0

    def test_sharded_prediction_beats_serial(self, graph):
        from repro.planner.cost import predict_time_s

        cfg = default_config("deepwalk")
        sharded = predict_time_s(graph, cfg, 1000, route="sharded", num_shards=8)
        serial = predict_time_s(graph, cfg, 1000)
        assert sharded < serial


class TestExecutorContracts:
    def test_coalesced_plan_needs_members(self, graph):
        from repro.planner.executor import Executor

        info = get_algorithm("deepwalk")
        p = plan(PlanRequest(
            graph=graph,
            program=info.program_factory(),
            config=info.config_factory(),
            members=[make_instances([0]), make_instances([1])],
            force_route="coalesced",
        ))
        with pytest.raises(ValueError, match="member instance lists"):
            Executor(p, graph).execute(instances=make_instances([0]))

    def test_standalone_plan_needs_instances(self, graph):
        from repro.planner.executor import Executor

        p = make_plan(graph, force_route="in_memory")
        with pytest.raises(ValueError, match="needs instances"):
            Executor(p, graph).execute()

    def test_plan_without_graph_needs_stats(self):
        with pytest.raises(PlanError, match="graph or explicit graph stats"):
            plan(PlanRequest(algorithm="deepwalk"))

    def test_plan_without_config_or_algorithm(self, graph):
        with pytest.raises(PlanError, match="config or a registry algorithm"):
            plan(PlanRequest(graph=graph, instances=make_instances([0])))


class TestPartitionLayoutDescribe:
    def test_describe_variants(self):
        nbytes = 10 * 1024 * 1024
        assert "no partitioning" in PartitionLayout().describe(nbytes)
        oom = PartitionLayout(
            kind="oom_partitions", num_partitions=4,
            oom=OutOfMemoryConfig.batched_only(num_partitions=4),
        )
        assert "BA" in oom.describe(nbytes)
        shards = PartitionLayout(
            kind="shard_ranges", num_partitions=2, boundaries=(0, 5, 10)
        )
        assert "2 cluster shards" in shards.describe(nbytes)
