"""Unit tests of the flight recorder: ring semantics, filters, dumps."""

from __future__ import annotations

import json
import os

import pytest

from repro.telemetry.recorder import EVENT_KINDS, FlightRecorder, RecorderEvent


class TestRecord:
    def test_events_carry_ts_pid_and_attrs(self):
        rec = FlightRecorder(capacity=8)
        rec.record("admit", trace_id="t1", request_id=7, tenant="acme")
        (event,) = rec.events()
        assert event.kind == "admit"
        assert event.trace_id == "t1"
        assert event.pid == os.getpid()
        assert event.ts > 0
        assert event.attrs == {"request_id": 7, "tenant": "acme"}

    def test_len_and_counts(self):
        rec = FlightRecorder(capacity=8)
        rec.record("admit")
        rec.record("admit")
        rec.record("shed")
        assert len(rec) == 3
        assert rec.counts() == {"admit": 2, "shed": 1}

    def test_disabled_recorder_is_a_noop(self):
        rec = FlightRecorder(capacity=8, enabled=False)
        rec.record("admit")
        assert len(rec) == 0
        assert rec.counts() == {}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_taxonomy_covers_the_service_lifecycle(self):
        # The documented kinds the service emits; record() accepting any
        # string is forward compatibility, not an excuse to drift.
        for kind in ("admit", "shed", "cache_hit", "cache_evict",
                     "epoch_publish", "epoch_retire", "replan_drain",
                     "worker_claim", "worker_crash", "unit_timeout",
                     "shard_migration", "snapshot_dump"):
            assert kind in EVENT_KINDS


class TestRing:
    def test_overflow_drops_oldest_and_counts(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("admit", request_id=i)
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [e.attrs["request_id"] for e in rec.events()] == [2, 3, 4]

    def test_clear_resets_buffer_and_dropped(self):
        rec = FlightRecorder(capacity=1)
        rec.record("admit")
        rec.record("admit")
        assert rec.dropped == 1
        rec.clear()
        assert len(rec) == 0
        assert rec.dropped == 0


class TestQueries:
    def _populated(self):
        rec = FlightRecorder(capacity=16)
        rec.record("admit", trace_id="t1")
        rec.record("worker_claim", trace_id="t1", unit_id=0)
        rec.record("admit", trace_id="t2")
        rec.record("worker_crash", trace_id="t2", unit_id=1)
        return rec

    def test_filter_by_kind(self):
        rec = self._populated()
        assert [e.trace_id for e in rec.events(kind="admit")] == ["t1", "t2"]

    def test_filter_by_trace_id(self):
        rec = self._populated()
        kinds = [e.kind for e in rec.events(trace_id="t2")]
        assert kinds == ["admit", "worker_crash"]

    def test_last_n_keeps_newest(self):
        rec = self._populated()
        assert [e.kind for e in rec.events(last=2)] == [
            "admit", "worker_crash"]

    def test_snapshot_is_json_ready(self):
        rec = self._populated()
        snap = rec.snapshot(last=1)
        assert json.loads(json.dumps(snap)) == snap
        assert snap[0]["kind"] == "worker_crash"
        assert snap[0]["trace_id"] == "t2"


class TestDump:
    def test_dump_writes_events_and_extra(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.record("unit_timeout", trace_id="t9", unit_id=3)
        path = tmp_path / "deep" / "dump.json"  # parent dirs get created
        returned = rec.dump(str(path), extra={
            "failure": {"reason": "unit_timeout", "trace_ids": ["t9"]},
        })
        assert returned == str(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["dropped"] == 0
        assert payload["dumped_at"] > 0
        assert payload["failure"]["trace_ids"] == ["t9"]
        (event,) = payload["events"]
        assert event["kind"] == "unit_timeout"
        assert event["trace_id"] == "t9"

    def test_dump_stringifies_unjsonable_attrs(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.record("admit", weird=object())
        rec.dump(str(tmp_path / "d.json"))
        payload = json.loads((tmp_path / "d.json").read_text())
        assert isinstance(payload["events"][0]["attrs"]["weird"], str)


class TestEventDataclass:
    def test_as_dict_round_trips(self):
        event = RecorderEvent(ts=1.5, kind="shed", trace_id="t",
                              pid=42, attrs={"tenant": "a"})
        assert event.as_dict() == {
            "ts": 1.5, "kind": "shed", "trace_id": "t", "pid": 42,
            "attrs": {"tenant": "a"},
        }
