"""Unit tests of the metrics registry: counters, histograms, exposition."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.value == 7
        assert b.value == 2


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        assert g.value == 0.0
        g.set(7)
        assert g.value == 7.0
        g.inc()
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == pytest.approx(10.0)

    def test_set_overwrites_not_accumulates(self):
        g = Gauge()
        g.set(5)
        g.set(3)
        assert g.value == 3.0

    def test_merge_sums(self):
        a, b = Gauge(), Gauge()
        a.set(2)
        b.set(5)
        a.merge(b)
        assert a.value == 7.0
        assert b.value == 5.0


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram()
        assert h.summary() == {"count": 0, "mean_s": 0.0, "min_s": 0.0,
                               "max_s": 0.0, "p50_s": 0.0, "p99_s": 0.0}
        assert h.percentile(50.0) == 0.0

    def test_observe_tracks_count_mean_extremes(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(0.002)
        assert h.min == 0.001
        assert h.max == 0.003

    def test_percentiles_clamp_to_observed_range(self):
        h = Histogram()
        for _ in range(100):
            h.observe(0.005)
        # everything in one bucket: interpolation must not escape [min, max]
        assert h.percentile(1.0) == 0.005
        assert h.percentile(50.0) == 0.005
        assert h.percentile(99.0) == 0.005

    def test_percentile_resolution_within_one_bucket(self):
        h = Histogram()
        for i in range(1, 101):
            h.observe(i / 1000.0)  # 1ms .. 100ms
        p50 = h.percentile(50.0)
        p99 = h.percentile(99.0)
        # successive DEFAULT_BUCKETS bounds differ by 2x: estimates are
        # accurate to within one doubling of the true rank values.
        assert 0.025 <= p50 <= 0.1
        assert 0.05 <= p99 <= 0.1
        assert p50 <= p99

    def test_percentiles_are_monotone_in_q(self):
        h = Histogram()
        for i in range(1, 201):
            h.observe(i * 1e-4)
        qs = [1, 10, 25, 50, 75, 90, 99, 100]
        estimates = [h.percentile(q) for q in qs]
        assert estimates == sorted(estimates)

    def test_merge_accumulates(self):
        a, b = Histogram(), Histogram()
        a.observe(0.001)
        b.observe(0.004)
        b.observe(0.002)
        a.merge(b)
        assert a.count == 3
        assert a.min == 0.001
        assert a.max == 0.004
        assert a.total == pytest.approx(0.007)

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram()
        b = Histogram(bounds=(0.1, 1.0))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_default_buckets_cover_microseconds_to_a_minute(self):
        assert DEFAULT_BUCKETS[0] == 1e-6
        assert DEFAULT_BUCKETS[-1] > 60.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_instruments_are_cached_by_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")
        assert reg.counter("hits", route="a") is not reg.counter("hits", route="b")
        assert reg.histogram("lat") is reg.histogram("lat")

    def test_find_histograms_returns_label_dicts(self):
        reg = MetricsRegistry()
        reg.histogram("request_latency_s", route="in_memory").observe(0.01)
        reg.histogram("request_latency_s", route="sharded").observe(0.02)
        reg.histogram("other").observe(1.0)
        found = reg.find_histograms("request_latency_s")
        assert [labels for labels, _ in found] == [
            {"route": "in_memory"}, {"route": "sharded"}]

    def test_gauges_are_cached_by_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.gauge("depth") is reg.gauge("depth")
        assert reg.gauge("depth", route="a") is not reg.gauge("depth", route="b")

    def test_find_gauges_returns_label_dicts(self):
        reg = MetricsRegistry()
        reg.gauge("slo_burn_rate", route="in_memory").set(0.5)
        reg.gauge("slo_burn_rate", route="sharded").set(2.0)
        reg.gauge("other").set(1.0)
        found = reg.find_gauges("slo_burn_rate")
        assert [labels for labels, _ in found] == [
            {"route": "in_memory"}, {"route": "sharded"}]
        assert [g.value for _, g in found] == [0.5, 2.0]

    def test_merge_folds_worker_registry_into_frontend(self):
        front, worker = MetricsRegistry(), MetricsRegistry()
        front.counter("units").inc(1)
        worker.counter("units").inc(2)
        worker.counter("worker_only").inc(5)
        worker.histogram("lat").observe(0.5)
        front.gauge("depth").set(1)
        worker.gauge("depth").set(2)
        front.merge(worker)
        assert front.counter("units").value == 3
        assert front.counter("worker_only").value == 5
        assert front.histogram("lat").count == 1
        assert front.gauge("depth").value == 3.0

    def test_snapshot_flattens_with_label_suffixes(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.histogram("lat", route="x").observe(0.25)
        snap = reg.snapshot()
        assert snap["hits"] == 3
        assert snap['lat{route="x"}']["count"] == 1
        assert snap['lat{route="x"}']["p50_s"] == 0.25

    def test_snapshot_includes_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("queue_depth").set(11)
        assert reg.snapshot()["queue_depth"] == 11.0

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.gauge("depth").set(1)
        reg.clear()
        assert reg.snapshot() == {}


class TestPrometheus:
    def test_counter_and_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.counter("kernel_cache_hits").inc(2)
        h = reg.histogram("request_latency_s", route="in_memory")
        h.observe(0.01)
        h.observe(0.02)
        text = reg.render_prometheus()
        assert "# TYPE repro_kernel_cache_hits counter" in text
        assert "repro_kernel_cache_hits 2" in text
        assert "# TYPE repro_request_latency_s histogram" in text
        assert 'le="+Inf",route="in_memory"} 2' in text
        assert 'repro_request_latency_s_count{route="in_memory"} 2' in text
        assert 'repro_request_latency_s_sum{route="in_memory"} 0.03' in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.render_prometheus()
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text

    def test_gauge_exposition(self):
        reg = MetricsRegistry()
        reg.gauge("health_status").set(1)
        reg.gauge("slo_burn_rate", route="in_memory").set(2.5)
        text = reg.render_prometheus()
        assert "# TYPE repro_health_status gauge" in text
        assert "repro_health_status 1" in text
        assert "# TYPE repro_slo_burn_rate gauge" in text
        assert 'repro_slo_burn_rate{route="in_memory"} 2.5' in text

    def test_gauge_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("depth", lane='fast "prio"').set(1)
        reg.gauge("depth", lane="a\\b\nc").set(2)
        text = reg.render_prometheus()
        assert 'lane="fast \\"prio\\""' in text
        assert 'lane="a\\\\b\\nc"' in text
        for line in text.splitlines():
            assert line.count('"') % 2 == 0

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_label_values_are_escaped(self):
        # Prometheus text format: backslash, double quote and newline in a
        # label value must be escaped or the exposition line is corrupt.
        reg = MetricsRegistry()
        reg.counter("hits", tenant='acme "prod"').inc()
        reg.counter("hits", tenant="a\\b").inc(2)
        reg.counter("hits", tenant="line1\nline2").inc(3)
        text = reg.render_prometheus()
        assert 'tenant="acme \\"prod\\""' in text
        assert 'tenant="a\\\\b"' in text
        assert 'tenant="line1\\nline2"' in text
        # No raw newline inside any sample line.
        for line in text.splitlines():
            assert line.count('"') % 2 == 0

    def test_escaping_order_backslash_first(self):
        # A value ending in a backslash before a quote must not double-escape.
        reg = MetricsRegistry()
        reg.counter("hits", path='C:\\dir\\"x"').inc()
        text = reg.render_prometheus()
        assert 'path="C:\\\\dir\\\\\\"x\\""' in text

    def test_snapshot_keys_escape_too(self):
        reg = MetricsRegistry()
        reg.counter("hits", tenant='say "hi"').inc()
        assert 'hits{tenant="say \\"hi\\""}' in reg.snapshot()


class TestRegistryThreadSafety:
    def test_concurrent_lazy_creation_yields_one_instrument(self):
        import threading

        reg = MetricsRegistry()
        barrier = threading.Barrier(8)
        seen = []

        def create(i):
            barrier.wait()
            for n in range(200):
                reg.counter("c", lane=n % 10).inc()
                reg.histogram("h", lane=n % 10).observe(0.001)
            seen.append(reg.counter("c", lane=0))

        threads = [threading.Thread(target=create, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every thread resolved the SAME Counter object: no increment was
        # lost to a racing check-then-insert creating duplicates.
        assert all(c is seen[0] for c in seen)
        total = sum(c.value for _, c in reg.find_counters("c"))
        assert total == 8 * 200

    def test_concurrent_gauge_creation_yields_one_instrument(self):
        import threading

        reg = MetricsRegistry()
        barrier = threading.Barrier(8)
        seen = []

        def create(i):
            barrier.wait()
            for n in range(200):
                reg.gauge("g", lane=n % 10).inc()
            seen.append(reg.gauge("g", lane=0))

        threads = [threading.Thread(target=create, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every thread resolved the SAME Gauge: a racing check-then-insert
        # creating duplicates would shear increments across instances.
        assert all(g is seen[0] for g in seen)

    def test_find_counters_mirrors_find_histograms(self):
        reg = MetricsRegistry()
        reg.counter("tenant_requests", tenant="a").inc(2)
        reg.counter("tenant_requests", tenant="b").inc(3)
        reg.counter("other").inc()
        found = reg.find_counters("tenant_requests")
        assert [labels for labels, _ in found] == [
            {"tenant": "a"}, {"tenant": "b"}]
        assert [c.value for _, c in found] == [2, 3]
