"""Unit tests of the continuous phase profiler: clocks, shipping, export."""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.telemetry import profiler


@pytest.fixture()
def prof():
    """Profiler enabled with empty accumulators; fully restored afterwards."""
    was_enabled = profiler.enabled()
    profiler.clear()
    profiler.enable()
    yield profiler
    if not was_enabled:
        profiler.disable()
    profiler.clear()


@pytest.fixture()
def prof_off():
    was_enabled = profiler.enabled()
    profiler.clear()
    profiler.disable()
    yield profiler
    if was_enabled:
        profiler.enable()
    profiler.clear()


class TestDisabledPath:
    def test_clock_returns_shared_null_singleton(self, prof_off):
        a = prof_off.clock(0)
        b = prof_off.clock(3)
        assert a is b  # no per-call allocation when off

    def test_null_clock_records_nothing(self, prof_off):
        prof_off.clock(0).lap("gather").lap("select").restart()
        assert prof_off.stats() == []
        assert prof_off.total_s() == 0.0

    def test_profiled_context_is_harmless_when_off(self, prof_off):
        with prof_off.profiled("in_memory", "deepwalk", "compiled"):
            prof_off.clock(1).lap("gather")
        assert prof_off.stats() == []


class TestLapTiming:
    def test_laps_tile_the_interval(self, prof):
        clock = prof.clock(0)
        time.sleep(0.002)
        clock.lap("gather")
        time.sleep(0.002)
        clock.lap("select")
        rows = prof.stats()
        assert [r["phase"] for r in rows] == ["gather", "select"]
        for row in rows:
            assert row["total_s"] >= 0.002
            assert row["calls"] == 1
        # Consecutive laps must not double-charge: the sum stays close to
        # the instrumented region's wall time.
        assert prof.total_s() < 0.1

    def test_default_attribution_context(self, prof):
        prof.clock(0).lap("gather")
        (row,) = prof.stats()
        assert (row["route"], row["algorithm"], row["step_tier"]) == (
            "direct", "unknown", "interpreted")

    def test_profiled_context_attributes_laps(self, prof):
        with prof.profiled("in_memory", "deepwalk", "compiled"):
            prof.clock(2).lap("select")
        (row,) = prof.stats()
        assert row["route"] == "in_memory"
        assert row["algorithm"] == "deepwalk"
        assert row["step_tier"] == "compiled"
        assert row["by_depth"] == {
            "2": {"total_s": row["total_s"], "calls": 1}}

    def test_profiled_context_nests_and_restores(self, prof):
        with prof.profiled("a", "x", "t"):
            with prof.profiled("b", "y", "u"):
                prof.clock(0).lap("gather")
            prof.clock(0).lap("bias")
        routes = {r["phase"]: r["route"] for r in prof.stats()}
        assert routes == {"gather": "b", "bias": "a"}

    def test_restart_discards_the_interval(self, prof):
        clock = prof.clock(0)
        time.sleep(0.002)
        clock.restart()
        clock.lap("gather")
        (row,) = prof.stats()
        assert row["total_s"] < 0.002

    def test_by_depth_accumulates_per_depth(self, prof):
        for depth in (0, 0, 1):
            prof.clock(depth).lap("gather")
        (row,) = prof.stats()
        assert row["by_depth"]["0"]["calls"] == 2
        assert row["by_depth"]["1"]["calls"] == 1
        assert row["calls"] == 3


class TestShipping:
    def test_drain_empties_and_ingest_merges(self, prof):
        with prof.profiled("in_memory", "deepwalk", "compiled"):
            prof.clock(0).lap("gather")
        shipped = prof.drain()
        assert prof.stats() == []
        with prof.profiled("in_memory", "deepwalk", "compiled"):
            prof.clock(0).lap("gather")
        prof.ingest(shipped)
        (row,) = prof.stats()
        assert row["calls"] == 2

    def test_phase_stat_pickles_across_the_result_pipe(self, prof):
        with prof.profiled("sharded", "ppr", "interpreted"):
            prof.clock(1).lap("migrate")
        shipped = prof.drain()
        thawed = pickle.loads(pickle.dumps(shipped))
        prof.ingest(thawed)
        (row,) = prof.stats()
        assert row["phase"] == "migrate"
        assert row["calls"] == 1
        assert row["by_depth"]["1"]["calls"] == 1

    def test_ingest_tolerates_list_keys(self, prof):
        # JSON round trips turn tuple keys into lists; ingest re-tuples.
        with prof.profiled("a", "b", "c"):
            prof.clock(0).lap("update")
        shipped = {tuple(k): v for k, v in prof.drain().items()}
        relisted = {k: v for k, v in shipped.items()}
        prof.ingest(relisted)
        assert prof.stats()[0]["calls"] == 1


class TestReporting:
    def _populate(self, prof):
        with prof.profiled("in_memory", "deepwalk", "compiled"):
            clock = prof.clock(0)
            time.sleep(0.001)
            clock.lap("gather")
            time.sleep(0.001)
            clock.lap("select")
            clock.lap("update")

    def test_rows_follow_pipeline_phase_order(self, prof):
        self._populate(prof)
        phases = [r["phase"] for r in prof.stats()]
        assert phases == ["gather", "select", "update"]

    def test_collapsed_stack_format(self, prof):
        self._populate(prof)
        text = prof.collapsed()
        lines = [l for l in text.strip().splitlines() if l]
        assert lines, "no collapsed lines produced"
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            # flamegraph.pl input: semicolon frames + positive int weight
            assert frames.count(";") == 3
            assert int(weight) > 0
        assert lines[0].startswith("in_memory;deepwalk;compiled;gather ")

    def test_collapsed_drops_zero_weight_cells(self, prof):
        prof.clock(0).lap("gather")  # sub-microsecond: rounds to 0
        rows = prof.stats()
        rows[0]["total_s"] = 0.0
        assert prof.collapsed(rows) == ""

    def test_total_s_filters_by_route(self, prof):
        with prof.profiled("in_memory", "a", "t"):
            c = prof.clock(0)
            time.sleep(0.001)
            c.lap("gather")
        with prof.profiled("sharded", "a", "t"):
            c = prof.clock(0)
            time.sleep(0.001)
            c.lap("migrate")
        assert prof.total_s("in_memory") < prof.total_s()
        assert prof.total_s("in_memory") + prof.total_s("sharded") == (
            pytest.approx(prof.total_s()))

    def test_save_load_round_trip(self, prof, tmp_path):
        self._populate(prof)
        path = tmp_path / "profile.json"
        prof.save(str(path))
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        rows = prof.load(str(path))
        assert [r["phase"] for r in rows] == ["gather", "select", "update"]
        assert prof.collapsed(rows) == prof.collapsed()

    def test_cli_dump_renders_collapsed_stacks(self, prof, tmp_path):
        self._populate(prof)
        path = tmp_path / "profile.json"
        prof.save(str(path))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.profiler", "dump",
             str(path)],
            capture_output=True, text=True, check=True,
        )
        assert proc.stdout == prof.collapsed()
        out = tmp_path / "stacks.txt"
        subprocess.run(
            [sys.executable, "-m", "repro.telemetry.profiler", "dump",
             str(path), "-o", str(out)],
            capture_output=True, text=True, check=True,
        )
        assert out.read_text() == prof.collapsed()


class TestEngineIntegration:
    def _run(self, seed=11):
        from repro.algorithms.registry import get_algorithm
        from repro.api.sampler import GraphSampler
        from repro.graph import ring_graph

        info = get_algorithm("deepwalk")
        sampler = GraphSampler(
            ring_graph(64), info.program_factory(),
            info.config_factory(depth=6, seed=seed),
        )
        return sampler.run(list(range(16)))

    def test_engine_run_populates_phase_stats(self, prof):
        self._run()
        rows = prof.stats()
        assert rows, "instrumented engine produced no phase stats"
        phases = {r["phase"] for r in rows}
        assert "gather" in phases
        assert all(r["total_s"] >= 0 for r in rows)
        # Per-depth attribution reaches the engine's real depths.
        depths = set()
        for r in rows:
            depths.update(r["by_depth"])
        assert any(d != "-1" for d in depths)

    def test_profiling_never_perturbs_samples(self, prof_off):
        baseline = self._run()
        profiler.enable()
        try:
            profiled_run = self._run()
        finally:
            profiler.disable()
        for a, b in zip(baseline.samples, profiled_run.samples):
            assert np.array_equal(a.edges, b.edges)
            assert np.array_equal(a.seeds, b.seeds)
