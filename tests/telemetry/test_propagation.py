"""Trace propagation: every planner route yields one connected span tree.

Satellite of the telemetry tentpole: for each route the facade run must
produce spans under a single trace id forming a single rooted tree --
including across process boundaries for the multiprocess shard transport,
whose spans are drained in the shard and ingested by the coordinator.
"""

from __future__ import annotations

import os

import pytest

from repro.algorithms.registry import get_algorithm
from repro.api.instance import make_instances
from repro.api.sampler import GraphSampler
from repro.distributed import ShardedSamplingCluster
from repro.engine.hetero import run_coalesced
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler
from repro.telemetry import is_connected, span_tree, write_chrome_trace

NUM_SEEDS = 8


@pytest.fixture()
def seeds(small_powerlaw_graph):
    step = small_powerlaw_graph.num_vertices // NUM_SEEDS
    return [int(s) for s in range(0, small_powerlaw_graph.num_vertices, step)][:NUM_SEEDS]


def _deepwalk():
    info = get_algorithm("deepwalk")
    return info.program_factory(), info.config_factory(seed=3, depth=5)


def _single_tree(tel):
    """The run's spans as (root, records); asserts one connected tree."""
    roots = [r for r in tel.spans() if r.parent_id is None]
    assert len(roots) == 1, "expected exactly one root span, got %r" % (
        [(r.name, r.trace_id) for r in roots],)
    root = roots[0]
    records = tel.spans_for(root.trace_id)
    assert is_connected(records, root.trace_id), (
        "disconnected span tree:\n%s" % "\n".join(
            "%s parent=%s" % (r.name, r.parent_id) for r in records))
    return root, records


class TestInMemory:
    def test_compiled_tier_trace(self, telemetry, small_powerlaw_graph, seeds):
        program, config = _deepwalk()
        GraphSampler(small_powerlaw_graph, program, config).run(seeds)
        root, records = _single_tree(telemetry)
        assert root.name == "execute"
        assert root.attrs["route"] == "in_memory"
        assert root.attrs["step_tier"] == "compiled"
        assert "compiled_run" in {r.name for r in records}

    def test_interpreted_tier_records_depth_steps(self, telemetry,
                                                  small_powerlaw_graph, seeds):
        program, config = _deepwalk()
        GraphSampler(small_powerlaw_graph, program, config,
                     use_compiled=False).run(seeds)
        root, records = _single_tree(telemetry)
        assert root.attrs["step_tier"] == "interpreted"
        depth_steps = [r for r in records if r.name == "depth_step"]
        assert len(depth_steps) == config.depth
        assert all(r.parent_id == root.span_id for r in depth_steps)
        assert [r.attrs["depth"] for r in depth_steps] == list(range(config.depth))


class TestCoalesced:
    def test_fused_members_share_one_trace(self, telemetry,
                                           small_powerlaw_graph, seeds):
        program, config = _deepwalk()
        halves = [seeds[:4], seeds[4:]]
        run_coalesced(small_powerlaw_graph, program, config,
                      [make_instances(h) for h in halves])
        root, records = _single_tree(telemetry)
        assert root.name == "execute"
        assert root.attrs["route"] == "coalesced"


class TestOutOfMemory:
    def test_partition_rounds_nest_under_execute(self, telemetry,
                                                 small_powerlaw_graph, seeds):
        program, config = _deepwalk()
        sampler = OutOfMemorySampler(
            small_powerlaw_graph, program, config,
            OutOfMemoryConfig.fully_optimized(num_partitions=3),
        )
        sampler.run(seeds)
        root, records = _single_tree(telemetry)
        assert root.attrs["route"] == "out_of_memory"
        names = {r.name for r in records}
        assert "oom_round" in names
        assert "partition_drain" in names
        rounds = [r for r in records if r.name == "oom_round"]
        assert all(r.parent_id == root.span_id for r in rounds)
        drains = [r for r in records if r.name == "partition_drain"]
        round_ids = {r.span_id for r in rounds}
        assert all(r.parent_id in round_ids for r in drains)


class TestSharded:
    def test_in_process_shards_join_the_epoch_spans(self, telemetry,
                                                    small_powerlaw_graph, seeds):
        cluster = ShardedSamplingCluster(
            small_powerlaw_graph, "deepwalk", num_shards=3)
        cluster.run(seeds)
        root, records = _single_tree(telemetry)
        assert root.attrs["route"] == "sharded"
        names = {r.name for r in records}
        assert {"shard_epoch", "shard_step", "reassemble"} <= names
        epochs = {r.span_id for r in records if r.name == "shard_epoch"}
        steps = [r for r in records if r.name == "shard_step"]
        assert steps and all(r.parent_id in epochs for r in steps)

    def test_multiprocess_shards_ship_spans_home(self, telemetry,
                                                 small_powerlaw_graph, seeds):
        cluster = ShardedSamplingCluster(
            small_powerlaw_graph, "deepwalk", num_shards=2,
            transport="multiprocess")
        cluster.run(seeds)
        root, records = _single_tree(telemetry)
        assert root.attrs["route"] == "sharded"
        steps = [r for r in records if r.name == "shard_step"]
        assert steps
        # the shard processes really produced them: foreign pids in the tree
        assert {r.pid for r in steps} - {os.getpid()}
        # shipped spans hang off the coordinator's execute span
        assert all(r.parent_id == root.span_id for r in steps)

    def test_multiprocess_tree_exports_to_chrome_format(self, telemetry,
                                                        small_powerlaw_graph,
                                                        seeds, tmp_path):
        import json

        cluster = ShardedSamplingCluster(
            small_powerlaw_graph, "deepwalk", num_shards=2,
            transport="multiprocess")
        cluster.run(seeds)
        _, records = _single_tree(telemetry)
        path = write_chrome_trace(records, tmp_path / "trace.json")
        events = json.loads(path.read_text())["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) >= 2  # coordinator + at least one shard process
        roots, children = span_tree(records)
        assert len(roots) == 1
