"""Service-side telemetry: response stats, stats() snapshot, Prometheus
dump, kernel-cache hit reporting and traced requests end to end."""

from __future__ import annotations

import threading

import pytest

from repro.compiled.compiler import clear_kernel_cache
from repro.graph.generators import powerlaw_graph
from repro.service import SamplingClient, SamplingService
from repro.telemetry import is_connected


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(400, 6.0, seed=2)


@pytest.fixture()
def service(graph):
    svc = SamplingService(
        num_workers=1, mode="inline", batch_window_s=0.0,
        max_batch_requests=1, memory_budget_bytes=None,
    )
    svc.load_graph("g", graph)
    yield svc
    svc.shutdown()


@pytest.fixture()
def thread_service(graph):
    svc = SamplingService(
        num_workers=2, mode="thread", batch_window_s=0.01,
        memory_budget_bytes=None,
    )
    svc.load_graph("g", graph)
    yield svc
    svc.shutdown()


class TestKernelCacheStats:
    """Satellite: the response reports the run's kernel-cache traffic."""

    def test_second_same_shape_request_reports_a_cache_hit(self, service):
        client = SamplingClient(service)
        clear_kernel_cache()
        first = client.sample("g", "simple_random_walk", [1, 2, 3],
                              depth=5, seed=3, timeout=30)
        # Different seeds, same config: misses the gateway's result cache
        # (which would answer an identical request without executing at
        # all) but shares the first run's plan shape, so the compiled
        # kernel is reused.
        second = client.sample("g", "simple_random_walk", [4, 5, 6],
                               depth=5, seed=3, timeout=30)
        assert first.stats["step_tier"] == "compiled"
        assert first.stats["kernel_cache_misses"] >= 1
        assert second.stats["step_tier"] == "compiled"
        assert second.stats["kernel_cache_misses"] == 0
        assert second.stats["kernel_cache_hits"] >= 1

    def test_interpreted_requests_report_their_tier(self, service):
        client = SamplingClient(service)
        response = client.sample("g", "forest_fire_sampling", [1, 2], seed=1,
                                 timeout=30)
        assert response.stats["step_tier"] == "interpreted"


class TestLatencyStats:
    """Satellite: queue-wait vs execute time on every response."""

    def test_response_breaks_latency_into_wait_and_execute(self, service):
        client = SamplingClient(service)
        response = client.sample("g", "deepwalk", [1, 2, 3], depth=4,
                                 seed=1, timeout=30)
        stats = response.stats
        assert stats["latency_s"] > 0.0
        assert stats["execute_s"] > 0.0
        assert stats["queue_wait_s"] >= 0.0
        # wait + execute tile the latency (different clocks: small slack)
        assert stats["queue_wait_s"] + stats["execute_s"] <= stats["latency_s"] + 0.05
        assert stats["attempts"] == 1.0

    def test_thread_mode_reports_the_same_fields(self, thread_service):
        client = SamplingClient(thread_service)
        response = client.sample("g", "deepwalk", [5, 6], depth=4, seed=2,
                                 timeout=30)
        assert response.stats["queue_wait_s"] >= 0.0
        assert response.stats["execute_s"] > 0.0


class TestStatsSnapshot:
    def test_stats_is_both_attribute_and_callable(self, service):
        client = SamplingClient(service)
        client.sample("g", "deepwalk", [1, 2], depth=4, seed=1, timeout=30)
        # legacy attribute access keeps working ...
        assert service.stats.requests_completed == 1
        # ... and the ISSUE's service.stats() returns the enriched snapshot
        snap = service.stats()
        assert snap["requests_completed"] == 1
        assert snap["units_dispatched"] >= 1

    def test_snapshot_reports_per_route_percentiles(self, service):
        client = SamplingClient(service)
        for seed in range(4):
            client.sample("g", "deepwalk", [seed, seed + 10], depth=4,
                          seed=seed + 1, timeout=30)
        snap = service.stats()
        latency = snap["latency_by_route"]["in_memory"]
        assert latency["count"] == 4
        assert 0.0 < latency["p50_s"] <= latency["p99_s"]
        assert snap["queue_wait"]["count"] == 4
        assert snap["execute"]["count"] == 4
        assert snap["kernel_cache_hit_rate"] >= 0.0

    def test_fusion_rate_counts_coalesced_requests(self, thread_service):
        client = SamplingClient(thread_service)
        responses = {}

        def issue(rank):
            responses[rank] = client.sample(
                "g", "simple_random_walk", [rank, rank + 50], depth=5,
                seed=3, timeout=30)

        threads = [threading.Thread(target=issue, args=(r,)) for r in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = thread_service.stats()
        if max(r.coalesced_with for r in responses.values()) > 1:
            assert snap["fusion_rate"] > 0.0
        else:  # scheduling-dependent; the field must still be present
            assert snap["fusion_rate"] == 0.0


class TestPrometheusDump:
    def test_metrics_text_exposes_latency_and_counters(self, service):
        client = SamplingClient(service)
        client.sample("g", "deepwalk", [1, 2], depth=4, seed=1, timeout=30)
        text = service.metrics_text()
        assert "# TYPE repro_requests_completed counter" in text
        assert "repro_requests_completed 1" in text
        assert "# TYPE repro_request_latency_s histogram" in text
        assert 'route="in_memory"' in text
        assert "repro_queue_wait_s_count 1" in text


class TestTracedRequests:
    def test_response_carries_a_connected_trace(self, telemetry, service):
        client = SamplingClient(service)
        response = client.sample("g", "deepwalk", [1, 2, 3], depth=4,
                                 seed=1, timeout=30)
        trace_id = response.stats["trace_id"]
        records = telemetry.spans_for(trace_id)
        assert is_connected(records, trace_id)
        names = {r.name for r in records}
        assert {"request", "queue_wait", "unit", "execute"} <= names
        root = next(r for r in records if r.parent_id is None)
        assert root.name == "request"
        assert root.attrs["algorithm"] == "deepwalk"

    def test_untraced_service_omits_trace_ids(self, telemetry_off, service):
        client = SamplingClient(service)
        response = client.sample("g", "deepwalk", [1, 2], depth=4, seed=1,
                                 timeout=30)
        assert "trace_id" not in response.stats

    def test_process_workers_ship_spans_home(self, telemetry, graph):
        svc = SamplingService(num_workers=1, mode="process",
                              batch_window_s=0.0, max_batch_requests=1)
        try:
            svc.load_graph("g", graph)
            client = SamplingClient(svc)
            response = client.sample("g", "deepwalk", [1, 2, 3], depth=4,
                                     seed=1, timeout=60)
            trace_id = response.stats["trace_id"]
            records = telemetry.spans_for(trace_id)
            assert is_connected(records, trace_id)
            names = {r.name for r in records}
            assert {"request", "unit", "execute"} <= names
            import os

            worker_spans = [r for r in records if r.pid != os.getpid()]
            assert worker_spans  # produced in the worker, shipped in the result
        finally:
            svc.shutdown()
