"""Unit tests of the health/SLO monitor: burn rates, windows, signals."""

from __future__ import annotations

import pytest

from repro.telemetry.health import (
    DEGRADED_BURN,
    UNHEALTHY_BURN,
    HealthMonitor,
    LatencyObjective,
    STATUS_LEVELS,
)
from repro.telemetry.metrics import MetricsRegistry


def _monitor(objective=None, **kwargs):
    registry = MetricsRegistry()
    objectives = {"in_memory": objective or LatencyObjective(latency_s=0.1)}
    return registry, HealthMonitor(registry, objectives=objectives, **kwargs)


def _observe(registry, route, values):
    hist = registry.histogram("request_latency_s", route=route)
    for v in values:
        hist.observe(v)


class TestLatencyObjective:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyObjective(latency_s=0)
        with pytest.raises(ValueError):
            LatencyObjective(latency_s=1, error_budget=0.0)
        with pytest.raises(ValueError):
            LatencyObjective(latency_s=1, error_budget=1.0)
        with pytest.raises(ValueError):
            LatencyObjective(latency_s=1, window_s=0)

    def test_thresholds_are_ordered(self):
        assert 0 < DEGRADED_BURN < UNHEALTHY_BURN
        assert STATUS_LEVELS == ("ok", "degraded", "unhealthy")


class TestEvaluate:
    def test_empty_registry_is_ok(self):
        _, monitor = _monitor()
        verdict = monitor.evaluate()
        assert verdict["status"] == "ok"
        assert verdict["reasons"] == []
        assert verdict["routes"] == {}

    def test_fast_requests_keep_route_ok(self):
        registry, monitor = _monitor()
        _observe(registry, "in_memory", [0.001] * 50)
        verdict = monitor.evaluate(now=100.0)
        route = verdict["routes"]["in_memory"]
        assert verdict["status"] == "ok"
        assert route["window_requests"] == 50
        assert route["window_violations"] == 0
        assert route["burn_rate"] == 0.0

    def test_violations_burn_the_budget(self):
        # 10% of requests over the objective against a 1% budget: burn 10x
        # crosses UNHEALTHY_BURN.
        registry, monitor = _monitor(LatencyObjective(
            latency_s=0.1, error_budget=0.01))
        _observe(registry, "in_memory", [0.001] * 90 + [10.0] * 10)
        verdict = monitor.evaluate(now=100.0)
        route = verdict["routes"]["in_memory"]
        assert route["window_violations"] == 10
        assert route["burn_rate"] == pytest.approx(10.0)
        assert verdict["status"] == "unhealthy"
        (reason,) = verdict["reasons"]
        assert reason["code"] == "latency_burn"
        assert reason["route"] == "in_memory"

    def test_moderate_burn_degrades(self):
        # 2% violations on a 1% budget: burn 2.0, between the thresholds.
        registry, monitor = _monitor(LatencyObjective(
            latency_s=0.1, error_budget=0.01))
        _observe(registry, "in_memory", [0.001] * 98 + [10.0] * 2)
        verdict = monitor.evaluate(now=100.0)
        assert verdict["status"] == "degraded"
        assert verdict["routes"]["in_memory"]["status"] == "degraded"

    def test_evaluate_diffs_cumulative_histograms(self):
        registry, monitor = _monitor(LatencyObjective(
            latency_s=0.1, error_budget=0.01))
        _observe(registry, "in_memory", [10.0] * 5)
        monitor.evaluate(now=100.0)
        # No new observations: the second evaluation adds a zero delta.
        verdict = monitor.evaluate(now=101.0)
        assert verdict["routes"]["in_memory"]["window_requests"] == 5

    def test_window_prunes_old_violations(self):
        registry, monitor = _monitor(LatencyObjective(
            latency_s=0.1, error_budget=0.01, window_s=60.0))
        _observe(registry, "in_memory", [10.0] * 10)
        assert monitor.evaluate(now=100.0)["status"] == "unhealthy"
        # 61 simulated seconds later the bad minute has aged out.
        verdict = monitor.evaluate(now=161.0)
        route = verdict["routes"]["in_memory"]
        assert route["window_requests"] == 0
        assert verdict["status"] == "ok"

    def test_histogram_reset_restarts_the_window(self):
        registry, monitor = _monitor()
        _observe(registry, "in_memory", [0.001] * 10)
        monitor.evaluate(now=100.0)
        registry.clear()
        _observe(registry, "in_memory", [0.001] * 3)
        verdict = monitor.evaluate(now=101.0)
        assert verdict["routes"]["in_memory"]["window_requests"] == 3

    def test_routes_without_objectives_are_ignored(self):
        registry, monitor = _monitor()
        _observe(registry, "mystery", [10.0] * 50)
        verdict = monitor.evaluate(now=100.0)
        assert verdict["status"] == "ok"
        assert "mystery" not in verdict["routes"]


class TestSignals:
    def test_no_live_workers_is_unhealthy(self):
        _, monitor = _monitor()
        verdict = monitor.evaluate(
            {"workers_alive": 0, "num_workers": 2})
        assert verdict["status"] == "unhealthy"
        (reason,) = verdict["reasons"]
        assert reason["code"] == "no_live_workers"

    def test_partial_worker_loss_degrades(self):
        _, monitor = _monitor()
        verdict = monitor.evaluate(
            {"workers_alive": 1, "num_workers": 2})
        assert verdict["status"] == "degraded"
        assert verdict["reasons"][0]["code"] == "dead_workers"

    def test_saturated_queue_degrades(self):
        _, monitor = _monitor()
        verdict = monitor.evaluate(
            {"queue_depth": 100, "max_pending": 100})
        assert verdict["status"] == "degraded"
        assert verdict["reasons"][0]["code"] == "queue_saturated"

    def test_unknown_signals_pass_through(self):
        _, monitor = _monitor()
        verdict = monitor.evaluate({"uptime_s": 12.5})
        assert verdict["status"] == "ok"
        assert verdict["signals"]["uptime_s"] == 12.5

    def test_no_ceiling_means_no_saturation(self):
        _, monitor = _monitor()
        verdict = monitor.evaluate({"queue_depth": 10_000})
        assert verdict["status"] == "ok"


class TestGauges:
    def test_evaluate_mirrors_numbers_into_gauges(self):
        registry, monitor = _monitor(LatencyObjective(
            latency_s=0.1, error_budget=0.01))
        _observe(registry, "in_memory", [0.001] * 90 + [10.0] * 10)
        monitor.evaluate(now=100.0)
        assert registry.gauge(
            "slo_burn_rate", route="in_memory").value == pytest.approx(10.0)
        assert registry.gauge(
            "slo_violation_rate", route="in_memory").value == (
            pytest.approx(0.1))
        assert registry.gauge("health_status").value == 2.0  # unhealthy
        text = registry.render_prometheus()
        assert "# TYPE repro_slo_burn_rate gauge" in text
        assert "repro_health_status 2" in text

    def test_reset_forgets_window_state(self):
        registry, monitor = _monitor()
        _observe(registry, "in_memory", [10.0] * 5)
        monitor.evaluate(now=100.0)
        monitor.reset()
        # After reset the full cumulative count re-enters the window.
        verdict = monitor.evaluate(now=200.0)
        assert verdict["routes"]["in_memory"]["window_requests"] == 5
