"""Unit tests of the exporters: JSON, Chrome trace_event, tree helpers."""

from __future__ import annotations

import json

from repro.telemetry.export import (
    chrome_counter_events,
    chrome_trace_events,
    format_tree,
    is_connected,
    span_tree,
    write_chrome_trace,
    write_json,
)
from repro.telemetry.trace import SpanRecord


def _rec(span_id, parent_id=None, *, trace_id="t1", name="s", start=1.0,
         end=2.0, pid=100, **attrs):
    return SpanRecord(trace_id=trace_id, span_id=span_id, parent_id=parent_id,
                      name=name, start_s=start, end_s=end, attrs=attrs,
                      pid=pid, tid=1)


def _tree():
    return [
        _rec("r", name="request", start=0.0, end=3.0),
        _rec("u", "r", name="unit", start=1.0, end=2.5),
        _rec("d1", "u", name="depth_step", start=1.0, end=1.5, depth=0),
        _rec("d2", "u", name="depth_step", start=1.5, end=2.0, depth=1),
    ]


class TestJson:
    def test_round_trips_every_field(self, tmp_path):
        path = tmp_path / "spans.json"
        text = write_json(_tree(), path)
        assert path.read_text() == text
        rows = json.loads(text)
        assert [r["name"] for r in rows] == [
            "request", "unit", "depth_step", "depth_step"]
        assert rows[2]["attrs"] == {"depth": 0}
        assert rows[0]["duration_s"] == 3.0

    def test_path_is_optional(self):
        assert json.loads(write_json([]))== []


class TestChromeTrace:
    def test_events_carry_microsecond_timestamps(self):
        events = chrome_trace_events(_tree())
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 4
        root = xs[0]
        assert root["ts"] == 0.0
        assert root["dur"] == 3.0 * 1e6
        assert root["args"]["span_id"] == "r"
        assert root["args"]["parent_id"] is None

    def test_one_process_metadata_event_per_pid(self):
        records = _tree() + [_rec("w", "u", pid=200)]
        events = chrome_trace_events(records)
        metas = [e for e in events if e["ph"] == "M"]
        assert [m["pid"] for m in metas] == [100, 200]
        assert all(m["name"] == "process_name" for m in metas)

    def test_attrs_are_stringified_into_args(self):
        (meta, event) = chrome_trace_events([_rec("a", depth=3)])
        assert meta["ph"] == "M"
        assert event["args"]["depth"] == "3"

    def test_write_chrome_trace_file_loads(self, tmp_path):
        path = write_chrome_trace(_tree(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == 5  # 4 spans + 1 process meta


class TestChromeCounterEvents:
    def test_counter_events_shape(self):
        samples = [
            (1.0, "service_load", {"pending": 3, "inflight_units": 1}),
            (2.0, "service_load", {"pending": 0, "inflight_units": 0}),
        ]
        events = chrome_counter_events(samples)
        assert len(events) == 2
        first = events[0]
        assert first["ph"] == "C"
        assert first["name"] == "service_load"
        assert first["cat"] == "repro"
        assert first["ts"] == 1.0 * 1e6
        # Stacked series values must be numeric, not stringified.
        assert first["args"] == {"pending": 3.0, "inflight_units": 1.0}

    def test_pid_is_settable(self):
        (event,) = chrome_counter_events([(0.5, "c", {"v": 1})], pid=42)
        assert event["pid"] == 42

    def test_counters_ride_along_in_trace_file(self, tmp_path):
        samples = [(1.5, "queue", {"depth": 2.0})]
        path = write_chrome_trace(_tree(), tmp_path / "trace.json",
                                  counters=samples)
        payload = json.loads(path.read_text())
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"depth": 2.0}
        # Counter timestamps share the spans' wall-clock microsecond axis.
        assert counters[0]["ts"] == 1.5 * 1e6


class TestSpanTree:
    def test_roots_and_children(self):
        roots, children = span_tree(_tree())
        assert [r.span_id for r in roots] == ["r"]
        assert [c.span_id for c in children["r"]] == ["u"]
        assert [c.span_id for c in children["u"]] == ["d1", "d2"]

    def test_children_sorted_by_start_time(self):
        records = [
            _rec("r", name="root"),
            _rec("late", "r", start=2.0),
            _rec("early", "r", start=0.5),
        ]
        _, children = span_tree(records)
        assert [c.span_id for c in children["r"]] == ["early", "late"]

    def test_orphan_becomes_root(self):
        roots, _ = span_tree([_rec("a"), _rec("b", "missing")])
        assert {r.span_id for r in roots} == {"a", "b"}

    def test_format_tree_indents(self):
        text = format_tree(_tree())
        lines = text.splitlines()
        assert lines[0].startswith("request")
        assert lines[1].startswith("  unit")
        assert lines[2].startswith("    depth_step")
        assert "depth=0" in lines[2]


class TestIsConnected:
    def test_single_tree_is_connected(self):
        assert is_connected(_tree())
        assert is_connected(_tree(), "t1")

    def test_wrong_trace_id_rejected(self):
        assert not is_connected(_tree(), "other")

    def test_empty_is_not_connected(self):
        assert not is_connected([])

    def test_two_trace_ids_rejected(self):
        records = _tree() + [_rec("x", trace_id="t2")]
        assert not is_connected(records)

    def test_missing_parent_rejected(self):
        records = _tree() + [_rec("ghost", "nowhere")]
        assert not is_connected(records)

    def test_two_roots_rejected(self):
        assert not is_connected([_rec("a"), _rec("b")])

    def test_duplicate_span_ids_rejected(self):
        assert not is_connected([_rec("a"), _rec("a")])
