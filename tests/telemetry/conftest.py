"""Fixtures for the telemetry suite: isolated enable/clear per test."""

from __future__ import annotations

import pytest

from repro import telemetry as tel


def _reset() -> None:
    tel.clear()
    tel.REGISTRY.clear()
    tel.FEEDBACK.clear()


@pytest.fixture()
def telemetry():
    """Telemetry enabled with empty buffers; fully restored afterwards."""
    was_enabled = tel.enabled()
    _reset()
    tel.enable()
    yield tel
    if not was_enabled:
        tel.disable()
    _reset()


@pytest.fixture()
def telemetry_off():
    """Telemetry explicitly disabled with empty buffers; restored afterwards."""
    was_enabled = tel.enabled()
    _reset()
    tel.disable()
    yield tel
    if was_enabled:
        tel.enable()
    _reset()
