"""Unit tests of the tracing core: spans, propagation, buffers."""

from __future__ import annotations

import os
import threading

from repro.telemetry import trace


class TestDisabled:
    def test_span_returns_shared_null_span(self, telemetry_off):
        a = trace.span("anything", attr=1)
        b = trace.span("else")
        assert a is b  # the shared no-op object, no allocation per call

    def test_null_span_records_nothing(self, telemetry_off):
        with trace.span("invisible"):
            pass
        assert trace.spans() == []

    def test_null_span_set_is_noop(self, telemetry_off):
        with trace.span("invisible") as sp:
            assert sp.set(tasks=3) is sp

    def test_not_active(self, telemetry_off):
        assert not trace.active()
        assert trace.current() is None


class TestEnabled:
    def test_root_span_records(self, telemetry):
        with trace.span("root", route="in_memory"):
            pass
        records = trace.spans()
        assert len(records) == 1
        rec = records[0]
        assert rec.name == "root"
        assert rec.parent_id is None
        assert rec.attrs == {"route": "in_memory"}
        assert rec.pid == os.getpid()
        assert rec.end_s >= rec.start_s
        assert rec.duration_s == rec.end_s - rec.start_s

    def test_nested_spans_share_trace_and_link_parent(self, telemetry):
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert trace.current() == (inner.trace_id, inner.span_id)
            assert trace.current() == (outer.trace_id, outer.span_id)
        assert trace.current() is None
        # children exit first, so the buffer holds [inner, outer]
        inner_rec, outer_rec = trace.spans()
        assert inner_rec.name == "inner"
        assert inner_rec.trace_id == outer_rec.trace_id
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None

    def test_sibling_roots_get_distinct_traces(self, telemetry):
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        a, b = trace.spans()
        assert a.trace_id != b.trace_id

    def test_set_updates_attrs(self, telemetry):
        with trace.span("s", fixed=1) as sp:
            sp.set(tasks=7)
        (rec,) = trace.spans()
        assert rec.attrs == {"fixed": 1, "tasks": 7}

    def test_span_ids_embed_pid_and_never_repeat(self, telemetry):
        ids = {trace.new_span_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith("%x." % os.getpid()) for i in ids)

    def test_active_and_enabled(self, telemetry):
        assert trace.enabled()
        assert trace.active()


class TestPropagation:
    def test_activated_adopts_context(self, telemetry_off):
        ctx = trace.TraceContext("cafe1234", "parent.1")
        with trace.activated(ctx):
            # a worker with telemetry off still traces for the caller
            assert trace.active()
            with trace.span("child"):
                pass
        assert not trace.active()
        (rec,) = trace.spans()
        assert rec.trace_id == "cafe1234"
        assert rec.parent_id == "parent.1"

    def test_activated_none_is_noop(self, telemetry_off):
        with trace.activated(None):
            assert not trace.active()
            with trace.span("invisible"):
                pass
        assert trace.spans() == []

    def test_activated_restores_previous_context(self, telemetry):
        with trace.span("outer") as outer:
            with trace.activated(trace.TraceContext("other", "x.1")):
                assert trace.current().trace_id == "other"
            assert trace.current() == (outer.trace_id, outer.span_id)

    def test_plain_tuple_works_as_context(self, telemetry_off):
        # WorkUnit / WalkerEnvelope ship the context as a picklable pair.
        with trace.activated(("t1", "p.9")):
            with trace.span("child"):
                pass
        (rec,) = trace.spans()
        assert (rec.trace_id, rec.parent_id) == ("t1", "p.9")

    def test_context_is_thread_local(self, telemetry):
        seen = {}

        def probe():
            seen["ctx"] = trace.current()

        with trace.span("outer"):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["ctx"] is None


class TestBuffers:
    def test_record_span_with_explicit_ids(self, telemetry):
        rec = trace.record_span(
            "request", trace_id="t", span_id="root.1", parent_id=None,
            start_s=1.0, end_s=2.5, request_id=7)
        assert rec in trace.spans()
        assert rec.duration_s == 1.5
        assert rec.attrs == {"request_id": 7}

    def test_drain_empties_and_ingest_restores(self, telemetry):
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        shipped = trace.drain()
        assert [r.name for r in shipped] == ["a", "b"]
        assert trace.spans() == []
        trace.ingest(shipped)
        assert [r.name for r in trace.spans()] == ["a", "b"]

    def test_spans_for_filters_by_trace(self, telemetry):
        with trace.span("a") as a:
            pass
        with trace.span("b"):
            pass
        mine = trace.spans_for(a.trace_id)
        assert [r.name for r in mine] == ["a"]

    def test_clear_discards_everything(self, telemetry):
        with trace.span("a"):
            pass
        trace.clear()
        assert trace.spans() == []

    def test_records_pickle(self, telemetry):
        import pickle

        with trace.span("a", k="v"):
            pass
        (rec,) = trace.spans()
        clone = pickle.loads(pickle.dumps(rec))
        assert clone == rec
        assert pickle.loads(pickle.dumps(trace.TraceContext("t", "s"))) == ("t", "s")
