"""Plan-cost feedback: executed plans feed the calibration fit."""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.api.sampler import GraphSampler
from repro.planner.calibration import Calibration, fit_from_telemetry
from repro.telemetry.feedback import FEEDBACK, PlanFeedbackSink


def _sampler(graph):
    info = get_algorithm("deepwalk")
    return GraphSampler(graph, info.program_factory(),
                        info.config_factory(seed=7, depth=4))


class TestSink:
    def test_record_uses_calibration_compatible_keys(self, telemetry,
                                                     small_powerlaw_graph):
        plan = _sampler(small_powerlaw_graph).plan(range(10))
        sink = PlanFeedbackSink()
        entry = sink.record(plan, 0.125)
        # "live:" + the plan's algorithm or program name
        assert entry["bench"].startswith("live:")
        assert "deepwalk" in entry["bench"].lower()
        assert entry["route"] == "in_memory"
        assert entry["actual_time_s"] == 0.125
        assert entry["predicted_time_s"] == plan.predicted_time_s
        assert entry["step_tier"] == plan.step_tier
        assert len(sink) == 1
        assert sink.records() == [entry]

    def test_drain_and_ingest_round_trip(self, telemetry, small_powerlaw_graph):
        plan = _sampler(small_powerlaw_graph).plan(range(10))
        worker, front = PlanFeedbackSink(), PlanFeedbackSink()
        worker.record(plan, 0.1)
        worker.record(plan, 0.2)
        shipped = worker.drain()
        assert len(worker) == 0
        front.ingest(shipped)
        assert [e["actual_time_s"] for e in front.records()] == [0.1, 0.2]

    def test_capacity_bounds_the_buffer(self, telemetry, small_powerlaw_graph):
        plan = _sampler(small_powerlaw_graph).plan(range(10))
        sink = PlanFeedbackSink(capacity=3)
        for i in range(5):
            sink.record(plan, float(i))
        assert [e["actual_time_s"] for e in sink.records()] == [2.0, 3.0, 4.0]


class TestExecutorFeedback:
    def test_executed_plans_deposit_records(self, telemetry,
                                            small_powerlaw_graph):
        _sampler(small_powerlaw_graph).run(range(10))
        records = FEEDBACK.records()
        assert len(records) >= 1
        entry = records[-1]
        assert entry["route"] == "in_memory"
        assert entry["actual_time_s"] > 0.0

    def test_disabled_telemetry_records_nothing(self, telemetry_off,
                                                small_powerlaw_graph):
        _sampler(small_powerlaw_graph).run(range(10))
        assert len(FEEDBACK) == 0


class TestFitFromTelemetry:
    def test_fits_live_traffic(self, telemetry, small_powerlaw_graph):
        sampler = _sampler(small_powerlaw_graph)
        for _ in range(3):
            sampler.run(range(10))
        cal = fit_from_telemetry()
        assert isinstance(cal, Calibration)
        assert cal.time_scale > 0.0
        assert any(label.startswith("live:") for label in cal.fitted_from)

    def test_explicit_sink(self, telemetry, small_powerlaw_graph):
        plan = _sampler(small_powerlaw_graph).plan(range(10))
        sink = PlanFeedbackSink()
        sink.record(plan, plan.predicted_time_s * 2.0)
        cal = fit_from_telemetry(sink, compiled_speedup=4.0)
        assert cal.time_scale == pytest.approx(2.0)
        assert cal.compiled_speedup == 4.0

    def test_empty_sink_raises(self, telemetry):
        with pytest.raises(ValueError, match="no records"):
            fit_from_telemetry(PlanFeedbackSink())
