"""Static eligibility: which (program, config) pairs compile, and why not."""

import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.bias import SamplingProgram
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope
from repro.compiled import compile_decision, plan_step_tier
from repro.algorithms.random_walk import SimpleRandomWalk

COMPILED_WALKS = {
    "simple_random_walk": "uniform",
    "deepwalk": "uniform",
    "biased_random_walk": "weight_or_degree",
    "node2vec": "node2vec",
}


def walk_config(**overrides) -> SamplingConfig:
    return SimpleRandomWalk.default_config(**overrides)


class TestCompileDecision:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_registry_eligibility(self, name):
        info = ALGORITHM_REGISTRY[name]
        decision = compile_decision(info.program_factory(), info.config_factory())
        if name in COMPILED_WALKS:
            assert decision.eligible
            assert decision.kind == COMPILED_WALKS[name]
            assert decision.reason is None
        else:
            assert not decision.eligible
            assert decision.reason

    def test_deepwalk_inherits_uniform_and_biased_overrides_it(self):
        from repro.algorithms.random_walk import BiasedRandomWalk, DeepWalk

        assert DeepWalk.compiled_bias == "uniform"
        assert BiasedRandomWalk.compiled_bias == "weight_or_degree"

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(frontier_size=2), "frontier"),
            (dict(with_replacement=False), "replacement"),
            (dict(track_visited=True), "visited"),
            (dict(scope=SelectionScope.PER_LAYER), "scope"),
            (dict(pool_policy=PoolPolicy.REPLACE_SELECTED), "pool"),
        ],
    )
    def test_config_gates(self, overrides, fragment):
        decision = compile_decision(SimpleRandomWalk(), walk_config(**overrides))
        assert not decision.eligible
        assert fragment in decision.reason

    def test_hook_overrides_reject(self):
        class AcceptingWalk(SimpleRandomWalk):
            def accept(self, edges, sampled):
                return sampled

        class UpdatingWalk(SimpleRandomWalk):
            def update(self, edges, sampled):
                return sampled

        class CountingWalk(SimpleRandomWalk):
            def neighbor_count(self, edges, requested):
                return requested

        for program, hook in (
            (AcceptingWalk(), "accept"),
            (UpdatingWalk(), "update"),
            (CountingWalk(), "neighbor_count"),
        ):
            decision = compile_decision(program, walk_config())
            assert not decision.eligible
            assert hook in decision.reason

    def test_undeclared_and_unknown_kinds_reject(self):
        assert not compile_decision(SamplingProgram(), SamplingConfig()).eligible

        class MysteryWalk(SimpleRandomWalk):
            compiled_bias = "quantum"

        decision = compile_decision(MysteryWalk(), walk_config())
        assert not decision.eligible
        assert "quantum" in decision.reason


class TestPlanStepTier:
    def test_eligible_walk_compiles_on_engine_routes(self):
        for route in ("in_memory", "coalesced"):
            tier, backend, fallback = plan_step_tier(
                walk_config(), route, 1e-3, program=SimpleRandomWalk()
            )
            assert tier == "compiled"
            assert backend in ("numpy", "numba")
            assert fallback is None

    def test_non_engine_routes_fall_back(self):
        for route in ("out_of_memory", "sharded"):
            tier, backend, fallback = plan_step_tier(
                walk_config(), route, 1e-3, program=SimpleRandomWalk()
            )
            assert tier == "interpreted"
            assert backend is None
            assert "depth loop" in fallback

    def test_allow_compiled_knob(self):
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3,
            program=SimpleRandomWalk(), allow_compiled=False,
        )
        assert (tier, fallback) == ("interpreted", "compiled tier disabled by request")
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3,
            program=SimpleRandomWalk(), allow_compiled=True,
        )
        assert (tier, fallback) == ("compiled", None)

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "0")
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3, program=SimpleRandomWalk()
        )
        assert tier == "interpreted"
        assert "REPRO_COMPILED" in fallback

    def test_algorithm_name_resolves_via_registry(self):
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3, algorithm="simple_random_walk"
        )
        assert (tier, fallback) == ("compiled", None)
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3, algorithm="no_such_algorithm"
        )
        assert tier == "interpreted"
        assert "unknown" in fallback

    def test_cost_model_decides_by_default(self, monkeypatch, tmp_path):
        # An expensive compiled overhead must push small plans back to
        # interpretation -- the knob the calibration file controls.
        from repro.planner import calibration as cal_mod

        path = tmp_path / "calibration.json"
        cal_mod.save_calibration(
            cal_mod.Calibration(time_scale=1.0, compiled_overhead_s=1e9), path
        )
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        cal_mod.clear_calibration_cache()
        try:
            tier, _, fallback = plan_step_tier(
                walk_config(), "in_memory", 1e-3, program=SimpleRandomWalk()
            )
            assert tier == "interpreted"
            assert "faster" in fallback
        finally:
            cal_mod.clear_calibration_cache()
