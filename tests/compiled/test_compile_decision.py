"""Static eligibility: which (program, config) pairs compile, and why not."""

import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.bias import SamplingProgram
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope
from repro.compiled import compile_decision, plan_step_tier
from repro.algorithms.random_walk import SimpleRandomWalk

#: algorithm -> (kind, walk_shape) for every eligible registry default.
COMPILED_ALGORITHMS = {
    "simple_random_walk": ("uniform", True),
    "deepwalk": ("uniform", True),
    "biased_random_walk": ("weight_or_degree", True),
    "node2vec": ("node2vec", True),
    "unbiased_neighbor_sampling": ("uniform", False),
    "biased_neighbor_sampling": ("weight_or_degree", False),
    "snowball_sampling": ("uniform", False),
    "layer_sampling": ("weight_or_uniform", False),
    "multidimensional_random_walk": ("uniform", False),
}


def walk_config(**overrides) -> SamplingConfig:
    return SimpleRandomWalk.default_config(**overrides)


class TestCompileDecision:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_registry_eligibility(self, name):
        info = ALGORITHM_REGISTRY[name]
        decision = compile_decision(info.program_factory(), info.config_factory())
        if name in COMPILED_ALGORITHMS:
            kind, walk_shape = COMPILED_ALGORITHMS[name]
            assert decision.eligible
            assert decision.kind == kind
            assert decision.walk_shape == walk_shape
            assert decision.reason is None
        else:
            # The stateful-hook programs: an explicit reason is recorded.
            assert not decision.eligible
            assert decision.reason

    def test_deepwalk_inherits_uniform_and_biased_overrides_it(self):
        from repro.algorithms.random_walk import BiasedRandomWalk, DeepWalk

        assert DeepWalk.compiled_bias == "uniform"
        assert BiasedRandomWalk.compiled_bias == "weight_or_degree"

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(frontier_size=2),
            dict(with_replacement=False),
            dict(track_visited=True),
            dict(scope=SelectionScope.PER_LAYER),
            dict(pool_policy=PoolPolicy.REPLACE_SELECTED),
        ],
    )
    def test_non_walk_configs_compile_on_the_engine(self, overrides):
        # Config features the fused walk kernel cannot host no longer gate
        # eligibility -- they demote the plan to the compiled step engine.
        decision = compile_decision(SimpleRandomWalk(), walk_config(**overrides))
        assert decision.eligible
        assert not decision.walk_shape

    def test_default_walk_config_is_walk_shaped(self):
        decision = compile_decision(SimpleRandomWalk(), walk_config())
        assert decision.eligible
        assert decision.walk_shape

    def test_hook_overrides_reject(self):
        class AcceptingWalk(SimpleRandomWalk):
            def accept(self, edges, sampled):
                return sampled

        class UpdatingWalk(SimpleRandomWalk):
            def update(self, edges, sampled):
                return sampled

        class CountingWalk(SimpleRandomWalk):
            def neighbor_count(self, edges, requested):
                return requested

        for program, hook in (
            (AcceptingWalk(), "accept"),
            (UpdatingWalk(), "update"),
            (CountingWalk(), "neighbor_count"),
        ):
            decision = compile_decision(program, walk_config())
            assert not decision.eligible
            assert hook in decision.reason

    def test_undeclared_and_unknown_kinds_reject(self):
        assert not compile_decision(SamplingProgram(), SamplingConfig()).eligible

        class MysteryWalk(SimpleRandomWalk):
            compiled_bias = "quantum"

        decision = compile_decision(MysteryWalk(), walk_config())
        assert not decision.eligible
        assert "quantum" in decision.reason


class TestPlanStepTier:
    def test_eligible_walk_compiles_on_engine_routes(self):
        for route in ("in_memory", "coalesced"):
            tier, backend, fallback = plan_step_tier(
                walk_config(), route, 1e-3, program=SimpleRandomWalk()
            )
            assert tier == "compiled"
            assert backend in ("numpy", "numba")
            assert fallback is None

    def test_non_engine_routes_compile_on_the_engine(self):
        # The OOM and sharded routes step through the engine, so eligible
        # programs compile there too -- always on the numpy engine kernel
        # (no fused walk loop to jit) and without the cost comparison.
        for route in ("out_of_memory", "sharded"):
            tier, backend, fallback = plan_step_tier(
                walk_config(), route, 1e-3, program=SimpleRandomWalk()
            )
            assert tier == "compiled"
            assert backend == "numpy"
            assert fallback is None

    def test_allow_compiled_knob(self):
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3,
            program=SimpleRandomWalk(), allow_compiled=False,
        )
        assert (tier, fallback) == ("interpreted", "compiled tier disabled by request")
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3,
            program=SimpleRandomWalk(), allow_compiled=True,
        )
        assert (tier, fallback) == ("compiled", None)

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "0")
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3, program=SimpleRandomWalk()
        )
        assert tier == "interpreted"
        assert "REPRO_COMPILED" in fallback

    def test_algorithm_name_resolves_via_registry(self):
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3, algorithm="simple_random_walk"
        )
        assert (tier, fallback) == ("compiled", None)
        tier, _, fallback = plan_step_tier(
            walk_config(), "in_memory", 1e-3, algorithm="no_such_algorithm"
        )
        assert tier == "interpreted"
        assert "unknown" in fallback

    def test_cost_model_decides_by_default(self, monkeypatch, tmp_path):
        # An expensive compiled overhead must push small plans back to
        # interpretation -- the knob the calibration file controls.
        from repro.planner import calibration as cal_mod

        path = tmp_path / "calibration.json"
        cal_mod.save_calibration(
            cal_mod.Calibration(time_scale=1.0, compiled_overhead_s=1e9), path
        )
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        cal_mod.clear_calibration_cache()
        try:
            tier, _, fallback = plan_step_tier(
                walk_config(), "in_memory", 1e-3, program=SimpleRandomWalk()
            )
            assert tier == "interpreted"
            assert "faster" in fallback
        finally:
            cal_mod.clear_calibration_cache()
