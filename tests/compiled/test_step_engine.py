"""CompiledStepEngine: construction policy and declared-shape equivalence."""

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.compiled import clear_structure_cache, structure_cache_stats
from repro.compiled.step_engine import CompiledStepEngine, make_step_engine
from repro.engine.step import BatchedStepEngine
from repro.gpusim.prng import CounterRNG
from repro.graph.generators import powerlaw_graph

ENGINE_SHAPED = (
    "unbiased_neighbor_sampling",
    "biased_neighbor_sampling",
    "snowball_sampling",
    "layer_sampling",
    "multidimensional_random_walk",
)

STATEFUL = (
    "forest_fire_sampling",
    "metropolis_hastings_walk",
    "random_walk_with_jump",
    "random_walk_with_restart",
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(150, 5.0, seed=7)


@pytest.fixture(autouse=True)
def fresh_structures():
    clear_structure_cache()
    yield
    clear_structure_cache()


def _build(graph, name, *, use_compiled=None):
    info = ALGORITHM_REGISTRY[name]
    config = info.config_factory(seed=13)
    return make_step_engine(
        graph, info.program_factory(), config, CounterRNG(config.seed),
        use_compiled=use_compiled,
    )


class TestEngineSelection:
    @pytest.mark.parametrize("name", ENGINE_SHAPED)
    def test_eligible_programs_get_the_compiled_engine(self, graph, name):
        engine = _build(graph, name)
        assert isinstance(engine, CompiledStepEngine)

    @pytest.mark.parametrize("name", STATEFUL)
    def test_stateful_programs_stay_interpreted(self, graph, name):
        engine = _build(graph, name)
        assert not isinstance(engine, CompiledStepEngine)
        assert isinstance(engine, BatchedStepEngine)

    def test_use_compiled_false_forces_interpreted(self, graph):
        engine = _build(graph, "biased_neighbor_sampling", use_compiled=False)
        assert not isinstance(engine, CompiledStepEngine)

    def test_env_disable_forces_interpreted(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "0")
        engine = _build(graph, "biased_neighbor_sampling")
        assert not isinstance(engine, CompiledStepEngine)

    def test_biased_engines_share_cached_structures(self, graph):
        _build(graph, "biased_neighbor_sampling")
        first = structure_cache_stats()
        assert first["misses"] == 1
        _build(graph, "biased_neighbor_sampling")
        second = structure_cache_stats()
        assert (second["hits"], second["misses"]) == (first["hits"] + 1, 1)


class TestDeclaredShapeEquivalence:
    """The compiled engine's declared-shape overrides vs the real hooks.

    The cross-route matrix already pins full-run bit-identity; these tests
    pin it at the engine level, per algorithm, so a shape regression is
    attributed to the override rather than to route plumbing.
    """

    @pytest.mark.parametrize("name", ENGINE_SHAPED)
    def test_engine_runs_bit_identical(self, graph, name):
        info = ALGORITHM_REGISTRY[name]
        config = info.config_factory(seed=13)
        seeds = [int(s) for s in range(0, graph.num_vertices, 15)]
        results = {}
        for use_compiled in (False, None):
            sampler = GraphSampler(
                graph, info.program_factory(), config,
                use_compiled=use_compiled,
            )
            assert isinstance(sampler.engine, CompiledStepEngine) == (
                use_compiled is None
            )
            results[use_compiled] = sampler.run(seeds)
        interp, compiled = results[False], results[None]
        assert interp.iteration_counts == compiled.iteration_counts
        assert interp.cost.as_dict() == compiled.cost.as_dict()
        for a, b in zip(interp.samples, compiled.samples):
            assert np.array_equal(a.edges, b.edges)
