"""Structure-cache lifecycle: hits, eviction, and incremental patching."""

import numpy as np
import pytest

from repro.compiled import (
    bind_structures,
    clear_structure_cache,
    evict_graph,
    get_structures,
    structure_cache_stats,
    update_structures,
)
from repro.graph.delta import DeltaGraph
from repro.graph.generators import powerlaw_graph


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_structure_cache()
    yield
    clear_structure_cache()


@pytest.fixture
def graph():
    return powerlaw_graph(200, 5.0, seed=3)


class TestCacheLifecycle:
    def test_second_fetch_hits(self, graph):
        first = get_structures(graph, "weight_or_degree")
        second = get_structures(graph, "weight_or_degree")
        assert first is second
        stats = structure_cache_stats()
        assert (stats["entries"], stats["hits"], stats["misses"]) == (1, 1, 1)

    def test_kinds_build_independently_on_one_entry(self, graph):
        entry = get_structures(graph, "weight_or_degree")
        assert get_structures(graph, "node2vec") is entry
        assert entry.has("weight_or_degree") and entry.has("node2vec")
        stats = structure_cache_stats()
        assert (stats["entries"], stats["builds"]) == (1, 2)

    def test_epoch_retirement_evicts(self, graph):
        get_structures(graph, "weight_or_degree")
        assert evict_graph(graph)
        stats = structure_cache_stats()
        assert (stats["entries"], stats["evictions"]) == (0, 1)
        # A second eviction of the same graph is a no-op.
        assert not evict_graph(graph)
        # The next fetch rebuilds from scratch.
        get_structures(graph, "weight_or_degree")
        assert structure_cache_stats()["misses"] == 2

    def test_garbage_collected_graph_evicts(self):
        import gc

        graph = powerlaw_graph(64, 4.0, seed=9)
        get_structures(graph, "weight_or_degree")
        assert structure_cache_stats()["entries"] == 1
        del graph
        gc.collect()
        assert structure_cache_stats()["entries"] == 0


class TestIncrementalUpdates:
    def test_delta_publish_patches_instead_of_rebuilding(self, graph):
        get_structures(graph, "weight_or_degree")
        delta = DeltaGraph(graph)
        bind_structures(delta)
        delta.add_edge(0, 5)
        delta.add_edge(5, 0)
        delta.compact()
        new_graph = delta.base

        stats = structure_cache_stats()
        assert stats["updates"] == 1
        # The patch rebuilt only the touched rows (plus their in-neighbor
        # rows for the degree bias), never the whole graph.
        assert 0 < stats["rows_rebuilt"] < graph.num_vertices
        # The patched entry serves the new graph as a hit ...
        patched = get_structures(new_graph, "weight_or_degree")
        assert structure_cache_stats()["hits"] == stats["hits"] + 1
        patched_bias = patched.flat_bias.copy()
        patched_prefix = patched.ctps.prefix.copy()
        patched_totals = patched.ctps.totals.copy()
        patched_counts = patched.positive_counts.copy()
        # ... and is bitwise identical to a from-scratch build.
        assert evict_graph(new_graph)
        fresh = get_structures(new_graph, "weight_or_degree")
        assert np.array_equal(patched_bias, fresh.flat_bias)
        assert np.array_equal(patched_prefix, fresh.ctps.prefix)
        assert np.array_equal(patched_totals, fresh.ctps.totals)
        assert np.array_equal(patched_counts, fresh.positive_counts)

    def test_update_without_cached_entry_is_lazy(self, graph):
        delta = DeltaGraph(graph)
        delta.add_edge(1, 7)
        new_graph = delta.to_csr()
        assert update_structures(graph, new_graph, [1, 7]) == 0
        assert structure_cache_stats()["entries"] == 0

    def test_node2vec_keys_follow_the_update(self, graph):
        entry = get_structures(graph, "node2vec")
        old_keys = entry.sorted_edge_keys
        delta = DeltaGraph(graph)
        bind_structures(delta)
        delta.add_edge(2, 9)
        delta.compact()
        new_entry = get_structures(delta.base, "node2vec")
        assert new_entry.has("node2vec")
        assert new_entry.sorted_edge_keys.size == old_keys.size + 1


class TestNode2VecTableReuse:
    def test_second_run_reuses_prefix_rows(self, graph):
        from repro.algorithms.node2vec import Node2Vec
        from repro.api.sampler import GraphSampler

        config = Node2Vec.default_config(seed=4)
        seeds = list(range(0, graph.num_vertices, 20))
        first = GraphSampler(graph, Node2Vec(), config)
        assert first.plan(seeds).step_tier == "compiled"
        first.run(seeds)
        after_first = structure_cache_stats()
        assert after_first["table_misses"] > 0
        # A second request over the same graph answers its transitions from
        # the cached per-edge prefix rows instead of re-scanning.
        GraphSampler(graph, Node2Vec(), config).run(seeds)
        after_second = structure_cache_stats()
        assert after_second["table_hits"] > after_first["table_hits"]


class TestServiceEpochRetirement:
    def test_retiring_epoch_evicts_structures(self):
        from repro.service import SamplingClient, SamplingService

        graph = powerlaw_graph(80, 4.0, seed=6)
        svc = SamplingService(
            num_workers=1, mode="thread",
            batch_window_s=0.0, max_batch_requests=1,
        )
        try:
            svc.load_graph("g", graph)
            client = SamplingClient(svc)
            client.sample("g", "biased_random_walk", [0, 1], depth=4,
                          seed=2, timeout=30)
            assert structure_cache_stats()["entries"] >= 1
            before = structure_cache_stats()["evictions"]
            svc.update_graph("g", add_edges=[(0, 7), (7, 0)])
            svc.drain(10.0)
            # Epoch 0 retires once its requests drain; its structures go
            # with it (thread workers share this process's cache).
            assert structure_cache_stats()["evictions"] > before
        finally:
            svc.shutdown()
