"""Direct equivalence scenarios for the fused walk kernel.

The cross-route matrix covers every registry algorithm at its default
config; these tests push the compiled kernel through the shapes that stress
its array program specifically: ragged multi-vertex pools, weighted biases,
non-trivial node2vec parameters, fanout > 1, dead-end early termination and
warp-counter continuity across runs of one sampler.
"""

import numpy as np
import pytest

from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.random_walk import BiasedRandomWalk, SimpleRandomWalk
from repro.api.sampler import GraphSampler
from repro.compiled import NUMBA_AVAILABLE, force_backend
from repro.graph.builder import from_edge_list


def assert_bit_identical(a, b, *, kernels=True):
    assert len(a.samples) == len(b.samples)
    for sa, sb in zip(a.samples, b.samples):
        assert sa.instance_id == sb.instance_id
        assert np.array_equal(sa.seeds, sb.seeds)
        assert np.array_equal(sa.edges, sb.edges)
    assert a.cost.as_dict() == b.cost.as_dict()
    assert a.iteration_counts == b.iteration_counts
    if kernels:
        assert len(a.kernels) == len(b.kernels)
        for ka, kb in zip(a.kernels, b.kernels):
            assert ka.name == kb.name
            assert ka.cost.as_dict() == kb.cost.as_dict()
            assert ka.num_warp_tasks == kb.num_warp_tasks


def run_both(graph, program_factory, config, seeds):
    compiled_sampler = GraphSampler(graph, program_factory(), config)
    assert compiled_sampler.plan(seeds).step_tier == "compiled"
    compiled = compiled_sampler.run(seeds)
    interpreted = GraphSampler(
        graph, program_factory(), config, use_compiled=False
    ).run(seeds)
    assert_bit_identical(interpreted, compiled)
    return compiled


class TestWalkKernelScenarios:
    def test_ragged_multi_vertex_pools(self, small_powerlaw_graph):
        # Seed *groups*: instances start with pools of different sizes, so
        # every depth step is a ragged segmented batch.
        seeds = [[0], [3, 7, 11], [20, 21], [30, 31, 32, 33], [40]]
        config = SimpleRandomWalk.default_config(depth=5, seed=7)
        run_both(small_powerlaw_graph, SimpleRandomWalk, config, seeds)

    def test_weighted_biased_walk(self, small_weighted_graph):
        config = BiasedRandomWalk.default_config(depth=6, seed=3)
        run_both(small_weighted_graph, BiasedRandomWalk, config, list(range(0, 500, 11)))

    def test_unweighted_biased_walk_uses_degrees(self, small_powerlaw_graph):
        config = BiasedRandomWalk.default_config(depth=6, seed=3)
        run_both(small_powerlaw_graph, BiasedRandomWalk, config, list(range(0, 500, 11)))

    @pytest.mark.parametrize("p,q", [(0.25, 4.0), (4.0, 0.25), (1.0, 1.0)])
    def test_node2vec_parameters(self, small_weighted_graph, p, q):
        config = Node2Vec.default_config(depth=6, seed=5)
        run_both(
            small_weighted_graph, lambda: Node2Vec(p=p, q=q), config,
            list(range(0, 500, 17)),
        )

    def test_fanout_above_one(self, small_powerlaw_graph):
        # neighbor_size > 1 keeps walks eligible (fixed fanout, with
        # replacement); pools now grow by ns per vertex per depth.
        config = SimpleRandomWalk.default_config(depth=3, neighbor_size=3, seed=2)
        run_both(small_powerlaw_graph, SimpleRandomWalk, config, list(range(0, 100, 9)))

    def test_dead_ends_terminate_early(self):
        # Directed chain into sinks: walkers die before the configured depth,
        # so the kernel must stop emitting depth kernels exactly where the
        # interpreted loop does (and mark everything finished).
        edges = [(0, 1), (1, 2), (2, 3), (4, 3), (5, 4)]
        graph = from_edge_list(edges, num_vertices=7, symmetrize=False)
        config = SimpleRandomWalk.default_config(depth=8, seed=1)
        result = run_both(graph, SimpleRandomWalk, config, [0, 2, 3, 5, 6])
        assert len(result.kernels) < config.depth

    def test_warp_counter_continuity_across_runs(self, small_powerlaw_graph):
        # Two runs on one sampler continue the warp-id sequence; compiled and
        # interpreted samplers must stay aligned run after run.
        config = SimpleRandomWalk.default_config(depth=4, seed=13)
        compiled_sampler = GraphSampler(
            small_powerlaw_graph, SimpleRandomWalk(), config
        )
        interp_sampler = GraphSampler(
            small_powerlaw_graph, SimpleRandomWalk(), config, use_compiled=False
        )
        for seeds in ([0, 1, 2], [10, 20], [33]):
            assert_bit_identical(
                interp_sampler.run(seeds), compiled_sampler.run(seeds)
            )
        assert (
            compiled_sampler.engine.warp_counter
            == interp_sampler.engine.warp_counter
            > 0
        )

    def test_iteration_counts_are_python_ints(self, small_powerlaw_graph):
        # The sink micro-fix contract: plain python ints, identical values.
        config = SimpleRandomWalk.default_config(depth=4, seed=1)
        for use_compiled in (None, False):
            result = GraphSampler(
                small_powerlaw_graph, SimpleRandomWalk(), config,
                use_compiled=use_compiled,
            ).run([0, 1, 2])
            assert result.iteration_counts
            assert all(type(i) is int for i in result.iteration_counts)


class TestBackends:
    def test_forced_numpy_matches_default(self, small_powerlaw_graph):
        config = SimpleRandomWalk.default_config(depth=5, seed=4)
        seeds = list(range(0, 200, 7))
        with force_backend("numpy"):
            forced = GraphSampler(
                small_powerlaw_graph, SimpleRandomWalk(), config
            ).run(seeds)
        default = GraphSampler(
            small_powerlaw_graph, SimpleRandomWalk(), config
        ).run(seeds)
        assert_bit_identical(forced, default)

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_numba_backend_is_bit_identical(self, small_powerlaw_graph):
        config = SimpleRandomWalk.default_config(depth=6, seed=4)
        seeds = list(range(0, 500, 7))
        with force_backend("numba"):
            jitted = GraphSampler(
                small_powerlaw_graph, SimpleRandomWalk(), config
            ).run(seeds)
        with force_backend("numpy"):
            plain = GraphSampler(
                small_powerlaw_graph, SimpleRandomWalk(), config
            ).run(seeds)
        assert_bit_identical(jitted, plain)

    def test_force_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            with force_backend("cuda"):
                pass  # pragma: no cover

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_force_numba_without_numba_raises(self):
        with pytest.raises(RuntimeError):
            with force_backend("numba"):
                pass  # pragma: no cover
