"""Kernel-cache keying: hits, misses, and invalidation."""

import pytest

from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.random_walk import SimpleRandomWalk
from repro.api.instance import make_instances
from repro.compiled import (
    clear_kernel_cache,
    get_kernel_spec,
    kernel_cache_stats,
)
from repro.compiled import backends as backends_mod
from repro.graph.generators import powerlaw_graph
from repro.planner.planner import PlanRequest, plan


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(120, 5.0, seed=2)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_kernel_cache()
    yield
    clear_kernel_cache()


def make_plan(graph, program, config, *, members=None, seeds=(0, 1, 2)):
    if members is not None:
        return plan(PlanRequest(
            graph=graph, program=program, config=config,
            members=[make_instances(list(m)) for m in members],
            force_route="coalesced",
        ))
    return plan(PlanRequest(
        graph=graph, program=program, config=config,
        instances=make_instances(list(seeds)), force_route="in_memory",
    ))


class TestKernelCache:
    def test_same_shape_hits(self, graph):
        program = SimpleRandomWalk()
        config = SimpleRandomWalk.default_config()
        p1 = make_plan(graph, program, config, seeds=(0, 1, 2))
        p2 = make_plan(graph, program, config, seeds=(5, 6, 7, 8))  # shape-equal
        s1 = get_kernel_spec(program, config, p1)
        s2 = get_kernel_spec(program, config, p2)
        assert s1 is s2
        stats = kernel_cache_stats()
        assert (stats["entries"], stats["hits"], stats["misses"]) == (1, 1, 1)

    def test_config_and_program_divergence_miss(self, graph):
        program = SimpleRandomWalk()
        c1 = SimpleRandomWalk.default_config()
        c2 = SimpleRandomWalk.default_config(depth=4)
        get_kernel_spec(program, c1, make_plan(graph, program, c1))
        get_kernel_spec(program, c2, make_plan(graph, program, c2))
        assert kernel_cache_stats()["entries"] == 2

    def test_plan_shape_divergence_miss(self, graph):
        program = SimpleRandomWalk()
        config = SimpleRandomWalk.default_config()
        solo = make_plan(graph, program, config)
        fused = make_plan(graph, program, config, members=[(0, 1), (2, 3)])
        get_kernel_spec(program, config, solo)
        get_kernel_spec(program, config, fused)
        stats = kernel_cache_stats()
        assert (stats["entries"], stats["misses"]) == (2, 2)

    def test_node2vec_parameters_key_the_cache(self, graph):
        config = Node2Vec.default_config()
        a, b = Node2Vec(p=0.5, q=2.0), Node2Vec(p=2.0, q=0.5)
        get_kernel_spec(a, config, make_plan(graph, a, config))
        get_kernel_spec(b, config, make_plan(graph, b, config))
        assert kernel_cache_stats()["entries"] == 2

    def test_backend_fingerprint_invalidates(self, graph, monkeypatch):
        program = SimpleRandomWalk()
        config = SimpleRandomWalk.default_config()
        execution_plan = make_plan(graph, program, config)
        get_kernel_spec(program, config, execution_plan)
        # A changed backend environment (numba appearing/disappearing, or a
        # forced backend) must never serve the previously cached kernel.
        monkeypatch.setattr(backends_mod, "_backend_override", "numpy")
        get_kernel_spec(program, config, execution_plan)
        stats = kernel_cache_stats()
        assert (stats["entries"], stats["misses"], stats["hits"]) == (2, 2, 0)

    def test_ineligible_raises(self, graph):
        # Stateful-hook programs are the remaining ineligible shape (config
        # variations now demote to the engine kernel instead of rejecting).
        from repro.algorithms.metropolis_hastings import MetropolisHastingsWalk

        walk_program = SimpleRandomWalk()
        eligible_config = SimpleRandomWalk.default_config()
        execution_plan = make_plan(graph, walk_program, eligible_config)
        program = MetropolisHastingsWalk()
        with pytest.raises(ValueError, match="not compilable"):
            get_kernel_spec(program, eligible_config, execution_plan)

    def test_engine_kind_for_non_walk_shapes(self, graph):
        from repro.compiled import instantiate_kernel

        program = SimpleRandomWalk()
        config = SimpleRandomWalk.default_config(with_replacement=False)
        execution_plan = make_plan(graph, program, config)
        spec = get_kernel_spec(program, config, execution_plan)
        assert spec.kernel == "engine"
        assert spec.backend == "numpy"
        # Engine-kind specs have no separate kernel object: the compiled
        # step engine itself is the kernel.
        assert instantiate_kernel(spec, engine=None) is None
