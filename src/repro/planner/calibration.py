"""Host calibration for the planner's analytic cost model.

The roofline model in :mod:`repro.gpusim.costmodel` predicts *simulated
device* time; the planner compares plans and sheds load against *host wall
time*.  On the seed hosts the two disagreed by a large constant factor (the
shipped ``benchmarks/results/BENCH_planner.json`` records actual/predicted
ratios between ~1.5x and ~26x), so every absolute-time decision the planner
makes was systematically off.

This module closes the gap with a single fitted constant: ``time_scale`` is
the geometric mean of observed ``actual_time_s / predicted_time_s`` ratios
from a planner benchmark run.  The geometric mean is the right location
estimate here because the ratios are multiplicative errors spread over an
order of magnitude -- an arithmetic mean would let the one 26x outlier
dominate.  The planner multiplies every predicted time by ``time_scale``
before comparing tiers or shedding load, and plans report the result as
``calibrated_time_s``.

The calibration also carries the compiled tier's cost parameters:
``compiled_speedup`` (how much faster the fused kernel runs the same plan;
the shipped value is the benchmark gate's floor) and ``compiled_overhead_s``
(per-run specialisation cost; effectively zero because kernels are cached by
plan shape).

Calibrations persist as JSON next to the benchmark baselines
(``benchmarks/baselines/calibration.json``).  ``REPRO_CALIBRATION`` points at
an alternate file; a missing file falls back to the built-in defaults so the
library works from a bare checkout or an installed wheel.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Tuple

__all__ = [
    "Calibration",
    "DEFAULT_PATH",
    "clear_calibration_cache",
    "fit_calibration",
    "fit_from_telemetry",
    "load_calibration",
    "save_calibration",
]

#: Shipped location: next to the perf-gate baselines.
DEFAULT_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "baselines" / "calibration.json"
)

_ENV_VAR = "REPRO_CALIBRATION"


@dataclass(frozen=True)
class Calibration:
    """Fitted host constants layered on top of the analytic cost model."""

    #: Multiplier from predicted (simulated-device) seconds to host seconds.
    time_scale: float = 1.0
    #: Expected compiled-tier speedup over interpretation for eligible plans.
    compiled_speedup: float = 3.0
    #: Per-run compiled specialisation overhead (cache-amortised, so ~0).
    compiled_overhead_s: float = 0.0
    #: Provenance: ``"bench:route"`` labels of the records the fit used.
    fitted_from: Tuple[str, ...] = field(default_factory=tuple)

    def calibrated_time_s(self, predicted_time_s: float) -> float:
        """Predicted host wall time for an interpreted run."""
        return float(predicted_time_s) * self.time_scale


def fit_calibration(
    records: Sequence[dict],
    *,
    compiled_speedup: float = 3.0,
    compiled_overhead_s: float = 0.0,
) -> Calibration:
    """Fit ``time_scale`` from planner benchmark records.

    Each usable record needs positive ``actual_time_s`` and
    ``predicted_time_s``; ``time_scale`` is the geometric mean of their
    ratios.  Raises ``ValueError`` when no record is usable.
    """
    logs = []
    labels = []
    for rec in records:
        actual = float(rec.get("actual_time_s", 0.0))
        predicted = float(rec.get("predicted_time_s", 0.0))
        if actual <= 0.0 or predicted <= 0.0:
            continue
        logs.append(math.log(actual / predicted))
        labels.append(f"{rec.get('bench', '?')}:{rec.get('route', '?')}")
    if not logs:
        raise ValueError("no records with positive actual/predicted times to fit")
    return Calibration(
        time_scale=math.exp(sum(logs) / len(logs)),
        compiled_speedup=compiled_speedup,
        compiled_overhead_s=compiled_overhead_s,
        fitted_from=tuple(labels),
    )


def fit_from_telemetry(
    sink=None,
    *,
    compiled_speedup: float = 3.0,
    compiled_overhead_s: float = 0.0,
) -> Calibration:
    """Fit a calibration from live plan-cost feedback instead of shipped
    benchmark records.

    When telemetry is enabled every executed plan deposits a
    predicted-vs-actual record into
    :data:`repro.telemetry.feedback.FEEDBACK` (or the ``sink`` given here);
    those records use the same keys as the benchmark files, so this is
    :func:`fit_calibration` over whatever traffic the process has actually
    served.  Raises ``ValueError`` when the sink holds no usable records
    (e.g. telemetry was never enabled).
    """
    if sink is None:
        from repro.telemetry.feedback import FEEDBACK as sink
    return fit_calibration(
        sink.records(),
        compiled_speedup=compiled_speedup,
        compiled_overhead_s=compiled_overhead_s,
    )


def save_calibration(cal: Calibration, path: Optional[Path] = None) -> Path:
    """Write a calibration as JSON; returns the path written."""
    target = Path(path) if path is not None else DEFAULT_PATH
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = asdict(cal)
    payload["fitted_from"] = list(cal.fitted_from)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def _load_from_file(path: Path) -> Calibration:
    payload = json.loads(path.read_text())
    return Calibration(
        time_scale=float(payload.get("time_scale", 1.0)),
        compiled_speedup=float(payload.get("compiled_speedup", 3.0)),
        compiled_overhead_s=float(payload.get("compiled_overhead_s", 0.0)),
        fitted_from=tuple(payload.get("fitted_from", ())),
    )


_CACHE: Optional[Calibration] = None
_CACHE_SOURCE: Optional[str] = None


def load_calibration(path: Optional[Path] = None) -> Calibration:
    """The active calibration.

    Resolution order: explicit ``path`` argument (never cached), then the
    ``REPRO_CALIBRATION`` environment variable, then the shipped
    ``benchmarks/baselines/calibration.json``, then built-in defaults.  The
    env/shipped lookup is cached per source; tests use
    :func:`clear_calibration_cache` after repointing the env var.
    """
    if path is not None:
        return _load_from_file(Path(path))
    global _CACHE, _CACHE_SOURCE
    source = os.environ.get(_ENV_VAR) or str(DEFAULT_PATH)
    if _CACHE is not None and _CACHE_SOURCE == source:
        return _CACHE
    target = Path(source)
    cal = _load_from_file(target) if target.is_file() else Calibration()
    _CACHE = cal
    _CACHE_SOURCE = source
    return cal


def clear_calibration_cache() -> None:
    """Forget the cached calibration (tests that repoint ``REPRO_CALIBRATION``)."""
    global _CACHE, _CACHE_SOURCE
    _CACHE = None
    _CACHE_SOURCE = None
