"""The declarative execution plan.

An :class:`ExecutionPlan` is everything the runtime needs to know about *how*
a sampling request will execute, decided before anything runs: the route
(which tier samples it), the partition layout (how the graph is split for
that tier), the fusion grouping (which members share one engine batch) and
the warp-cursor assignment (which RNG-stream numbering keeps the run
bit-identical to a standalone one).  Plans are plain picklable data -- they
cross the service's process boundary and are cached per
``(graph, epoch, algorithm, config)``.

:meth:`ExecutionPlan.explain` renders the plan as a human-readable dry run;
the service exposes the same information as ``SampleResponse.plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.api.config import SamplingConfig
from repro.gpusim.costmodel import CostModel
from repro.oom.scheduler import OutOfMemoryConfig

__all__ = ["PartitionLayout", "ExecutionPlan"]

#: Valid ``ExecutionPlan.route`` values.
ROUTES = ("in_memory", "coalesced", "out_of_memory", "sharded")


def _format_bytes(nbytes: int) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class PartitionLayout:
    """How the graph is split for the plan's route.

    ``kind`` is ``"none"`` (in-memory / coalesced: the whole CSR is
    resident), ``"oom_partitions"`` (serial partition scheduling through
    device memory, described by ``oom``) or ``"shard_ranges"`` (one
    contiguous vertex range per cluster shard, ``boundaries`` as produced by
    :func:`repro.graph.partition.partition_bounds`).
    """

    kind: str = "none"
    num_partitions: int = 1
    #: Shard-range boundaries (``kind == "shard_ranges"``), length
    #: ``num_partitions + 1``.
    boundaries: Tuple[int, ...] = ()
    #: Out-of-memory scheduling switches (``kind == "oom_partitions"``).
    oom: Optional[OutOfMemoryConfig] = None

    def describe(self, graph_nbytes: int) -> str:
        """One explain() line for this layout."""
        if self.kind == "oom_partitions":
            oom = self.oom or OutOfMemoryConfig()
            opts = "+".join(
                label
                for flag, label in (
                    (oom.batched, "BA"),
                    (oom.workload_aware, "WS"),
                    (oom.balanced_blocks, "BAL"),
                )
                if flag
            ) or "baseline"
            per = _format_bytes(graph_nbytes // max(oom.num_partitions, 1))
            return (
                f"{oom.num_partitions} scheduled partitions (~{per} each), "
                f"max resident {oom.max_resident_partitions}, "
                f"{oom.num_kernels} concurrent kernels, {opts}"
            )
        if self.kind == "shard_ranges":
            per = _format_bytes(graph_nbytes // max(self.num_partitions, 1))
            return (
                f"{self.num_partitions} cluster shards (~{per} each), "
                f"contiguous vertex ranges {list(self.boundaries)}"
            )
        return "whole graph resident (no partitioning)"


@dataclass(frozen=True)
class ExecutionPlan:
    """Declarative description of how one sampling run will execute."""

    #: ``"in_memory"``, ``"coalesced"``, ``"out_of_memory"`` or ``"sharded"``.
    route: str
    config: SamplingConfig
    #: Registry algorithm name when known (service / cluster entry points).
    algorithm: Optional[str] = None
    #: The resolved program's class name (always known).
    program_name: str = ""
    #: Whether the program's hooks allow sharing an engine batch.
    coalescable: bool = True
    num_instances: int = 0
    #: Fusion grouping: instance count of each member sharing the batch
    #: (one entry for standalone runs, one per request when coalesced).
    member_sizes: Tuple[int, ...] = ()
    #: Warp-cursor assignment: ``"global"`` (one engine-wide cursor),
    #: ``"per_member"`` (coalesced: each member replays its standalone
    #: stream) or ``"per_walker"`` (sharded: the cursor migrates with the
    #: walker).
    warp_cursors: str = "global"
    layout: PartitionLayout = field(default_factory=PartitionLayout)
    #: Graph footprint the routing decision was made against.
    graph_num_vertices: int = 0
    graph_num_edges: int = 0
    graph_nbytes: int = 0
    memory_budget_bytes: Optional[int] = None
    #: Analytic cost estimate (see :mod:`repro.planner.cost`).
    predicted_cost: Optional[CostModel] = None
    predicted_time_s: float = 0.0
    #: Which step engine runs the depth loop: ``"interpreted"`` (the hook
    #: dispatching :class:`~repro.engine.step.BatchedStepEngine`) or
    #: ``"compiled"`` (a plan-specialised fused kernel, see
    #: :mod:`repro.compiled`).
    step_tier: str = "interpreted"
    #: Compiled backend (``"numpy"`` / ``"numba"``) when ``step_tier`` is
    #: ``"compiled"``.
    compiled_backend: Optional[str] = None
    #: Why the plan interprets, when a compiled tier exists but was not
    #: chosen (eligibility failure, route, cost model, or disabled).
    compiled_fallback: Optional[str] = None
    #: ``predicted_time_s`` scaled by the host calibration constant
    #: (:mod:`repro.planner.calibration`): the planner's estimate of actual
    #: wall time for the chosen tier.
    calibrated_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.route not in ROUTES:
            raise ValueError(f"unknown route {self.route!r}; known: {ROUTES}")

    # ------------------------------------------------------------------ #
    @property
    def over_budget(self) -> bool:
        """Whether the graph exceeds the memory budget the plan saw."""
        return (
            self.memory_budget_bytes is not None
            and self.graph_nbytes > self.memory_budget_bytes
        )

    # ------------------------------------------------------------------ #
    def explain(self) -> str:
        """Human-readable dry run: route, sizing, fusion, predicted cost."""
        budget = (
            "no memory budget"
            if self.memory_budget_bytes is None
            else f"budget {_format_bytes(self.memory_budget_bytes)}"
            + (" -> over budget" if self.over_budget else " -> fits")
        )
        cfg = self.config
        program = self.program_name or "?"
        if self.algorithm and self.algorithm != self.program_name:
            program = f"{self.algorithm} ({self.program_name})"
        members = (
            f"{len(self.member_sizes)} fusion group(s) "
            f"of sizes {list(self.member_sizes)}"
            if len(self.member_sizes) > 1
            else "1 fusion group"
        )
        lines = [
            f"ExecutionPlan: route={self.route}",
            f"  graph: {self.graph_num_vertices} vertices, "
            f"{self.graph_num_edges} edges, "
            f"{_format_bytes(self.graph_nbytes)} ({budget})",
            f"  program: {program} "
            f"({'coalescable' if self.coalescable else 'stateful hooks, never fused'})",
            f"  config: depth={cfg.depth}, neighbor_size={cfg.neighbor_size}, "
            f"frontier_size={cfg.frontier_size}, scope={cfg.scope.value}, "
            f"strategy={cfg.strategy.value}, seed={cfg.seed}",
            f"  instances: {self.num_instances} in {members}; "
            f"warp cursors: {self.warp_cursors}",
            f"  layout: {self.layout.describe(self.graph_nbytes)}",
        ]
        if self.step_tier == "compiled":
            lines.append(f"  step tier: compiled ({self.compiled_backend} backend)")
        else:
            tier = "  step tier: interpreted"
            if self.compiled_fallback:
                tier += f" ({self.compiled_fallback})"
            lines.append(tier)
        if self.predicted_cost is not None:
            pc = self.predicted_cost
            lines.append(
                f"  predicted: {self.predicted_time_s:.3e} s simulated "
                f"(rng_draws={pc.rng_draws}, sampled_edges={pc.sampled_edges}, "
                f"global_bytes={pc.global_bytes}, h2d_bytes={pc.h2d_bytes}, "
                f"kernel_launches={pc.kernel_launches})"
            )
        if self.calibrated_time_s > 0.0:
            lines.append(
                f"  calibrated: {self.calibrated_time_s:.3e} s host wall estimate"
            )
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        """Flat picklable summary (``SampleResponse.plan`` metadata)."""
        out: Dict[str, object] = {
            "route": self.route,
            "algorithm": self.algorithm,
            "program": self.program_name,
            "coalescable": self.coalescable,
            "num_instances": self.num_instances,
            "member_sizes": list(self.member_sizes),
            "warp_cursors": self.warp_cursors,
            "layout": self.layout.kind,
            "num_partitions": self.layout.num_partitions,
            "graph_nbytes": self.graph_nbytes,
            "memory_budget_bytes": self.memory_budget_bytes,
            "over_budget": self.over_budget,
            "predicted_time_s": self.predicted_time_s,
            "step_tier": self.step_tier,
            "compiled_backend": self.compiled_backend,
            "compiled_fallback": self.compiled_fallback,
            "calibrated_time_s": self.calibrated_time_s,
            "explain": self.explain(),
        }
        if self.predicted_cost is not None:
            out["predicted_sampled_edges"] = self.predicted_cost.sampled_edges
        return out
