"""``plan(request) -> ExecutionPlan``: the one place routing is decided.

Every sampling entry point -- :class:`~repro.api.sampler.GraphSampler`,
:class:`~repro.oom.scheduler.OutOfMemorySampler`,
:func:`~repro.engine.hetero.run_coalesced`, the sharded cluster and the
sampling service -- builds a :class:`~repro.planner.plan.ExecutionPlan`
here before executing it on the shared
:class:`~repro.planner.executor.Executor`.

The planner inspects:

* **graph size vs memory budget** -- an over-budget CSR leaves the
  in-memory tier;
* **shard count** -- a non-zero ``cluster_shards`` makes the sharded tier
  available for over-budget graphs, sized so every shard's partition fits
  the budget;
* **program coalescability / statefulness** -- stateful-hook programs never
  share an engine batch (they run as singleton members with per-walker
  replicas on the sharded tier);
* **the cost-model estimate** (:mod:`repro.planner.cost`) -- when both
  over-budget tiers are available, the predicted simulated time picks the
  winner (the sharded tier's parallel shards beat the serial
  partition-scheduled sampler on every realistic layout, and the estimate
  records *why* in the plan).

Seed validation happens at plan time, uniformly: every entry point raises
the same :class:`~repro.planner.errors.SeedValidationError` for an empty
seed list, out-of-range vertex ids or duplicate seeds inside one instance's
pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.api.bias import SamplingProgram
from repro.api.config import SamplingConfig
from repro.api.instance import InstanceState, validate_seed_instances
from repro.gpusim.device import DeviceSpec, V100_SPEC
from repro.oom.scheduler import OutOfMemoryConfig
from repro.planner.cost import predict_cost, predict_time_s
from repro.planner.errors import PlanError, SeedValidationError
from repro.planner.plan import ExecutionPlan, PartitionLayout

__all__ = [
    "GraphStats",
    "PlanRequest",
    "plan",
    "plan_admission",
    "plan_route",
    "scale_plan",
    "validate_seed_tuples",
]


# --------------------------------------------------------------------------- #
# Plan-time seed validation (service fast path: no InstanceState needed)
# --------------------------------------------------------------------------- #
def validate_seed_tuples(
    seeds: Sequence,
    num_vertices: int,
    *,
    num_instances: Optional[int] = None,
    reject_duplicates: bool = False,
) -> int:
    """Validate a request's normalized seed tuples; returns the instance count.

    Mirrors :func:`repro.api.instance.validate_seed_instances` -- same
    checks, same :class:`SeedValidationError` -- without materialising the
    instances (the service validates at submit time, before dispatch).
    """
    seeds = list(seeds)
    if not seeds:
        raise SeedValidationError("at least one seed is required")
    nested = isinstance(seeds[0], (list, tuple, np.ndarray))
    count = len(seeds) if num_instances is None else int(num_instances)
    # Mirror make_instances' truncation: with num_instances < len(seeds)
    # only the leading seeds become instances, so only those are validated
    # (round-robin extension reuses values already checked).
    if num_instances is not None and num_instances < len(seeds):
        seeds = seeds[:num_instances]
    if not nested:
        flat = np.asarray(seeds, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= num_vertices):
            raise SeedValidationError(
                f"seed vertices outside [0, {num_vertices})"
            )
        return count
    for index, pool in enumerate(seeds):
        pool = np.asarray(pool, dtype=np.int64).reshape(-1)
        if pool.size == 0:
            raise SeedValidationError(f"instance {index} has no seed vertices")
        if pool.min() < 0 or pool.max() >= num_vertices:
            raise SeedValidationError(
                f"instance {index} has seed vertices outside the graph"
            )
        if reject_duplicates and np.unique(pool).size != pool.size:
            raise SeedValidationError(
                f"instance {index} has duplicate seed vertices "
                "(sampling without replacement)"
            )
    return count


# --------------------------------------------------------------------------- #
# Plan requests
# --------------------------------------------------------------------------- #
@dataclass
class PlanRequest:
    """Everything the planner may inspect when routing one run.

    Facades fill the subset they know: the standalone samplers pass a live
    ``graph`` object, their resolved ``program`` and the instances they
    built; the service passes graph *stats* (from its shared-memory handle)
    plus the cached coalescability bit, and no instances (it validated the
    raw seed tuples at submit time).
    """

    graph: Optional[object] = None  # CSRGraph / DeltaGraph
    config: Optional[SamplingConfig] = None
    algorithm: Optional[str] = None
    program: Optional[SamplingProgram] = None
    #: Instances of a standalone run (validated at plan time).
    instances: Optional[Sequence[InstanceState]] = None
    #: Member instance lists of a coalesced run (validated at plan time).
    members: Optional[Sequence[Sequence[InstanceState]]] = None
    #: Instance count when neither instances nor members are given.
    num_instances: Optional[int] = None
    memory_budget_bytes: Optional[int] = None
    #: Sharded-tier floor; 0 keeps the tier unavailable.
    cluster_shards: int = 0
    oom_config: Optional[OutOfMemoryConfig] = None
    #: Shard-range boundaries already chosen by the caller (cluster facade).
    boundaries: Optional[np.ndarray] = None
    #: Pin the route instead of letting admission decide (facades that *are*
    #: a tier -- GraphSampler is in-memory by definition).
    force_route: Optional[str] = None
    #: Override when the program object is not available (service: cached).
    coalescable: Optional[bool] = None
    #: Graph stats when no graph object is available (service handles).
    graph_num_vertices: Optional[int] = None
    graph_num_edges: Optional[int] = None
    graph_nbytes: Optional[int] = None
    spec: DeviceSpec = field(default=V100_SPEC)
    #: Compiled step tier: ``None`` lets the calibrated cost model decide,
    #: ``True`` forces it for eligible plans, ``False`` disables it.
    allow_compiled: Optional[bool] = None


def plan_route(
    nbytes: int,
    *,
    memory_budget_bytes: Optional[int],
    cluster_shards: int,
    num_vertices: int = 0,
    num_edges: int = 0,
    config: Optional[SamplingConfig] = None,
    num_instances: int = 1,
    spec: DeviceSpec = V100_SPEC,
) -> str:
    """Admission decision alone: which tier serves a graph of ``nbytes``.

    Within budget is always ``"in_memory"``.  Over budget, the available
    tiers (``"sharded"`` when ``cluster_shards > 0``, ``"out_of_memory"``
    always) are ranked by the cost-model estimate when a config is known,
    and by the tier order (parallel shards before serial partition
    scheduling) otherwise.
    """
    if memory_budget_bytes is None or nbytes <= memory_budget_bytes:
        return "in_memory"
    if not cluster_shards:
        return "out_of_memory"
    if config is None or num_vertices == 0:
        return "sharded"
    graph_stats = GraphStats(num_vertices, num_edges, nbytes)
    num_shards = _shard_count(nbytes, memory_budget_bytes, cluster_shards)
    oom = _derive_oom_config(nbytes, memory_budget_bytes)
    sharded_time = predict_time_s(
        graph_stats, config, num_instances,
        route="sharded", num_shards=num_shards, spec=spec,
    )
    oom_time = predict_time_s(
        graph_stats, config, num_instances,
        route="out_of_memory",
        num_partitions=oom.num_partitions,
        max_resident_partitions=oom.max_resident_partitions,
        spec=spec,
    )
    return "sharded" if sharded_time <= oom_time else "out_of_memory"


class GraphStats:
    """Duck-typed stand-in for a CSRGraph when only stats are known."""

    def __init__(self, num_vertices: int, num_edges: int, nbytes: int):
        self.num_vertices = int(num_vertices)
        self.num_edges = int(num_edges)
        self.nbytes = int(nbytes)

    @property
    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices


def _shard_count(nbytes: int, budget: Optional[int], floor: int) -> int:
    """Configured floor, or more so every shard's partition fits the budget."""
    if budget is None:
        return max(int(floor), 1)
    needed = -(-int(nbytes) // max(int(budget), 1))
    return int(max(floor, needed, 1))


def _derive_oom_config(nbytes: int, budget: Optional[int]) -> OutOfMemoryConfig:
    """The admission-sized out-of-memory layout (the service's sizing rule)."""
    budget = budget if budget is not None else nbytes
    num_partitions = max(2, -(-int(nbytes) // max(int(budget), 1)))
    return OutOfMemoryConfig.fully_optimized(
        num_partitions=int(num_partitions),
        max_resident_partitions=2,
        num_kernels=2,
    )


def plan_admission(
    *,
    num_vertices: int,
    num_edges: int,
    nbytes: int,
    memory_budget_bytes: Optional[int],
    cluster_shards: int = 0,
    oom_config: Optional[OutOfMemoryConfig] = None,
) -> Tuple[str, PartitionLayout]:
    """Admission-time ``(route, layout)`` for one published graph epoch.

    This is the config-independent half of planning: the service calls it
    once per ``(graph, epoch)`` when a graph is loaded (or re-planned) and
    freezes the result, so later budget changes never resize an admitted
    graph's partitions out from under its documented sizing.  The
    config-dependent half (fusion grouping, predicted cost) is planned per
    ``(graph, epoch, algorithm, config)`` and cached.
    """
    route = plan_route(
        nbytes,
        memory_budget_bytes=memory_budget_bytes,
        cluster_shards=cluster_shards,
    )
    if route == "out_of_memory":
        oom = oom_config or _derive_oom_config(nbytes, memory_budget_bytes)
        layout = PartitionLayout(
            kind="oom_partitions", num_partitions=oom.num_partitions, oom=oom
        )
    elif route == "sharded":
        num_shards = min(
            _shard_count(nbytes, memory_budget_bytes, cluster_shards),
            max(num_vertices, 1),
        )
        # Boundaries stay unresolved: the executing worker's cluster facade
        # derives them from the shared graph (shard-count invariance makes
        # the exact split irrelevant to results).
        layout = PartitionLayout(kind="shard_ranges", num_partitions=num_shards)
    else:
        layout = PartitionLayout()
    return route, layout


def _predict_for_layout(
    stats: "GraphStats",
    config: SamplingConfig,
    num_instances: int,
    route: str,
    layout: PartitionLayout,
    spec: DeviceSpec,
):
    """Predicted ``(cost, time_s)`` for one routed layout.

    The single place that encodes how a layout feeds the cost model: an
    out-of-memory layout charges its partition transfers, a sharded layout
    divides the overlappable time by its shard count.
    """
    oom = layout.oom
    predicted = predict_cost(
        stats, config, num_instances,
        route="out_of_memory" if oom is not None else route,
        num_partitions=(
            oom.num_partitions if oom is not None else layout.num_partitions
        ),
        max_resident_partitions=(
            oom.max_resident_partitions if oom is not None else 1
        ),
    )
    predicted_time = predict_time_s(
        stats, config, num_instances,
        route=route,
        num_partitions=oom.num_partitions if oom is not None else 1,
        max_resident_partitions=(
            oom.max_resident_partitions if oom is not None else 1
        ),
        num_shards=layout.num_partitions if route == "sharded" else 1,
        spec=spec,
    )
    return predicted, predicted_time


def scale_plan(
    base: ExecutionPlan,
    member_sizes: Sequence[int],
    *,
    spec: DeviceSpec = V100_SPEC,
) -> ExecutionPlan:
    """Specialise a cached class-level plan to one dispatch unit.

    The service caches one :class:`ExecutionPlan` per ``(graph, epoch,
    algorithm, config)`` -- everything expensive (routing, layout sizing,
    coalescability probing) -- and cheaply re-scales it per batch: the
    fusion grouping becomes the unit's member sizes (an in-memory class
    with several members becomes a ``"coalesced"`` unit) and the predicted
    cost is recomputed for the unit's instance count from the closed-form
    model.
    """
    from dataclasses import replace

    member_sizes = tuple(int(m) for m in member_sizes)
    total = int(sum(member_sizes))
    route = base.route
    warp_cursors = base.warp_cursors
    if route == "in_memory" and len(member_sizes) > 1:
        route, warp_cursors = "coalesced", "per_member"
    stats = GraphStats(
        base.graph_num_vertices, base.graph_num_edges, base.graph_nbytes
    )
    predicted, predicted_time = _predict_for_layout(
        stats, base.config, total, route, base.layout, spec
    )
    # The tier decision carries over unchanged (eligibility is identical for
    # the in_memory and coalesced routes and depends only on program/config),
    # but the calibrated wall estimate tracks the rescaled prediction.
    from repro.planner.calibration import load_calibration

    calibration = load_calibration()
    calibrated_time = calibration.calibrated_time_s(predicted_time)
    if base.step_tier == "compiled":
        calibrated_time = (
            calibration.compiled_overhead_s
            + calibrated_time / calibration.compiled_speedup
        )
    return replace(
        base,
        route=route,
        warp_cursors=warp_cursors,
        num_instances=total,
        member_sizes=member_sizes,
        predicted_cost=predicted,
        predicted_time_s=predicted_time,
        calibrated_time_s=calibrated_time,
    )


# --------------------------------------------------------------------------- #
# The planner
# --------------------------------------------------------------------------- #
def plan(request: PlanRequest) -> ExecutionPlan:
    """Turn a :class:`PlanRequest` into a declarative :class:`ExecutionPlan`."""
    graph = request.graph
    if graph is not None:
        from repro.graph.delta import as_csr

        graph = as_csr(graph)
        num_vertices = graph.num_vertices
        num_edges = graph.num_edges
        nbytes = graph.nbytes
    else:
        if request.graph_num_vertices is None or request.graph_nbytes is None:
            raise PlanError("plan needs a graph or explicit graph stats")
        num_vertices = int(request.graph_num_vertices)
        num_edges = int(request.graph_num_edges or 0)
        nbytes = int(request.graph_nbytes)
    if num_vertices == 0:
        raise PlanError("cannot sample an empty graph")
    stats = GraphStats(num_vertices, num_edges, nbytes)

    config = request.config
    if config is None:
        if request.algorithm is None:
            raise PlanError("plan needs a config or a registry algorithm")
        from repro.algorithms.registry import default_config

        config = default_config(request.algorithm)

    program = request.program
    program_name = type(program).__name__ if program is not None else (
        request.algorithm or ""
    )
    if request.coalescable is not None:
        coalescable = bool(request.coalescable)
    elif program is not None:
        coalescable = bool(program.supports_coalescing)
    elif request.algorithm is not None:
        from repro.algorithms.registry import ALGORITHM_REGISTRY

        # Advisory only: an unknown algorithm must keep failing where it
        # always failed (program construction in the executing tier), not
        # at plan time.
        info = ALGORITHM_REGISTRY.get(request.algorithm)
        coalescable = (
            bool(info.program_factory().supports_coalescing)
            if info is not None
            else True
        )
    else:
        coalescable = True

    # ------------------------------------------------------------------ #
    # Seed validation: uniform, at plan time.
    # ------------------------------------------------------------------ #
    reject_duplicates = not config.with_replacement
    if request.members is not None:
        member_sizes = tuple(len(m) for m in request.members)
        flat = [inst for member in request.members for inst in member]
        validate_seed_instances(
            flat, num_vertices, reject_duplicates=reject_duplicates
        )
        num_instances = len(flat)
    elif request.instances is not None:
        validate_seed_instances(
            request.instances, num_vertices, reject_duplicates=reject_duplicates
        )
        num_instances = len(request.instances)
        member_sizes = (num_instances,)
    else:
        num_instances = int(request.num_instances or 1)
        member_sizes = (num_instances,)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    route = request.force_route
    if route is None:
        route = plan_route(
            nbytes,
            memory_budget_bytes=request.memory_budget_bytes,
            cluster_shards=request.cluster_shards,
            num_vertices=num_vertices,
            num_edges=num_edges,
            config=config,
            num_instances=num_instances,
            spec=request.spec,
        )
        if route == "in_memory" and len(member_sizes) > 1:
            route = "coalesced"
    if route == "coalesced" and len(member_sizes) > 1 and not coalescable:
        raise PlanError(
            f"program {program_name or '?'} has stateful hooks and cannot "
            "share a coalesced batch"
        )

    # ------------------------------------------------------------------ #
    # Partition layout
    # ------------------------------------------------------------------ #
    if route == "out_of_memory":
        oom = request.oom_config or _derive_oom_config(
            nbytes, request.memory_budget_bytes
        )
        layout = PartitionLayout(
            kind="oom_partitions", num_partitions=oom.num_partitions, oom=oom
        )
    elif route == "sharded":
        if request.boundaries is not None:
            boundaries = tuple(int(b) for b in np.asarray(request.boundaries))
            num_shards = len(boundaries) - 1
        else:
            num_shards = min(
                _shard_count(
                    nbytes, request.memory_budget_bytes, request.cluster_shards
                ),
                num_vertices,
            )
            if graph is not None:
                from repro.graph.partition import partition_bounds

                boundaries = tuple(
                    int(b) for b in partition_bounds(graph, num_shards)
                )
                num_shards = len(boundaries) - 1
            else:
                boundaries = ()  # resolved by the executing worker
        layout = PartitionLayout(
            kind="shard_ranges", num_partitions=num_shards, boundaries=boundaries
        )
    else:
        layout = PartitionLayout()

    warp_cursors = {
        "coalesced": "per_member",
        "sharded": "per_walker",
    }.get(route, "global")

    # ------------------------------------------------------------------ #
    # Cost prediction
    # ------------------------------------------------------------------ #
    predicted, predicted_time = _predict_for_layout(
        stats, config, num_instances, route, layout, request.spec
    )

    # ------------------------------------------------------------------ #
    # Step-tier decision (compiled vs interpreted) + host calibration
    # ------------------------------------------------------------------ #
    from repro.compiled import plan_step_tier
    from repro.planner.calibration import load_calibration

    step_tier, compiled_backend, compiled_fallback = plan_step_tier(
        config,
        route,
        predicted_time,
        program=program,
        algorithm=request.algorithm,
        allow_compiled=request.allow_compiled,
    )
    calibration = load_calibration()
    calibrated_time = calibration.calibrated_time_s(predicted_time)
    if step_tier == "compiled":
        calibrated_time = (
            calibration.compiled_overhead_s
            + calibrated_time / calibration.compiled_speedup
        )

    return ExecutionPlan(
        route=route,
        config=config,
        algorithm=request.algorithm,
        program_name=program_name,
        coalescable=coalescable,
        num_instances=num_instances,
        member_sizes=member_sizes,
        warp_cursors=warp_cursors,
        layout=layout,
        graph_num_vertices=num_vertices,
        graph_num_edges=num_edges,
        graph_nbytes=nbytes,
        memory_budget_bytes=request.memory_budget_bytes,
        predicted_cost=predicted,
        predicted_time_s=predicted_time,
        step_tier=step_tier,
        compiled_backend=compiled_backend,
        compiled_fallback=compiled_fallback,
        calibrated_time_s=calibrated_time,
    )
