"""Planner error types.

These live in a leaf module (no intra-package imports) so that low layers
such as :mod:`repro.api.instance` can raise them without pulling the whole
planner in; :mod:`repro.planner` re-exports them lazily.
"""

from __future__ import annotations

__all__ = ["PlanError", "SeedValidationError"]


class PlanError(ValueError):
    """A request could not be turned into a valid :class:`ExecutionPlan`."""


class SeedValidationError(PlanError):
    """Seed vertices rejected at plan time.

    One error type for every entry point: an empty seed list, an instance
    with no seeds, a seed outside ``[0, num_vertices)``, or duplicate seed
    vertices inside one instance's initial frontier pool all raise this --
    whether the run enters through :class:`~repro.api.sampler.GraphSampler`,
    :class:`~repro.oom.scheduler.OutOfMemorySampler`,
    :func:`~repro.engine.hetero.run_coalesced`, the sharded cluster or the
    sampling service.  Subclasses :class:`ValueError` so pre-planner callers
    keep working.
    """
