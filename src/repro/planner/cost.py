"""Analytic cost prediction for execution planning.

The planner needs a *ranking* signal -- which route will finish first, how
much work a request represents, whether plan construction is worth caching --
before anything runs.  :func:`predict_cost` builds a
:class:`~repro.gpusim.costmodel.CostModel` from the same closed-form
quantities the paper reasons with (instances x depth x NeighborSize
selections, average-degree gather traffic, log-degree binary searches) so
the prediction converts to simulated seconds through the exact machinery
the executed run is measured with.

The estimate is deliberately coarse: it assumes every instance stays active
for the full configured depth and every frontier vertex has the average
degree.  That over-predicts runs that die out early and under-predicts
hub-heavy biased walks, but it ranks routes and workload sizes correctly,
which is all admission needs.  ``BENCH_planner.json`` tracks predicted vs
actual cost per benchmark run so the drift stays visible across PRs.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.api.config import SamplingConfig, SelectionScope
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec, V100_SPEC
from repro.graph.csr import CSRGraph

__all__ = ["predict_cost", "predict_time_s"]

_EDGE_BYTES = 8  # one int64 neighbor id per gathered edge


def predict_cost(
    graph: CSRGraph,
    config: SamplingConfig,
    num_instances: int,
    *,
    route: str = "in_memory",
    num_partitions: int = 1,
    max_resident_partitions: int = 1,
) -> CostModel:
    """Predicted operation counts for one run of ``num_instances`` instances.

    ``route`` adds route-specific charges: the out-of-memory route pays PCIe
    partition transfers (``num_partitions`` / ``max_resident_partitions``
    describe its layout); the sharded and coalesced routes charge the same
    kernel work as in-memory (their win is parallelism / amortisation, which
    shows up in the time conversion, not the counters).
    """
    avg_degree = max(graph.average_degree, 1.0)
    depth = config.depth
    frontier = config.frontier_size if config.frontier_size > 0 else 1
    if config.scope is SelectionScope.PER_LAYER:
        selections_per_step = 1
        pool_per_selection = avg_degree * frontier
    else:
        selections_per_step = frontier
        pool_per_selection = avg_degree
    selections = num_instances * depth * selections_per_step
    per_selection = min(config.neighbor_size, pool_per_selection) \
        if not config.with_replacement else config.neighbor_size
    draws = selections * config.neighbor_size
    log_pool = math.log2(pool_per_selection + 1.0)

    cost = CostModel()
    cost.rng_draws = int(draws)
    cost.selection_attempts = int(draws)
    cost.sampled_edges = int(selections * per_selection)
    cost.global_bytes = int(selections * pool_per_selection * _EDGE_BYTES)
    cost.prefix_sum_steps = int(selections * log_pool)
    cost.binary_search_steps = int(draws * log_pool)
    cost.warp_steps = int(selections * (pool_per_selection / 32.0 + 1.0))
    cost.kernel_launches = depth

    if route == "out_of_memory" and num_partitions > 1:
        # First touch loads every partition; each later depth round re-loads
        # the partitions evicted since (residency keeps ``max_resident``).
        evictions_per_round = max(num_partitions - max_resident_partitions, 0)
        transfers = num_partitions + (depth - 1) * evictions_per_round
        cost.partition_transfers = int(transfers)
        cost.h2d_bytes = int(transfers * graph.nbytes / num_partitions)
        cost.kernel_launches = depth * num_partitions
    return cost


def predict_time_s(
    graph: CSRGraph,
    config: SamplingConfig,
    num_instances: int,
    *,
    route: str = "in_memory",
    num_partitions: int = 1,
    max_resident_partitions: int = 1,
    num_shards: int = 1,
    spec: Optional[DeviceSpec] = None,
) -> float:
    """Predicted simulated seconds under ``spec`` (default V100).

    The sharded route divides the overlappable (compute/memory) portion by
    the shard count -- shards sample their partitions concurrently and the
    straggler sets the clock -- while launch overhead stays serial per depth
    epoch.
    """
    spec = spec if spec is not None else V100_SPEC
    cost = predict_cost(
        graph, config, num_instances,
        route=route,
        num_partitions=num_partitions,
        max_resident_partitions=max_resident_partitions,
    )
    breakdown = cost.breakdown(spec)
    if route == "sharded" and num_shards > 1:
        overlapped = max(breakdown.compute_time, breakdown.memory_time)
        return overlapped / num_shards + breakdown.transfer_time + breakdown.launch_time
    return breakdown.total
