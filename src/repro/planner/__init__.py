"""Unified execution planner: one plan/execute runtime behind every entry point.

``plan(request)`` inspects graph size vs. memory budget, shard count,
program coalescability and the cost-model estimate and emits a declarative
:class:`ExecutionPlan` (route, partition layout, fusion grouping,
warp-cursor assignment, predicted cost); :class:`Executor` runs any plan on
the :class:`~repro.engine.step.BatchedStepEngine`.  See ``docs/planner.md``.

Attribute access is lazy (PEP 562): the error types live in a leaf module
that low layers import while the rest of the planner imports *them*.
"""

from __future__ import annotations

_EXPORTS = {
    "PlanError": "repro.planner.errors",
    "SeedValidationError": "repro.planner.errors",
    "ExecutionPlan": "repro.planner.plan",
    "PartitionLayout": "repro.planner.plan",
    "GraphStats": "repro.planner.planner",
    "PlanRequest": "repro.planner.planner",
    "plan": "repro.planner.planner",
    "plan_admission": "repro.planner.planner",
    "plan_route": "repro.planner.planner",
    "scale_plan": "repro.planner.planner",
    "validate_seed_tuples": "repro.planner.planner",
    "predict_cost": "repro.planner.cost",
    "predict_time_s": "repro.planner.cost",
    "Executor": "repro.planner.executor",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__
