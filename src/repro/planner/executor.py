"""One executor for every :class:`~repro.planner.plan.ExecutionPlan`.

The four sampling entry points used to carry four private copies of the
run loop -- the in-memory MAIN loop, the coalesced multi-member loop, the
out-of-memory partition scheduler and the sharded cluster's epoch loop.
:class:`Executor` is that logic in one place: a facade builds a plan
(:func:`repro.planner.planner.plan`), binds its runtime objects (graph,
program, engine, device, transport) to an executor and calls
:meth:`Executor.execute`.

Bit-compatibility is the headline invariant: each route's loop here is the
pre-refactor loop moved verbatim -- same warp-id allocation order, same RNG
coordinates, same per-step cost accounting -- so every registry algorithm
produces identical samples, iteration counts and cost totals through the
planner as through the old per-facade paths (asserted by
``tests/integration/test_cross_route_matrix.py``).

The legacy scalar paths (``use_engine=False``) stay available for the
equivalence tests: facades pass their scalar step/expand callables and the
executor drives them through the same scheduling skeleton as the engine.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.api.frontier import FrontierQueue
from repro.api.instance import InstanceState
from repro.api.results import SampleResult
from repro.engine.hetero import GroupedIterationSink, member_map
from repro.engine.step import BatchedStepEngine
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device
from repro.gpusim.kernel import KernelLaunch, StreamTimeline
from repro.gpusim.memory import TransferEngine
from repro.graph.csr import CSRGraph
from repro.oom.balancing import block_fractions
from repro.oom.batching import group_entries_by_instance, single_batch
from repro.oom.transfer import PartitionResidency
from repro.planner.plan import ExecutionPlan
from repro.telemetry import metrics as _metrics
from repro.telemetry import profiler as _profiler
from repro.telemetry import trace as _trace
from repro.telemetry.feedback import FEEDBACK

__all__ = ["Executor"]


class Executor:
    """Runs any :class:`ExecutionPlan` on the :class:`BatchedStepEngine`.

    The constructor takes the runtime bindings the plan's route needs;
    unused ones may stay ``None`` (an in-memory plan never touches
    ``partitions`` or ``transport_factory``).
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        graph: CSRGraph,
        *,
        program=None,
        engine: Optional[BatchedStepEngine] = None,
        device: Optional[Device] = None,
        use_engine: bool = True,
        partitions=None,
        scalar_step: Optional[Callable] = None,
        scalar_expand: Optional[Callable] = None,
        transport_factory: Optional[Callable] = None,
        stride: Optional[int] = None,
        transport_name: str = "in_process",
        compiled_kernel=None,
    ):
        self.plan = plan
        self.graph = graph
        self.program = program
        self.engine = engine
        self.device = device
        self.use_engine = use_engine
        self.compiled_kernel = compiled_kernel
        self.partitions = partitions
        self.scalar_step = scalar_step
        self.scalar_expand = scalar_expand
        self.transport_factory = transport_factory
        self.stride = stride
        self.transport_name = transport_name

    # ------------------------------------------------------------------ #
    def execute(
        self,
        instances: Optional[Sequence[InstanceState]] = None,
        members: Optional[Sequence[Sequence[InstanceState]]] = None,
    ):
        """Run the plan; the return type is the route's native result.

        When telemetry is active the execution is wrapped in an
        ``execute`` span and the plan's predicted-vs-actual wall time is
        recorded into the plan-cost feedback sink.  When the continuous
        profiler is on, the plan's (route, algorithm, step_tier) becomes
        the attribution context for every phase clock below this frame.
        """
        plan = self.plan
        # Unnamed plans (direct GraphSampler/OutOfMemorySampler use without
        # an advisory algorithm label) fall back to the program class so
        # profiler keys never read "None".
        algorithm = plan.algorithm or (
            type(self.program).__name__ if self.program is not None
            else "unknown"
        )
        if not _trace.active():
            if not _profiler.enabled():
                return self._execute(instances, members)
            with _profiler.profiled(plan.route, algorithm, plan.step_tier):
                return self._execute(instances, members)
        with _profiler.profiled(
            plan.route, algorithm, plan.step_tier
        ), _trace.span(
            "execute",
            route=plan.route,
            algorithm=algorithm,
            step_tier=plan.step_tier,
            num_instances=plan.num_instances,
        ):
            started = time.perf_counter()
            result = self._execute(instances, members)
            FEEDBACK.record(plan, time.perf_counter() - started)
            return result

    def _execute(
        self,
        instances: Optional[Sequence[InstanceState]] = None,
        members: Optional[Sequence[Sequence[InstanceState]]] = None,
    ):
        route = self.plan.route
        if route == "coalesced":
            if members is None:
                raise ValueError("a coalesced plan needs member instance lists")
            return self._run_coalesced(members)
        if instances is None:
            raise ValueError(f"a {route} plan needs instances")
        if route == "in_memory":
            return self._run_in_memory(list(instances))
        if route == "out_of_memory":
            return self._run_out_of_memory(list(instances))
        if route == "sharded":
            return self._run_sharded(list(instances))
        raise ValueError(f"unknown route {route!r}")  # pragma: no cover

    # ================================================================== #
    # In-memory MAIN loop (Fig. 2(b)) -- the GraphSampler route
    # ================================================================== #
    def _scalar_pass(
        self,
        instances: Sequence[InstanceState],
        depth: int,
        step_cost: CostModel,
        iteration_counts,
    ) -> Optional[int]:
        """One depth step of the legacy instance-by-instance loop."""
        num_tasks = 0
        any_active = False
        for inst in instances:
            if inst.finished or inst.pool_size == 0:
                inst.finished = True
                continue
            any_active = True
            num_tasks += self.scalar_step(inst, depth, step_cost, iteration_counts)
        return num_tasks if any_active else None

    def _depth_loop(self, instances, sink) -> tuple:
        """The shared MAIN loop: one simulated kernel per depth step."""
        if self.compiled_kernel is not None and self.use_engine:
            # Compiled tier: the fused kernel runs the whole depth loop,
            # producing the same kernel records and cost totals.
            return self.compiled_kernel.run(instances, sink)
        kernels: List[KernelLaunch] = []
        total = CostModel()
        for depth in range(self.plan.config.depth):
            step_cost = CostModel()
            with _trace.span("depth_step", depth=depth) as sp:
                if self.use_engine:
                    tasks = self.engine.step_instances(instances, depth, step_cost, sink)
                else:
                    tasks = self._scalar_pass(instances, depth, step_cost, sink)
                sp.set(tasks=tasks)
            if tasks is None:
                break
            step_cost.kernel_launches += 1
            kernels.append(
                KernelLaunch(
                    name=f"kernel:depth{depth}",
                    cost=step_cost,
                    num_warp_tasks=max(tasks, 1),
                )
            )
            total.merge(step_cost)
        return kernels, total

    def _main_metadata(self) -> Dict[str, object]:
        cfg = self.plan.config
        return {
            "program": self.program.name,
            "depth": cfg.depth,
            "neighbor_size": cfg.neighbor_size,
            "frontier_size": cfg.frontier_size,
        }

    def _run_in_memory(self, instances: List[InstanceState]) -> SampleResult:
        iteration_counts: List[int] = []
        kernels, total = self._depth_loop(instances, iteration_counts)
        self.device.cost.merge(total)
        return SampleResult.from_instances(
            instances,
            self.device.cost.copy(),
            kernels=kernels,
            iteration_counts=iteration_counts,
            metadata=self._main_metadata(),
        )

    # ================================================================== #
    # Coalesced multi-member batch -- the run_coalesced route
    # ================================================================== #
    def _run_coalesced(
        self, members: Sequence[Sequence[InstanceState]]
    ) -> List[SampleResult]:
        members = [list(m) for m in members]
        member_of, all_instances = member_map(members)
        self.engine.set_warp_groups(member_of, len(members))
        sink = GroupedIterationSink(member_of, len(members))
        kernels, total = self._depth_loop(all_instances, sink)
        metadata = self._main_metadata()
        metadata["coalesced_members"] = len(members)
        combined = SampleResult.from_instances(
            all_instances,
            total,
            kernels=kernels,
            metadata=metadata,
        )
        results: List[SampleResult] = []
        offset = 0
        for rank, insts in enumerate(members):
            results.append(
                combined.slice_instances(
                    offset,
                    offset + len(insts),
                    iteration_counts=sink.lists[rank],
                )
            )
            offset += len(insts)
        return results

    # ================================================================== #
    # Out-of-memory partition scheduling (Section V) -- the OOM route
    # ================================================================== #
    def _run_out_of_memory(self, instances: List[InstanceState]):
        from repro.oom.scheduler import OutOfMemoryResult

        oom = self.plan.layout.oom
        partitions = self.partitions
        queues: Dict[int, FrontierQueue] = {
            p: FrontierQueue() for p in range(len(partitions))
        }
        for inst in instances:
            owners = partitions.owner(inst.frontier_pool)
            for seed, owner in zip(inst.frontier_pool, owners):
                queues[int(owner)].push(int(seed), inst.instance_id, 0)

        transfer_engine = TransferEngine(self.device.spec.pcie_bandwidth_bytes)
        residency = PartitionResidency(
            partitions, oom.max_resident_partitions, transfer_engine
        )
        timeline = StreamTimeline(oom.num_kernels)
        total_cost = CostModel()
        kernel_times: List[float] = []
        transfer_times: List[float] = []
        iteration_counts: List[int] = []
        instance_map = {inst.instance_id: inst for inst in instances}
        rounds = 0

        while any(len(q) for q in queues.values()):
            rounds += 1
            active = {p: len(q) for p, q in queues.items() if len(q) > 0}
            chosen = self._choose_partitions(active, oom)
            fractions = block_fractions(
                [active[p] for p in chosen], balanced=oom.balanced_blocks
            )
            protect = set(chosen)
            with _trace.span("oom_round", round=rounds, partitions=len(chosen)):
                for stream_index, (partition_index, fraction) in enumerate(
                    zip(chosen, fractions)
                ):
                    stream = timeline[stream_index % len(timeline.streams)]
                    transfer_duration = residency.ensure_resident(
                        partition_index, total_cost, protect=protect
                    )
                    if transfer_duration > 0:
                        stream.enqueue(f"transfer:p{partition_index}", transfer_duration)
                        transfer_times.append(transfer_duration)
                    with _trace.span("partition_drain", partition=partition_index):
                        self._drain_partition(
                            partition_index,
                            queues,
                            instance_map,
                            fraction,
                            stream,
                            total_cost,
                            kernel_times,
                            iteration_counts,
                            oom,
                        )
                    # Paper: the actively sampled partition is released only
                    # once its frontier queue is empty, which _drain_partition
                    # ensures.
                    residency.release(partition_index)

        sample = SampleResult.from_instances(
            instances,
            total_cost.copy(),
            iteration_counts=iteration_counts,
            metadata={"program": self.program.name, "oom": True},
        )
        self.device.cost.merge(total_cost)
        return OutOfMemoryResult(
            sample=sample,
            makespan=timeline.makespan,
            kernel_times=kernel_times,
            transfer_times=transfer_times,
            partition_transfers=residency.transfer_count,
            rounds=rounds,
            cost=total_cost,
            config=oom,
            stream_busy_times=[s.busy_time() for s in timeline.streams],
        )

    def _choose_partitions(self, active: Dict[int, int], oom) -> List[int]:
        """Pick up to ``num_kernels`` partitions to sample this round."""
        limit = min(oom.num_kernels, oom.max_resident_partitions, len(active))
        if oom.workload_aware:
            ordered = sorted(active, key=lambda p: (-active[p], p))
        else:
            ordered = sorted(active)
        return ordered[:limit]

    def _drain_partition(
        self,
        partition_index: int,
        queues: Dict[int, FrontierQueue],
        instance_map: Dict[int, InstanceState],
        fraction: float,
        stream,
        total_cost: CostModel,
        kernel_times: List[float],
        iteration_counts: List[int],
        oom,
    ) -> None:
        """Sample a resident partition until its frontier queue is empty."""
        queue = queues[partition_index]
        while len(queue):
            vertices, instance_ids, depths = queue.pop_all()
            if oom.batched:
                groups = single_batch(vertices, instance_ids, depths)
            else:
                groups = group_entries_by_instance(vertices, instance_ids, depths)
            for group_vertices, group_instances, group_depths in groups:
                kernel_cost = CostModel()
                if self.use_engine:
                    succ_v, succ_i, succ_d = self.engine.expand_entries(
                        group_vertices,
                        group_instances,
                        group_depths,
                        instance_map,
                        kernel_cost,
                        iteration_counts,
                    )
                    if succ_v.size:
                        owners = self.partitions.owner(succ_v)
                        for owner in np.unique(owners):
                            mask = owners == owner
                            queues[int(owner)].push_batch(
                                succ_v[mask], succ_i[mask], succ_d[mask]
                            )
                else:
                    for vertex, instance_id, depth in zip(
                        group_vertices, group_instances, group_depths
                    ):
                        self.scalar_expand(
                            int(vertex),
                            instance_map[int(instance_id)],
                            int(depth),
                            queues,
                            kernel_cost,
                            iteration_counts,
                        )
                kernel_cost.kernel_launches += 1
                launch = KernelLaunch(
                    name=f"kernel:p{partition_index}",
                    cost=kernel_cost,
                    block_fraction=float(fraction),
                    num_warp_tasks=max(int(group_vertices.size), 1),
                )
                duration = launch.duration(self.device.spec)
                stream.enqueue(launch.name, duration)
                kernel_times.append(duration)
                total_cost.merge(kernel_cost)

    # ================================================================== #
    # Sharded cluster epochs + reassembly -- the cluster route
    # ================================================================== #
    def _run_sharded(self, instances: List[InstanceState]):
        # Deferred: repro.distributed's __init__ pulls the coordinator,
        # which itself plans+executes through this module.
        from repro.distributed.router import MigrationRouter, WalkerEnvelope, bucket_by_shard

        bounds = np.asarray(self.plan.layout.boundaries, dtype=np.int64)
        num_shards = self.plan.layout.num_partitions
        envelopes = [WalkerEnvelope(instance=inst) for inst in instances]
        ctx = _trace.current()
        if ctx is not None:
            # Trace context rides the envelopes so shard runtimes (possibly
            # in other processes) join this request's span tree.
            for env in envelopes:
                env.trace_ctx = ctx
        placement = bucket_by_shard(envelopes, bounds, stride=self.stride)

        router = MigrationRouter(num_shards)
        epochs = 0
        transport = self.transport_factory()
        try:
            transport.admit(placement)
            active = len(instances)
            for depth in range(self.plan.config.depth):
                if active == 0:
                    break
                epochs += 1
                with _trace.span("shard_epoch", depth=depth) as sp:
                    outboxes, actives = transport.step_all(depth)
                    inboxes = router.exchange(outboxes)
                    transport.admit(inboxes)
                    active = sum(actives) + sum(len(v) for v in inboxes.values())
                    sp.set(active=active)
            with _trace.span("reassemble", shards=num_shards):
                reports = transport.collect()
        finally:
            transport.close()
        if _trace.active():
            _metrics.REGISTRY.counter("walker_migrations").inc(router.migrations)
        prof = _profiler.clock(-1)
        result = self._reassemble_shards(
            reports, len(instances), epochs, router.migrations, num_shards
        )
        prof.lap("reassemble")
        return result

    def _reassemble_shards(
        self,
        reports,
        num_instances: int,
        epochs: int,
        migrations: int,
        num_shards: int,
    ):
        from repro.distributed.coordinator import ClusterResult
        from repro.distributed.router import WalkerEnvelope

        collected: Dict[int, WalkerEnvelope] = {}
        for report in reports:
            for env in report.envelopes:
                if env.instance_id in collected:
                    raise RuntimeError(
                        f"walker {env.instance_id} reported by two shards"
                    )
                collected[env.instance_id] = env
        if len(collected) != num_instances:
            missing = set(range(num_instances)) - set(collected)
            raise RuntimeError(f"walkers lost during the run: {sorted(missing)}")

        total_cost = CostModel()
        for report in reports:  # shard order; integer counters commute
            total_cost.merge(report.cost)
        # One fused launch per epoch, like the single-device MAIN loop --
        # and unlike per-shard counting, invariant across shard counts.
        total_cost.kernel_launches = epochs

        ordered = [collected[instance_id] for instance_id in sorted(collected)]
        iteration_counts: List[int] = []
        for env in ordered:
            iteration_counts.extend(env.iterations)
        cfg = self.plan.config
        result = SampleResult.from_instances(
            [env.instance for env in ordered],
            total_cost,
            iteration_counts=iteration_counts,
            metadata={
                "program": self.plan.algorithm,
                "depth": cfg.depth,
                "neighbor_size": cfg.neighbor_size,
                "frontier_size": cfg.frontier_size,
                "sharded": True,
            },
        )
        return ClusterResult(
            result=result,
            num_shards=num_shards,
            transport=self.transport_name,
            epochs=epochs,
            migrations=migrations,
            shard_costs=[r.cost for r in reports],
            shard_kernels=[r.kernels for r in reports],
            shard_admitted=[r.admitted for r in reports],
        )
