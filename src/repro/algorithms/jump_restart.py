"""Random walk with jump and random walk with restart.

A simple random walk can get stuck in a local neighbourhood.  Two classic
escapes (Section II-A):

* **jump** -- with probability ``jump_probability`` the walker teleports to a
  uniformly random vertex of the graph;
* **restart** -- with probability ``restart_probability`` the walker teleports
  back to a pre-determined vertex (its seed), which is the kernel of
  personalised PageRank estimation.

Both are expressed purely through the ``UPDATE`` hook: the neighbor selection
itself stays an unbiased NeighborSize = 1 pick, and ``UPDATE`` decides whether
the frontier becomes the sampled neighbor or the teleport target.
"""

from __future__ import annotations

import numpy as np

from repro.api.bias import EdgePool, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope

__all__ = ["RandomWalkWithJump", "RandomWalkWithRestart"]


class RandomWalkWithJump(SamplingProgram):
    """Random walk that teleports to a random vertex with fixed probability."""

    name = "random_walk_with_jump"
    #: Teleport draws consume ``self._rng`` in hook call order, so runs
    #: cannot share an engine batch (see SamplingProgram.supports_coalescing).
    supports_coalescing = False
    #: The selection itself is unbiased; only the stateful ``update`` teleport
    #: keeps this program off the compiled tier (the recorded fallback reason).
    compiled_bias = "uniform"

    def __init__(self, jump_probability: float = 0.15, seed: int = 0):
        if not (0.0 <= jump_probability <= 1.0):
            raise ValueError("jump probability must lie in [0, 1]")
        self.jump_probability = jump_probability
        self._rng = np.random.default_rng(seed)

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.jump_probability:
            target = int(self._rng.integers(0, edges.graph.num_vertices))
            return np.array([target], dtype=np.int64)
        if sampled.size == 0:
            return np.array([edges.src], dtype=np.int64)
        return sampled

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """Walk-style config with repeats allowed."""
        base = dict(
            frontier_size=0,
            neighbor_size=1,
            depth=8,
            with_replacement=True,
            scope=SelectionScope.PER_VERTEX,
            pool_policy=PoolPolicy.NEXT_LAYER,
            track_visited=False,
        )
        base.update(overrides)
        return SamplingConfig(**base)


class RandomWalkWithRestart(RandomWalkWithJump):
    """Random walk that teleports back to the instance's seed vertex."""

    name = "random_walk_with_restart"

    def __init__(self, restart_probability: float = 0.15, seed: int = 0):
        super().__init__(jump_probability=restart_probability, seed=seed)
        self.restart_probability = restart_probability

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.restart_probability:
            return np.array([int(edges.instance.seeds[0])], dtype=np.int64)
        if sampled.size == 0:
            return np.array([edges.src], dtype=np.int64)
        return sampled
