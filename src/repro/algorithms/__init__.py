"""Algorithm zoo: every sampling / random-walk variant from Table I.

Each algorithm is a :class:`~repro.api.bias.SamplingProgram` subclass paired
with a default :class:`~repro.api.config.SamplingConfig`, registered in the
design-space registry (:mod:`~repro.algorithms.registry`) under the paper's
taxonomy (bias criterion x NeighborSize shape).
"""

from repro.algorithms.neighbor_sampling import (
    UnbiasedNeighborSampling,
    BiasedNeighborSampling,
)
from repro.algorithms.forest_fire import ForestFireSampling
from repro.algorithms.snowball import SnowballSampling
from repro.algorithms.layer_sampling import LayerSampling
from repro.algorithms.random_walk import (
    SimpleRandomWalk,
    BiasedRandomWalk,
    DeepWalk,
    run_random_walks,
)
from repro.algorithms.metropolis_hastings import MetropolisHastingsWalk
from repro.algorithms.jump_restart import RandomWalkWithJump, RandomWalkWithRestart
from repro.algorithms.multidim_walk import MultiDimensionalRandomWalk
from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.registry import (
    AlgorithmInfo,
    ALGORITHM_REGISTRY,
    get_algorithm,
    list_algorithms,
    default_config,
)

__all__ = [
    "UnbiasedNeighborSampling",
    "BiasedNeighborSampling",
    "ForestFireSampling",
    "SnowballSampling",
    "LayerSampling",
    "SimpleRandomWalk",
    "BiasedRandomWalk",
    "DeepWalk",
    "run_random_walks",
    "MetropolisHastingsWalk",
    "RandomWalkWithJump",
    "RandomWalkWithRestart",
    "MultiDimensionalRandomWalk",
    "Node2Vec",
    "AlgorithmInfo",
    "ALGORITHM_REGISTRY",
    "get_algorithm",
    "list_algorithms",
    "default_config",
]
