"""Snowball sampling.

Snowball sampling starts from uniformly selected seed vertices and, at each
level, adds *all* neighbors of every sampled vertex until a required depth is
reached (Section II-A).  It is the NeighborSize = "all" corner of the design
space; in C-SAW terms the neighbor count equals the pool size and selection
degenerates to taking everything (still expressed through the same API).
A ``max_per_vertex`` cap is provided because real uses of snowball sampling
on scale-free graphs routinely bound the per-vertex fan-out.
"""

from __future__ import annotations

import numpy as np

from repro.api.bias import EdgePool, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope

__all__ = ["SnowballSampling"]


class SnowballSampling(SamplingProgram):
    """Snowball sampling: take every neighbor of every frontier vertex."""

    name = "snowball_sampling"
    supports_coalescing = True  # hooks are pure functions of their arguments
    compiled_bias = "uniform"
    compiled_update = "unvisited"
    compiled_neighbor_count = "pool_capped"

    def __init__(self, max_per_vertex: int | None = None):
        if max_per_vertex is not None and max_per_vertex < 1:
            raise ValueError("max_per_vertex must be >= 1")
        self.max_per_vertex = max_per_vertex

    def compiled_cache_token(self) -> object:
        return (self.max_per_vertex,)

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def neighbor_count(self, edges: EdgePool, requested: int) -> int:
        count = edges.size
        if self.max_per_vertex is not None:
            count = min(count, self.max_per_vertex)
        return count

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        return edges.instance.unvisited(sampled)

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """Depth-2 snowball; neighbor_size is ignored (the hook takes the pool)."""
        base = dict(
            frontier_size=0,
            neighbor_size=1,
            depth=2,
            with_replacement=False,
            scope=SelectionScope.PER_VERTEX,
            pool_policy=PoolPolicy.NEXT_LAYER,
            track_visited=True,
        )
        base.update(overrides)
        return SamplingConfig(**base)
