"""Simple and biased random walks (DeepWalk and Biased DeepWalk).

A random walk is the NeighborSize = 1, with-replacement corner of the design
space: at every step the walker moves from its current vertex to one sampled
neighbor and the visited edge joins the sample.

* :class:`SimpleRandomWalk` / :class:`DeepWalk` -- unbiased: every neighbor is
  equally likely (DeepWalk's walk generation).
* :class:`BiasedRandomWalk` -- static bias: the edge weight (or the neighbor's
  degree on unweighted graphs, following Biased DeepWalk) decides the
  transition probability.

:func:`run_random_walks` is the high-throughput entry point used by the SEPS
benchmarks: it advances all walkers together with the vectorised
:func:`~repro.api.select.batch_walk_step` fast path, producing one simulated
kernel per step, which is how C-SAW's GPU kernels batch thousands of walker
instances.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.api.bias import EdgePool, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope
from repro.api.instance import make_instances
from repro.api.results import SampleResult, InstanceSample
from repro.api.select import batch_walk_step
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device, make_device
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.prng import CounterRNG
from repro.graph.csr import CSRGraph

__all__ = ["SimpleRandomWalk", "DeepWalk", "BiasedRandomWalk", "run_random_walks"]


class SimpleRandomWalk(SamplingProgram):
    """Unbiased random walk: uniform transition probability over neighbors."""

    name = "simple_random_walk"
    supports_coalescing = True  # hooks are pure functions of their arguments
    compiled_bias = "uniform"

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """Walk of length ``depth`` with one neighbor per step, repeats allowed."""
        base = dict(
            frontier_size=0,
            neighbor_size=1,
            depth=8,
            with_replacement=True,
            scope=SelectionScope.PER_VERTEX,
            pool_policy=PoolPolicy.NEXT_LAYER,
            track_visited=False,
        )
        base.update(overrides)
        return SamplingConfig(**base)


class DeepWalk(SimpleRandomWalk):
    """DeepWalk's walk generation is exactly the simple (uniform) random walk."""

    name = "deepwalk"


class BiasedRandomWalk(SimpleRandomWalk):
    """Static-bias random walk: edge weight (or neighbor degree) as the bias."""

    name = "biased_random_walk"
    compiled_bias = "weight_or_degree"  # overrides the inherited "uniform"

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        if edges.graph.is_weighted:
            return np.asarray(edges.weights, dtype=np.float64)
        return edges.neighbor_degrees().astype(np.float64) + 1.0

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        if edges.graph.is_weighted:
            return np.asarray(edges.weights, dtype=np.float64)
        return edges.neighbor_degrees().astype(np.float64) + 1.0


def run_random_walks(
    graph: CSRGraph,
    seeds: Sequence[int] | np.ndarray,
    *,
    walk_length: int = 8,
    num_walkers: Optional[int] = None,
    biased: bool = False,
    seed: int = 0,
    device: Optional[Device] = None,
) -> SampleResult:
    """Run many random walks with the vectorised batch engine.

    Parameters
    ----------
    graph:
        Graph to walk; must be weighted when ``biased`` is True (otherwise the
        walk silently degrades to uniform, matching the paper's treatment of
        unweighted inputs).
    seeds:
        Seed vertices (reused round-robin when ``num_walkers`` exceeds them).
    walk_length:
        Number of steps per walker (the paper's biased random walk uses 2000;
        benchmarks scale this down).
    biased:
        Edge-weight-biased transitions when True, uniform otherwise.
    """
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    device = device if device is not None else make_device("gpu")
    rng = CounterRNG(seed)
    instances = make_instances(list(np.asarray(seeds).reshape(-1)), num_instances=num_walkers)
    current = np.array([inst.frontier_pool[0] for inst in instances], dtype=np.int64)
    starts = current.copy()
    active = np.ones(current.size, dtype=bool)
    edge_bias = "weight" if (biased and graph.is_weighted) else "uniform"

    walk_src = [[] for _ in range(current.size)]
    walk_dst = [[] for _ in range(current.size)]
    # C-SAW is free of bulk-synchronous stepping: one warp owns one walker for
    # its entire walk, so the whole job is a single kernel whose warp tasks
    # are the walkers (Section IV-A).  The cost of every step accumulates into
    # that one launch.
    job_cost = CostModel()
    for step in range(walk_length):
        nxt, moved = batch_walk_step(
            graph, current, rng, step, edge_bias=edge_bias, cost=job_cost, active=active
        )
        moved_idx = np.nonzero(moved)[0]
        for i in moved_idx:
            walk_src[i].append(int(current[i]))
            walk_dst[i].append(int(nxt[i]))
        # Walkers stranded on zero-degree vertices stop for good.
        active &= ~(active & ~moved & (graph.degrees[current] == 0))
        current = nxt
        if not active.any():
            break
    job_cost.kernel_launches += 1
    kernels = [
        KernelLaunch(
            name="kernel:random_walk",
            cost=job_cost,
            num_warp_tasks=max(int(current.size), 1),
        )
    ]
    device.cost.merge(job_cost)

    samples = []
    for i, inst in enumerate(instances):
        edges = (
            np.column_stack([walk_src[i], walk_dst[i]])
            if walk_src[i]
            else np.empty((0, 2), dtype=np.int64)
        )
        samples.append(InstanceSample(instance_id=inst.instance_id,
                                      seeds=np.array([starts[i]]), edges=edges))
    return SampleResult(
        samples=samples,
        cost=device.cost.copy(),
        kernels=kernels,
        metadata={"program": "biased_random_walk" if biased else "simple_random_walk",
                  "walk_length": walk_length},
    )
