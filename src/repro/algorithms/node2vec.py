"""Node2vec: second-order (dynamic-bias) random walk.

Node2vec biases each step of a walk by where the walker came from.  With the
walker at ``v`` having arrived from ``t``, a candidate neighbor ``u`` gets
bias (Fig. 3(a) of the paper):

* ``weight * (1 / p)`` when ``u == t`` (returning to the previous vertex);
* ``weight``            when ``u`` is a neighbor of ``t`` (distance 1);
* ``weight * (1 / q)``  otherwise (distance 2 -- moving outward).

``p`` (return parameter) and ``q`` (in-out parameter) steer the walk between
BFS-like and DFS-like behaviour.  The bias depends on the *runtime* state of
the walk (the previous vertex), which is exactly the dynamic-bias case that
rules out alias-table pre-computation and motivates C-SAW's on-the-fly
inverse transform sampling.
"""

from __future__ import annotations

import numpy as np

from repro.api.bias import EdgePool, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope

__all__ = ["Node2Vec"]


class Node2Vec(SamplingProgram):
    """Node2vec walk program with return parameter ``p`` and in-out parameter ``q``."""

    name = "node2vec"
    supports_coalescing = True  # hooks are pure functions of their arguments
    compiled_bias = "node2vec"

    def __init__(self, p: float = 1.0, q: float = 1.0):
        if p <= 0 or q <= 0:
            raise ValueError("node2vec parameters p and q must be positive")
        self.p = float(p)
        self.q = float(q)

    def compiled_cache_token(self) -> object:
        return (self.p, self.q)

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        weights = np.asarray(edges.weights, dtype=np.float64)
        prev = edges.instance.prev_vertex
        if prev < 0:
            # First step of the walk: no previous vertex, plain weighted pick.
            return weights
        prev_neighbors = edges.graph.neighbors(prev)
        bias = np.empty(edges.size, dtype=np.float64)
        is_prev = edges.neighbors == prev
        is_prev_neighbor = np.isin(edges.neighbors, prev_neighbors)
        bias[:] = weights / self.q                    # distance 2 from prev
        bias[is_prev_neighbor] = weights[is_prev_neighbor]  # distance 1
        bias[is_prev] = weights[is_prev] / self.p     # distance 0 (return)
        return bias

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        """Vectorised second-order bias for a whole batch of walkers.

        Each walker's "is the candidate a neighbor of the previous vertex"
        test uses a stamp array instead of a per-segment ``isin``, so the
        flat arithmetic (one division, two masked assignments) covers every
        walker at once.
        """
        weights = np.asarray(edges.weights, dtype=np.float64)
        lengths = edges.lengths()
        prevs = np.fromiter(
            (inst.prev_vertex for inst in edges.instances),
            dtype=np.int64,
            count=edges.num_segments,
        )
        prev_of_edge = np.repeat(prevs, lengths)
        bias = weights / self.q                       # distance 2 from prev
        graph = edges.graph
        stamps = np.full(graph.num_vertices, -1, dtype=np.int64)
        is_prev_neighbor = np.zeros(edges.size, dtype=bool)
        for k in np.nonzero(prevs >= 0)[0]:
            lo, hi = int(edges.offsets[k]), int(edges.offsets[k + 1])
            stamps[graph.neighbors(int(prevs[k]))] = k
            is_prev_neighbor[lo:hi] = stamps[edges.neighbors[lo:hi]] == k
        is_prev = (edges.neighbors == prev_of_edge) & (prev_of_edge >= 0)
        bias[is_prev_neighbor] = weights[is_prev_neighbor]  # distance 1
        bias[is_prev] = weights[is_prev] / self.p     # distance 0 (return)
        # First step of a walk: no previous vertex, plain weighted pick.
        first = prev_of_edge < 0
        bias[first] = weights[first]
        return bias

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """Walk-style config: one neighbor per step, repeats allowed."""
        base = dict(
            frontier_size=0,
            neighbor_size=1,
            depth=8,
            with_replacement=True,
            scope=SelectionScope.PER_VERTEX,
            pool_policy=PoolPolicy.NEXT_LAYER,
            track_visited=False,
        )
        base.update(overrides)
        return SamplingConfig(**base)
