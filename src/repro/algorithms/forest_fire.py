"""Forest fire sampling.

Forest fire sampling (Leskovec & Faloutsos, KDD'06) is a probabilistic
version of neighbor sampling: at each vertex the number of neighbors to
"burn" is drawn from a geometric distribution with mean ``p_f / (1 - p_f)``,
where ``p_f`` is the burning probability (the paper uses ``p_f = 0.7``,
giving a mean of 2.33 neighbors).  Selection itself is unbiased and without
replacement, and burned vertices are never revisited.
"""

from __future__ import annotations

import numpy as np

from repro.api.bias import EdgePool, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope

__all__ = ["ForestFireSampling"]


class ForestFireSampling(SamplingProgram):
    """Forest fire sampling with geometric NeighborSize (Table I, variable)."""

    name = "forest_fire_sampling"
    #: The geometric draws consume ``self._rng`` in hook call order, so runs
    #: cannot share an engine batch (see SamplingProgram.supports_coalescing).
    supports_coalescing = False
    #: Burning picks neighbors uniformly; the stateful geometric
    #: ``neighbor_count`` draw is what keeps the program interpreted.
    compiled_bias = "uniform"

    def __init__(self, burning_probability: float = 0.7, seed: int = 0):
        if not (0.0 < burning_probability < 1.0):
            raise ValueError("burning probability must lie in (0, 1)")
        self.burning_probability = burning_probability
        self._rng = np.random.default_rng(seed)

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def neighbor_count(self, edges: EdgePool, requested: int) -> int:
        """Geometric draw with mean ``p_f / (1 - p_f)``, capped by the pool size."""
        mean = self.burning_probability / (1.0 - self.burning_probability)
        # numpy's geometric counts trials until first success (support >= 1);
        # shift to support >= 0 so a vertex can burn zero neighbors.
        draw = int(self._rng.geometric(1.0 / (1.0 + mean))) - 1
        return min(draw, edges.size)

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        return edges.instance.unvisited(sampled)

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """Paper defaults: depth 2, neighbor count driven by the geometric draw."""
        base = dict(
            frontier_size=0,
            neighbor_size=8,          # upper bound; the geometric draw decides
            depth=2,
            with_replacement=False,
            scope=SelectionScope.PER_VERTEX,
            pool_policy=PoolPolicy.NEXT_LAYER,
            track_visited=True,
        )
        base.update(overrides)
        return SamplingConfig(**base)
