"""Neighbor sampling (unbiased and biased).

Neighbor sampling (DGL's ``NeighborSampler``, GraphSAGE-style minibatching)
samples a constant number of neighbors per frontier vertex without
replacement, layer after layer.  The unbiased variant gives every neighbor
the same probability; the biased variant uses the edge weight (falling back
to the neighbor's degree on unweighted graphs) as the bias.
"""

from __future__ import annotations

import numpy as np

from repro.api.bias import EdgePool, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope

__all__ = ["UnbiasedNeighborSampling", "BiasedNeighborSampling"]


class UnbiasedNeighborSampling(SamplingProgram):
    """Uniform neighbor sampling without replacement (Table I, unbiased/constant)."""

    name = "unbiased_neighbor_sampling"
    supports_coalescing = True  # hooks are pure functions of their arguments
    compiled_bias = "uniform"
    compiled_update = "unvisited"

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        # Traversal-based sampling never revisits a vertex: only neighbors not
        # seen before are added to the next frontier.
        return edges.instance.unvisited(sampled)

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """Paper defaults: NeighborSize = Depth = 2, sampling without replacement."""
        base = dict(
            frontier_size=0,
            neighbor_size=2,
            depth=2,
            with_replacement=False,
            scope=SelectionScope.PER_VERTEX,
            pool_policy=PoolPolicy.NEXT_LAYER,
            track_visited=True,
        )
        base.update(overrides)
        return SamplingConfig(**base)


class BiasedNeighborSampling(UnbiasedNeighborSampling):
    """Neighbor sampling biased by edge weight (degree on unweighted graphs)."""

    name = "biased_neighbor_sampling"
    compiled_bias = "weight_or_degree"  # overrides the inherited "uniform"

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        if edges.graph.is_weighted:
            return np.asarray(edges.weights, dtype=np.float64)
        # Without weights, bias towards high-degree neighbors, matching the
        # "static bias from graph structure" row of Table I.
        return edges.neighbor_degrees().astype(np.float64) + 1.0

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        if edges.graph.is_weighted:
            return np.asarray(edges.weights, dtype=np.float64)
        return edges.neighbor_degrees().astype(np.float64) + 1.0
