"""Layer sampling.

Layer sampling (LADIES / FastGCN style, the paper's citation [9]) samples a
constant number of neighbors for *all* vertices present in the frontier in
each round, i.e. the selection pool is the union of every frontier vertex's
neighbors rather than each vertex's own list.  In C-SAW this is the
``PER_LAYER`` selection scope; the bias is the edge weight when available and
uniform otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.api.bias import EdgePool, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope

__all__ = ["LayerSampling"]


class LayerSampling(SamplingProgram):
    """Per-layer neighbor selection with a constant layer budget."""

    name = "layer_sampling"
    supports_coalescing = True  # hooks are pure functions of their arguments
    compiled_bias = "weight_or_uniform"
    compiled_update = "unvisited"

    def __init__(self, *, weighted_bias: bool = True):
        self.weighted_bias = weighted_bias

    def compiled_cache_token(self) -> object:
        return (self.weighted_bias,)

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        if self.weighted_bias and edges.graph.is_weighted:
            return np.asarray(edges.weights, dtype=np.float64)
        return np.ones(edges.size, dtype=np.float64)

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        if self.weighted_bias and edges.graph.is_weighted:
            return np.asarray(edges.weights, dtype=np.float64)
        return np.ones(edges.size, dtype=np.float64)

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        return edges.instance.unvisited(sampled)

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """Layer-scope selection; the paper's evaluation uses NeighborSize 2, depth 2."""
        base = dict(
            frontier_size=0,
            neighbor_size=2,
            depth=2,
            with_replacement=False,
            scope=SelectionScope.PER_LAYER,
            pool_policy=PoolPolicy.NEXT_LAYER,
            track_visited=True,
        )
        base.update(overrides)
        return SamplingConfig(**base)
