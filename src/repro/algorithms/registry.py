"""The Table I design-space registry.

Table I of the paper organises traversal-based sampling and random-walk
algorithms along two axes: the *bias criterion* (unbiased / static biased /
dynamic biased) and the *NeighborSize shape* (one neighbor per step vs more,
constant vs variable, per vertex vs per layer).  This registry records every
algorithm implemented in :mod:`repro.algorithms` with its position in that
design space and factories for the program and its default configuration, so
the Table I benchmark and the tests can demonstrate that the whole design
space is expressible with the C-SAW API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.api.bias import SamplingProgram
from repro.api.config import SamplingConfig
from repro.algorithms.forest_fire import ForestFireSampling
from repro.algorithms.jump_restart import RandomWalkWithJump, RandomWalkWithRestart
from repro.algorithms.layer_sampling import LayerSampling
from repro.algorithms.metropolis_hastings import MetropolisHastingsWalk
from repro.algorithms.multidim_walk import MultiDimensionalRandomWalk
from repro.algorithms.neighbor_sampling import (
    BiasedNeighborSampling,
    UnbiasedNeighborSampling,
)
from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.random_walk import BiasedRandomWalk, DeepWalk, SimpleRandomWalk
from repro.algorithms.snowball import SnowballSampling

__all__ = [
    "AlgorithmInfo",
    "ALGORITHM_REGISTRY",
    "get_algorithm",
    "list_algorithms",
    "default_config",
]


@dataclass(frozen=True)
class AlgorithmInfo:
    """One cell of the Table I design space."""

    name: str
    #: ``"unbiased"``, ``"static"`` or ``"dynamic"`` (Table I's bias criterion).
    bias: str
    #: ``"one"`` (random walk), ``"constant"`` or ``"variable"`` neighbors.
    neighbor_shape: str
    #: ``"per_vertex"`` or ``"per_layer"`` neighbor selection.
    scope: str
    #: Whether repeats are allowed (random walk) or not (sampling).
    is_random_walk: bool
    program_factory: Callable[[], SamplingProgram]
    config_factory: Callable[..., SamplingConfig]


def _info(name, bias, shape, scope, walk, prog, cfg) -> AlgorithmInfo:
    return AlgorithmInfo(
        name=name,
        bias=bias,
        neighbor_shape=shape,
        scope=scope,
        is_random_walk=walk,
        program_factory=prog,
        config_factory=cfg,
    )


ALGORITHM_REGISTRY: Dict[str, AlgorithmInfo] = {
    info.name: info
    for info in [
        _info("simple_random_walk", "unbiased", "one", "per_vertex", True,
              SimpleRandomWalk, SimpleRandomWalk.default_config),
        _info("deepwalk", "unbiased", "one", "per_vertex", True,
              DeepWalk, DeepWalk.default_config),
        _info("metropolis_hastings_walk", "unbiased", "one", "per_vertex", True,
              MetropolisHastingsWalk, MetropolisHastingsWalk.default_config),
        _info("random_walk_with_jump", "unbiased", "one", "per_vertex", True,
              RandomWalkWithJump, RandomWalkWithJump.default_config),
        _info("random_walk_with_restart", "unbiased", "one", "per_vertex", True,
              RandomWalkWithRestart, RandomWalkWithRestart.default_config),
        _info("unbiased_neighbor_sampling", "unbiased", "constant", "per_vertex", False,
              UnbiasedNeighborSampling, UnbiasedNeighborSampling.default_config),
        _info("forest_fire_sampling", "unbiased", "variable", "per_vertex", False,
              ForestFireSampling, ForestFireSampling.default_config),
        _info("snowball_sampling", "unbiased", "variable", "per_vertex", False,
              SnowballSampling, SnowballSampling.default_config),
        _info("biased_random_walk", "static", "one", "per_vertex", True,
              BiasedRandomWalk, BiasedRandomWalk.default_config),
        _info("biased_neighbor_sampling", "static", "constant", "per_vertex", False,
              BiasedNeighborSampling, BiasedNeighborSampling.default_config),
        _info("layer_sampling", "static", "constant", "per_layer", False,
              LayerSampling, LayerSampling.default_config),
        _info("multidimensional_random_walk", "dynamic", "one", "per_vertex", True,
              MultiDimensionalRandomWalk, MultiDimensionalRandomWalk.default_config),
        _info("node2vec", "dynamic", "one", "per_vertex", True,
              Node2Vec, Node2Vec.default_config),
    ]
}


def list_algorithms(*, bias: str | None = None, random_walk: bool | None = None) -> List[str]:
    """Names of registered algorithms, optionally filtered by design-space axis."""
    names = []
    for name, info in ALGORITHM_REGISTRY.items():
        if bias is not None and info.bias != bias:
            continue
        if random_walk is not None and info.is_random_walk != random_walk:
            continue
        names.append(name)
    return sorted(names)


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up an algorithm's registry entry by name."""
    info = ALGORITHM_REGISTRY.get(name)
    if info is None:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(ALGORITHM_REGISTRY)}")
    return info


def default_config(name: str, **overrides) -> SamplingConfig:
    """Default :class:`SamplingConfig` of a registered algorithm."""
    return get_algorithm(name).config_factory(**overrides)
