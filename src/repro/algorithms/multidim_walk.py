"""Multi-dimensional random walk (frontier sampling).

Multi-dimensional random walk (Ribeiro & Towsley's frontier sampling, used by
GraphSAINT's random-walk sampler) maintains a pool of ``m`` walker positions.
At every step it selects *one* vertex from the pool with probability
proportional to its degree (``VERTEXBIAS = degree``), samples one uniformly
random neighbor of it (``EDGEBIAS = 1``) and replaces the selected pool entry
with that neighbor (Fig. 3(b) and Fig. 4 of the paper).  The sampled edges
accumulate into one subgraph per instance.
"""

from __future__ import annotations

import numpy as np

from repro.api.bias import (EdgePool, FrontierPoolView, SamplingProgram,
                            SegmentedEdgePool)
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope

__all__ = ["MultiDimensionalRandomWalk"]


class MultiDimensionalRandomWalk(SamplingProgram):
    """Frontier sampling: degree-biased pool selection, uniform neighbor pick."""

    name = "multidimensional_random_walk"
    supports_coalescing = True  # hooks are pure functions of their arguments
    compiled_bias = "uniform"
    compiled_update = "keep_src_on_dead_end"
    compiled_vertex_bias = "degree_plus_one"

    def vertex_bias(self, pool: FrontierPoolView) -> np.ndarray:
        # Degree as the pool-selection bias (Fig. 3(b)); add-one so isolated
        # vertices keep a nonzero chance of being cycled out of the pool.
        return pool.degrees.astype(np.float64) + 1.0

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def vertex_bias_batch(self, pools) -> list:
        return [pool.degrees.astype(np.float64) + 1.0 for pool in pools]

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        if sampled.size == 0:
            # Dead end: keep the source in the pool so the pool size is stable.
            return np.array([edges.src], dtype=np.int64)
        return sampled

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """One pool vertex advanced per step, pool entry replaced in place."""
        base = dict(
            frontier_size=1,
            neighbor_size=1,
            depth=16,
            with_replacement=True,
            scope=SelectionScope.PER_VERTEX,
            pool_policy=PoolPolicy.REPLACE_SELECTED,
            track_visited=False,
        )
        base.update(overrides)
        return SamplingConfig(**base)
