"""Metropolis-Hastings random walk.

The Metropolis-Hastings walk proposes a uniformly random neighbor ``u`` of
the current vertex ``v`` and accepts the move with probability
``min(1, deg(v) / deg(u))``; otherwise the walker stays at ``v``.  The
acceptance rule makes the stationary distribution uniform over vertices,
which is why the technique is popular for unbiased vertex sampling of social
networks.  In C-SAW terms the proposal is an unbiased NeighborSize = 1
selection and the accept/reject step lives in the ``accept`` / ``update``
hooks.
"""

from __future__ import annotations

import numpy as np

from repro.api.bias import EdgePool, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope

__all__ = ["MetropolisHastingsWalk"]


class MetropolisHastingsWalk(SamplingProgram):
    """MH random walk: uniform proposal, degree-ratio acceptance."""

    name = "metropolis_hastings_walk"
    #: Acceptance draws consume ``self._rng`` in hook call order, so runs
    #: cannot share an engine batch (see SamplingProgram.supports_coalescing).
    supports_coalescing = False
    #: The proposal is uniform; the stateful ``accept`` rejection draw is
    #: what keeps the program interpreted.
    compiled_bias = "uniform"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        return np.ones(edges.size, dtype=np.float64)

    def accept(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        if sampled.size == 0:
            return sampled
        src_degree = float(edges.graph.degree(edges.src))
        dst_degrees = edges.graph.degrees[sampled].astype(np.float64)
        # deg(u) can be zero for sink vertices; accepting such a move would
        # strand the walker, so treat it as an automatic rejection.
        with np.errstate(divide="ignore"):
            ratios = np.where(dst_degrees > 0, src_degree / dst_degrees, 0.0)
        draws = self._rng.random(sampled.size)
        return sampled[draws < np.minimum(1.0, ratios)]

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        if sampled.size == 0:
            # Rejected: the walker stays at the current vertex.
            return np.array([edges.src], dtype=np.int64)
        return sampled

    @staticmethod
    def default_config(**overrides) -> SamplingConfig:
        """Walk-style config: one proposal per step, repeats allowed."""
        base = dict(
            frontier_size=0,
            neighbor_size=1,
            depth=8,
            with_replacement=True,
            scope=SelectionScope.PER_VERTEX,
            pool_policy=PoolPolicy.NEXT_LAYER,
            track_visited=False,
        )
        base.update(overrides)
        return SamplingConfig(**base)
