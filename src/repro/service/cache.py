"""Deterministic sample-result cache with byte-budgeted LRU eviction.

Sampling is deterministic per ``(graph, epoch, algorithm, config,
program kwargs, seeds, instance count)`` -- the counter RNG is stateless
and every coordinate it mixes is in that tuple -- so caching is *bit-exact*:
a hit returns the same samples, iteration counts and cost totals a fresh
run would produce, without dispatching any work.  Epoch retirement
(``docs/dynamic.md``) is the natural invalidation signal: when the service
releases a retired ``(graph, epoch)``, exactly that epoch's entries are
evicted; entries of still-serving epochs (including older pinned ones)
stay.

Entries store defensive copies of the sample arrays in both directions:
responses hand arrays to callers who may mutate them, and a poisoned cache
would silently break the bit-compat contract.

Thread-safety: one lock around the LRU map -- ``get``/``put`` run from the
service's submit and collector threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["CachedResult", "SampleCache", "cache_key"]

#: Fixed per-entry bookkeeping charge (key tuple, dict slots, stats dict)
#: added to the array payload when accounting an entry against the budget.
_ENTRY_OVERHEAD_BYTES = 512


def cache_key(request, epoch: int) -> Tuple:
    """The determinism key of one request against one resolved epoch.

    Everything that influences the sampled bits is here -- and nothing
    else: ``tenant`` / ``priority`` / ``request_id`` are excluded, so one
    tenant's run can serve every tenant's identical query.
    """
    return (
        request.graph,
        int(epoch),
        request.algorithm,
        request.resolve_config(),
        tuple(sorted(request.program_kwargs.items())),
        request.seeds,
        request.num_instances,
    )


@dataclass
class CachedResult:
    """One cached answer: the response payload minus per-request identity.

    ``samples`` holds ``(instance_id, seeds, edges)`` tuples exactly as a
    worker payload ships them; ``stats`` is the worker-side stats dict
    (cost totals, step tier, kernel-cache deltas) *without* the per-request
    latency annotations the collector adds.
    """

    samples: List[Tuple[int, np.ndarray, np.ndarray]]
    iteration_counts: List[int]
    route: str
    coalesced_with: int
    stats: Dict[str, object]
    plan: Optional[Dict[str, object]] = None
    nbytes: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.nbytes:
            arrays = _ENTRY_OVERHEAD_BYTES
            for _, seeds, edges in self.samples:
                arrays += int(np.asarray(seeds).nbytes)
                arrays += int(np.asarray(edges).nbytes)
            arrays += 8 * len(self.iteration_counts)
            self.nbytes = arrays

    def copy(self) -> "CachedResult":
        """Deep copy of the array payload (defensive in both directions)."""
        return CachedResult(
            samples=[
                (int(i), np.array(s, copy=True), np.array(e, copy=True))
                for i, s, e in self.samples
            ],
            iteration_counts=list(self.iteration_counts),
            route=self.route,
            coalesced_with=self.coalesced_with,
            stats=dict(self.stats),
            plan=dict(self.plan) if self.plan is not None else None,
            nbytes=self.nbytes,
        )


class SampleCache:
    """Byte-budgeted LRU map from determinism keys to cached results."""

    def __init__(self, max_bytes: int):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0 (omit the cache to disable)")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Tuple, CachedResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[CachedResult]:
        """LRU lookup; a hit returns a defensive copy and refreshes recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.copy()

    def put(self, key: Tuple, result: CachedResult) -> None:
        """Insert (a defensive copy of) one result, evicting LRU overflow.

        A result bigger than the whole budget is not cached at all --
        admitting it would evict everything for an entry that itself gets
        evicted by the next insert.
        """
        entry = result.copy()
        if entry.nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old.nbytes
            self._entries[key] = entry
            self.current_bytes += entry.nbytes
            while self.current_bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.current_bytes -= evicted.nbytes
                self.evictions += 1

    def invalidate_epoch(self, graph: str, epoch: int) -> int:
        """Evict exactly one retired ``(graph, epoch)``'s entries."""
        with self._lock:
            doomed = [
                key for key in self._entries
                if key[0] == graph and key[1] == int(epoch)
            ]
            for key in doomed:
                self.current_bytes -= self._entries.pop(key).nbytes
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def keys(self) -> List[Tuple]:
        """Current keys, LRU-first (tests and debugging)."""
        with self._lock:
            return list(self._entries.keys())

    def stats(self) -> Dict[str, object]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "current_bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
