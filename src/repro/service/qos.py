"""Per-tenant quality-of-service: cost-based admission control.

The gateway charges every admitted request's *predicted* cost -- the
planner's ``ExecutionPlan.calibrated_time_s`` estimate of host wall time --
against its tenant's token bucket **before** any compute is spent.  A tenant
over its quota is shed at submit time with a typed :class:`AdmissionRejected`
carrying a ``retry_after_s`` hint (when the bucket will have refilled enough
to admit this request), so a greedy tenant queues against its own budget
instead of starving everyone else's dispatch lanes.

Quotas are expressed in *cost-seconds*: a :class:`TenantQuota` with
``rate=0.5`` may spend half a second of predicted compute per wall-clock
second, with bursts up to ``burst`` cost-seconds.  Tenants without an
explicit quota fall back to the controller's default quota; a ``None``
default means unlimited (admission control off for unlisted tenants).

Everything here is deliberately execution-free: deciding admission never
touches the dispatcher, the planner cache warm-up aside.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = [
    "AdmissionRejected",
    "TenantQuota",
    "TokenBucket",
    "AdmissionController",
]


class AdmissionRejected(RuntimeError):
    """A request was shed by admission control before any compute ran.

    Raised synchronously from ``SamplingService.submit``.  Not a transient
    service failure -- the request itself was fine, its tenant is over
    quota -- so the clients' transient-retry machinery ignores it; instead
    both clients honour :attr:`retry_after_s` (sleep, then resubmit) when
    ``retries`` remain.

    Attributes
    ----------
    tenant:
        The tenant whose quota shed the request.
    retry_after_s:
        Seconds until the tenant's bucket will hold enough budget to admit
        a request of this predicted cost (``inf`` when it never will under
        the current quota, e.g. a global overload shed).
    predicted_cost_s:
        The planner's calibrated cost estimate that was charged.
    reason:
        ``"tenant_quota"`` or ``"service_overloaded"``.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str,
        retry_after_s: float,
        predicted_cost_s: float = 0.0,
        reason: str = "tenant_quota",
    ):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = float(retry_after_s)
        self.predicted_cost_s = float(predicted_cost_s)
        self.reason = reason


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission budget, in predicted cost-seconds.

    ``rate`` is the sustained spend (cost-seconds of predicted compute per
    wall second); ``burst`` is the bucket capacity -- how much a tenant may
    spend at once after being idle.  A single request costlier than
    ``burst`` is still admissible: it requires a *full* bucket and drains
    it completely (charge clamped to capacity), so oversized one-off
    requests run at full-refill cadence instead of being starved forever.
    """

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError("rate must be > 0 cost-seconds per second")
        if self.burst <= 0.0:
            raise ValueError("burst must be > 0 cost-seconds")


class TokenBucket:
    """Continuous-refill token bucket over an injectable monotonic clock."""

    __slots__ = ("quota", "level", "_last_refill")

    def __init__(self, quota: TenantQuota, now: float):
        self.quota = quota
        self.level = quota.burst  # start full: idle tenants have headroom
        self._last_refill = now

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0.0:
            self.level = min(
                self.quota.burst, self.level + elapsed * self.quota.rate
            )
        self._last_refill = now

    def try_spend(self, cost: float, now: float) -> float:
        """Admit-or-price: returns 0.0 on admission, else seconds to wait.

        The charge is clamped to the bucket capacity so requests costlier
        than ``burst`` admit on a full bucket (see :class:`TenantQuota`).
        """
        self._refill(now)
        charge = min(float(cost), self.quota.burst)
        if charge <= self.level:
            self.level -= charge
            return 0.0
        return (charge - self.level) / self.quota.rate


class AdmissionController:
    """Per-tenant token buckets behind one lock (admission is not hot).

    ``clock`` is injectable for deterministic tests; production uses
    ``time.monotonic``.
    """

    def __init__(
        self,
        *,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.default_quota = default_quota
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self._clock = clock
        self._lock = threading.Lock()

    def quota_for(self, tenant: str) -> Optional[TenantQuota]:
        """The quota in force for a tenant (``None`` = unlimited)."""
        return self._quotas.get(tenant, self.default_quota)

    def set_quota(self, tenant: str, quota: Optional[TenantQuota]) -> None:
        """Install (or with ``None`` remove) a tenant's explicit quota.

        The tenant's bucket resets to the new quota's full burst.
        """
        with self._lock:
            if quota is None:
                self._quotas.pop(tenant, None)
            else:
                self._quotas[tenant] = quota
            self._buckets.pop(tenant, None)

    def admit(self, tenant: str, predicted_cost_s: float) -> None:
        """Charge a request's predicted cost; raises when over quota."""
        with self._lock:
            quota = self.quota_for(tenant)
            if quota is None:
                return
            now = self._clock()
            bucket = self._buckets.get(tenant)
            if bucket is None or bucket.quota is not quota:
                bucket = self._buckets[tenant] = TokenBucket(quota, now)
            retry_after = bucket.try_spend(predicted_cost_s, now)
        if retry_after > 0.0:
            raise AdmissionRejected(
                f"tenant {tenant!r} over quota: predicted cost "
                f"{predicted_cost_s:.3e} cost-s exceeds remaining budget; "
                f"retry after {retry_after:.3f}s",
                tenant=tenant,
                retry_after_s=retry_after,
                predicted_cost_s=predicted_cost_s,
                reason="tenant_quota",
            )

    def headroom(self, tenant: str) -> float:
        """The tenant's current bucket level (``inf`` when unlimited)."""
        with self._lock:
            quota = self.quota_for(tenant)
            if quota is None:
                return float("inf")
            now = self._clock()
            bucket = self._buckets.get(tenant)
            if bucket is None or bucket.quota is not quota:
                bucket = self._buckets[tenant] = TokenBucket(quota, now)
            bucket._refill(now)
            return bucket.level
