"""Synchronous and asyncio clients for the sampling service.

Both are thin conveniences over :meth:`SamplingService.submit`: they build
the :class:`~repro.api.requests.SampleRequest`, hand it to the service and
resolve the future -- blocking for :class:`SamplingClient`, awaitable for
:class:`AsyncSamplingClient` (the service's ``concurrent.futures.Future`` is
bridged onto the running event loop, so thousands of in-flight requests cost
one coroutine each, not one thread each).

Both clients accept ``timeout=`` (seconds to wait for the response) and
``retries=`` (how many times to *resubmit* a request that failed because its
worker crashed or its unit went unanswered -- losses the service marks
``transient`` on the raised :class:`~repro.service.server.ServiceError`).
Each retry is a fresh request with a fresh id; deterministic sampling makes
the retried response identical to what the lost one would have been, with
one caveat: an *unpinned* request (``epoch=None``) re-resolves the graph's
latest epoch on every attempt, so a retry that straddles a concurrent
``update_graph`` runs on the new epoch (pin ``epoch=`` to rule that out).
Failures caused by the request itself (bad seeds, unknown algorithm,
program errors) are never retried.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional, Sequence

from repro.api.requests import SampleRequest, SampleResponse
from repro.service.qos import AdmissionRejected
from repro.service.server import SamplingService, ServiceError

__all__ = ["SamplingClient", "AsyncSamplingClient"]

#: Longest a client retry sleeps on an admission retry-after hint.  Quotas
#: refill continuously, so waiting longer than this per attempt only burns
#: attempts the next refill window would have served.
MAX_RETRY_AFTER_S = 5.0


def _should_retry(error: ServiceError, attempt: int, attempts: int) -> bool:
    """Shared retry gate: resubmit only service-marked transient failures."""
    return attempt + 1 < attempts and bool(getattr(error, "transient", False))


def _admission_backoff(
    error: AdmissionRejected, attempt: int, attempts: int
) -> Optional[float]:
    """Seconds to wait before resubmitting a quota-shed request.

    ``None`` means do not retry: either attempts ran out or the rejection
    carries no finite retry-after hint (a request that can never pass its
    quota must surface, not spin).
    """
    if attempt + 1 >= attempts:
        return None
    retry_after = error.retry_after_s
    if retry_after is None or not (retry_after >= 0.0) or retry_after == float("inf"):
        return None
    return min(retry_after, MAX_RETRY_AFTER_S)


def _annotate_attempts(response: SampleResponse, attempt: int) -> SampleResponse:
    """Telemetry: how many submissions this answer took (1 = no retries)."""
    response.stats["attempts"] = float(attempt + 1)
    return response


def _build_request(
    graph: str,
    algorithm: str,
    seeds: Sequence,
    num_instances: Optional[int],
    program_kwargs: Optional[dict],
    config_overrides: dict,
    epoch: Optional[int] = None,
    tenant: str = "default",
    priority: int = 0,
) -> SampleRequest:
    return SampleRequest(
        graph=graph,
        algorithm=algorithm,
        seeds=tuple(seeds) if not isinstance(seeds, tuple) else seeds,
        num_instances=num_instances,
        epoch=epoch,
        config_overrides=config_overrides,
        program_kwargs=program_kwargs or {},
        tenant=tenant,
        priority=priority,
    )


class SamplingClient:
    """Blocking client: one call, one :class:`SampleResponse`."""

    def __init__(self, service: SamplingService):
        self.service = service

    def sample(
        self,
        graph: str,
        algorithm: str,
        seeds: Sequence,
        *,
        num_instances: Optional[int] = None,
        program_kwargs: Optional[dict] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        epoch: Optional[int] = None,
        tenant: str = "default",
        priority: int = 0,
        **config_overrides,
    ) -> SampleResponse:
        """Sample and wait.  ``config_overrides`` go to the algorithm's
        default config (``depth=...``, ``neighbor_size=...``, ``seed=...``);
        ``epoch`` pins a published graph version (default: latest);
        ``tenant`` / ``priority`` feed the gateway's quota accounting and
        dispatch lanes; ``retries`` resubmits on transient worker-crash
        failures and -- sleeping out the rejection's ``retry_after_s``
        hint -- on per-tenant quota sheds."""
        if retries < 0:
            raise ValueError("retries must be >= 0")
        attempts = retries + 1
        for attempt in range(attempts):
            request = _build_request(
                graph, algorithm, seeds, num_instances, program_kwargs,
                config_overrides, epoch, tenant, priority,
            )
            try:
                return _annotate_attempts(
                    self.service.submit(request).result(timeout=timeout),
                    attempt,
                )
            except AdmissionRejected as exc:
                backoff = _admission_backoff(exc, attempt, attempts)
                if backoff is None:
                    raise
                time.sleep(backoff)
            except ServiceError as exc:
                if not _should_retry(exc, attempt, attempts):
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def submit(self, request: SampleRequest):
        """Escape hatch: submit a prebuilt request, get the raw future."""
        return self.service.submit(request)


class AsyncSamplingClient:
    """Asyncio client; safe to fan out many concurrent ``sample`` calls."""

    def __init__(self, service: SamplingService):
        self.service = service

    async def sample(
        self,
        graph: str,
        algorithm: str,
        seeds: Sequence,
        *,
        num_instances: Optional[int] = None,
        program_kwargs: Optional[dict] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        epoch: Optional[int] = None,
        tenant: str = "default",
        priority: int = 0,
        **config_overrides,
    ) -> SampleResponse:
        """Awaitable variant of :meth:`SamplingClient.sample` (same
        ``timeout`` / ``retries`` / ``tenant`` / ``priority`` semantics;
        quota-shed backoffs await instead of blocking)."""
        if retries < 0:
            raise ValueError("retries must be >= 0")
        attempts = retries + 1
        for attempt in range(attempts):
            request = _build_request(
                graph, algorithm, seeds, num_instances, program_kwargs,
                config_overrides, epoch, tenant, priority,
            )
            try:
                future = self.service.submit(request)
            except AdmissionRejected as exc:
                backoff = _admission_backoff(exc, attempt, attempts)
                if backoff is None:
                    raise
                await asyncio.sleep(backoff)
                continue
            try:
                response = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout=timeout
                )
                return _annotate_attempts(response, attempt)
            except ServiceError as exc:
                if not _should_retry(exc, attempt, attempts):
                    raise
        raise AssertionError("unreachable")  # pragma: no cover
