"""Synchronous and asyncio clients for the sampling service.

Both are thin conveniences over :meth:`SamplingService.submit`: they build
the :class:`~repro.api.requests.SampleRequest`, hand it to the service and
resolve the future -- blocking for :class:`SamplingClient`, awaitable for
:class:`AsyncSamplingClient` (the service's ``concurrent.futures.Future`` is
bridged onto the running event loop, so thousands of in-flight requests cost
one coroutine each, not one thread each).
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

from repro.api.requests import SampleRequest, SampleResponse
from repro.service.server import SamplingService

__all__ = ["SamplingClient", "AsyncSamplingClient"]


def _build_request(
    graph: str,
    algorithm: str,
    seeds: Sequence,
    num_instances: Optional[int],
    program_kwargs: Optional[dict],
    config_overrides: dict,
    epoch: Optional[int] = None,
) -> SampleRequest:
    return SampleRequest(
        graph=graph,
        algorithm=algorithm,
        seeds=tuple(seeds) if not isinstance(seeds, tuple) else seeds,
        num_instances=num_instances,
        epoch=epoch,
        config_overrides=config_overrides,
        program_kwargs=program_kwargs or {},
    )


class SamplingClient:
    """Blocking client: one call, one :class:`SampleResponse`."""

    def __init__(self, service: SamplingService):
        self.service = service

    def sample(
        self,
        graph: str,
        algorithm: str,
        seeds: Sequence,
        *,
        num_instances: Optional[int] = None,
        program_kwargs: Optional[dict] = None,
        timeout: Optional[float] = None,
        epoch: Optional[int] = None,
        **config_overrides,
    ) -> SampleResponse:
        """Sample and wait.  ``config_overrides`` go to the algorithm's
        default config (``depth=...``, ``neighbor_size=...``, ``seed=...``);
        ``epoch`` pins a published graph version (default: latest)."""
        request = _build_request(
            graph, algorithm, seeds, num_instances, program_kwargs,
            config_overrides, epoch,
        )
        return self.service.submit(request).result(timeout=timeout)

    def submit(self, request: SampleRequest):
        """Escape hatch: submit a prebuilt request, get the raw future."""
        return self.service.submit(request)


class AsyncSamplingClient:
    """Asyncio client; safe to fan out many concurrent ``sample`` calls."""

    def __init__(self, service: SamplingService):
        self.service = service

    async def sample(
        self,
        graph: str,
        algorithm: str,
        seeds: Sequence,
        *,
        num_instances: Optional[int] = None,
        program_kwargs: Optional[dict] = None,
        epoch: Optional[int] = None,
        **config_overrides,
    ) -> SampleResponse:
        """Awaitable variant of :meth:`SamplingClient.sample`."""
        request = _build_request(
            graph, algorithm, seeds, num_instances, program_kwargs,
            config_overrides, epoch,
        )
        future = self.service.submit(request)
        return await asyncio.wrap_future(future)
