"""Shared-memory graph store: one CSR copy mapped by every worker.

The sampling service keeps each loaded graph's CSR arrays in
:mod:`multiprocessing.shared_memory` segments.  Consumers -- service
workers, and the sharded cluster's per-shard processes
(:mod:`repro.distributed.transport`) -- receive a
:class:`SharedGraphHandle` (names, dtypes and lengths of the segments) and
:func:`attach` zero-copy NumPy views over them, so N processes share one
physical copy of the graph instead of N pickled replicas.

Lifecycle contract
------------------

* ``put`` / ``load_npz_file`` (owner) -- create the segments and copy the CSR
  arrays in; a per-graph int64 *refcount* segment starts at 1 (the owner's
  reference).
* ``publish`` (owner) -- store a new *epoch* (version) of an existing graph
  in fresh segments.  Old epochs stay mapped until explicitly released, so
  in-flight work keeps sampling the version it started on; the serving
  layer drains and releases them (see ``docs/dynamic.md``).
* ``attach`` (any process) -- map the segments, increment the refcount and
  return an :class:`AttachedGraph`; call :meth:`AttachedGraph.close` when
  done (decrements and unmaps).
* ``release`` / ``close`` (owner) -- drop the owner reference and **unlink**
  the segments.  Unlinking while workers are still attached is safe on
  Linux: the memory lives until the last mapping closes, only the name
  disappears.
* Crash safety -- the owner registers an ``atexit`` hook that unlinks
  everything it created, and every segment name carries the store's prefix
  so :func:`leaked_segments` can audit ``/dev/shm`` after a run.

The refcount is advisory (increments from concurrently attaching processes
are not atomic); it exists so an owner can warn when it unlinks a graph that
workers still map, not to arbitrate correctness.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import load_npz

__all__ = [
    "SharedGraphHandle",
    "AttachedGraph",
    "SharedGraphStore",
    "attach",
    "leaked_segments",
]

_REFCOUNT_FIELD = "refs"


@dataclass(frozen=True)
class SharedGraphHandle:
    """Everything a worker needs to map one stored graph *version*."""

    name: str
    num_vertices: int
    num_edges: int
    nbytes: int
    #: ``(field, shared-memory segment name, dtype string, length)`` tuples
    #: for ``row_ptr`` / ``col_idx`` / optionally ``weights`` plus the
    #: refcount segment.
    segments: Tuple[Tuple[str, str, str, int], ...]
    #: Graph version this handle maps.  :meth:`SharedGraphStore.publish`
    #: creates a new epoch per update; work dispatched against an epoch
    #: keeps running on it even after a newer epoch is published.
    epoch: int = 0

    @property
    def weighted(self) -> bool:
        """Whether the stored graph carries per-edge weights."""
        return any(field == "weights" for field, _, _, _ in self.segments)


class AttachedGraph:
    """A process-local mapping of a stored graph (hold it while sampling)."""

    def __init__(self, handle: SharedGraphHandle, graph: CSRGraph,
                 shms: List[shared_memory.SharedMemory],
                 refcount: Optional[np.ndarray]):
        self.handle = handle
        self.graph = graph
        self._shms = shms
        self._refcount = refcount
        self._closed = False

    @property
    def refcount(self) -> int:
        """Current (advisory) number of references to the stored graph."""
        return int(self._refcount[0]) if self._refcount is not None else 0

    def close(self) -> None:
        """Drop this mapping (decrements the refcount; never unlinks)."""
        if self._closed:
            return
        self._closed = True
        if self._refcount is not None:
            self._refcount[0] -= 1
            self._refcount = None
        # Drop array views before unmapping; a mapping with live exports
        # cannot be closed, so the graph must not be used past this point.
        self.graph = None  # type: ignore[assignment]
        for shm in self._shms:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - exported views survive
                pass
        self._shms = []

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


_attach_lock = threading.Lock()


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting unlink responsibility.

    Python < 3.13 registers every attached segment with the resource
    tracker, which makes an attach-only consumer's tracker unlink (or
    double-unregister) segments the *owner* is responsible for.  Suppress
    the registration during the attach; 3.13+ expresses the same thing as
    ``track=False``.  ``_attach_lock`` keeps this module's own segment
    *creation* (:meth:`SharedGraphStore.put`) out of the suppression
    window; a concurrent creation by unrelated third-party code in another
    thread could still slip through it un-tracked on Python < 3.13.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]


def attach(handle: SharedGraphHandle) -> AttachedGraph:
    """Map a stored graph into this process (zero-copy views of the CSR)."""
    shms: List[shared_memory.SharedMemory] = []
    arrays: Dict[str, np.ndarray] = {}
    refcount: Optional[np.ndarray] = None
    try:
        for field, segment_name, dtype, length in handle.segments:
            shm = _open_segment(segment_name)
            shms.append(shm)
            view = np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf)
            if field == _REFCOUNT_FIELD:
                refcount = view
            else:
                arrays[field] = view
        graph = CSRGraph(
            arrays["row_ptr"], arrays["col_idx"], arrays.get("weights")
        )
    except Exception:
        for shm in shms:
            try:
                shm.close()
            except Exception:
                pass
        raise
    if refcount is not None:
        refcount[0] += 1
    return AttachedGraph(handle, graph, shms, refcount)


def leaked_segments(prefix: str) -> List[str]:
    """Names under ``/dev/shm`` still carrying ``prefix`` (Linux audit)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return sorted(n for n in os.listdir(shm_dir) if n.startswith(prefix))


class _StoredGraph:
    """Owner-side record of one published graph."""

    def __init__(self, handle: SharedGraphHandle,
                 shms: List[shared_memory.SharedMemory],
                 refcount: np.ndarray, graph: CSRGraph):
        self.handle = handle
        self.shms = shms
        self.refcount = refcount
        self.graph = graph


class SharedGraphStore:
    """Owner of the service's shared-memory graph segments."""

    def __init__(self, prefix: Optional[str] = None):
        #: Segment-name prefix; also the handle for leak audits.  Kept short:
        #: POSIX shm names are limited and macOS caps them at 31 characters.
        self.prefix = prefix or f"csaw{os.getpid() % 100000}x{secrets.token_hex(2)}"
        #: name -> epoch -> stored graph.  Epochs are monotonically
        #: increasing per name and never reused, even after release.
        self._graphs: Dict[str, Dict[int, _StoredGraph]] = {}
        self._next_epoch: Dict[str, int] = {}
        self._segment_counter = 0  # never reused, even after release()
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------ #
    def put(self, name: str, graph: CSRGraph) -> SharedGraphHandle:
        """Publish a graph under a name not currently stored.

        The first ``put`` of a name starts at epoch 0.  Epoch numbers are
        monotone per name for the store's whole lifetime -- re-``put``-ting
        a fully released name continues the old numbering, so stale handles
        can never alias a new graph version.
        """
        if self._closed:
            raise RuntimeError("store is closed")
        if name in self._graphs:
            raise ValueError(f"graph {name!r} is already stored")
        return self._store_epoch(name, graph)

    def publish(self, name: str, graph: CSRGraph) -> SharedGraphHandle:
        """Publish a new *epoch* (version) of an already-stored graph.

        The previous epoch stays mapped and attachable until it is released
        -- in-flight work dispatched against it finishes on the version it
        started on.  Returns the new epoch's handle.
        """
        if self._closed:
            raise RuntimeError("store is closed")
        if name not in self._graphs:
            raise KeyError(f"no graph named {name!r} in the store")
        return self._store_epoch(name, graph)

    def _store_epoch(self, name: str, graph: CSRGraph) -> SharedGraphHandle:
        epoch = self._next_epoch.get(name, 0)
        arrays: List[Tuple[str, np.ndarray]] = [
            ("row_ptr", graph.row_ptr),
            ("col_idx", graph.col_idx),
        ]
        if graph.weights is not None:
            arrays.append(("weights", graph.weights))
        arrays.append((_REFCOUNT_FIELD, np.ones(1, dtype=np.int64)))

        shms: List[shared_memory.SharedMemory] = []
        segments: List[Tuple[str, str, str, int]] = []
        views: Dict[str, np.ndarray] = {}
        try:
            for field, source in arrays:
                segment_name = f"{self.prefix}s{self._segment_counter}"
                self._segment_counter += 1
                with _attach_lock:  # keep creation out of attach's
                    shm = shared_memory.SharedMemory(  # register-suppression
                        create=True, size=max(int(source.nbytes), 1),
                        name=segment_name,
                    )
                shms.append(shm)
                view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
                np.copyto(view, source)
                views[field] = view
                segments.append(
                    (field, segment_name, source.dtype.str, int(source.size))
                )
        except Exception:
            for shm in shms:
                try:
                    shm.close()
                    shm.unlink()
                except Exception:
                    pass
            raise

        handle = SharedGraphHandle(
            name=name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            nbytes=graph.nbytes,
            segments=tuple(segments),
            epoch=epoch,
        )
        shared_graph = CSRGraph(
            views["row_ptr"], views["col_idx"], views.get("weights")
        )
        self._graphs.setdefault(name, {})[epoch] = _StoredGraph(
            handle, shms, views[_REFCOUNT_FIELD], shared_graph
        )
        self._next_epoch[name] = epoch + 1
        return handle

    def load_npz_file(self, name: str, path, *, mmap: bool = True) -> SharedGraphHandle:
        """Load an NPZ graph straight into shared memory.

        With ``mmap=True`` (and an uncompressed NPZ) the file's pages are
        copied directly into the segments without an intermediate heap copy.
        """
        return self.put(name, load_npz(path, mmap=mmap))

    # ------------------------------------------------------------------ #
    def handle(self, name: str, epoch: Optional[int] = None) -> SharedGraphHandle:
        """Handle of a stored graph (latest epoch unless one is pinned)."""
        return self._stored(name, epoch).handle

    def graph(self, name: str, epoch: Optional[int] = None) -> CSRGraph:
        """Owner-side zero-copy view of a stored graph (thread workers use it)."""
        return self._stored(name, epoch).graph

    def refcount(self, name: str, epoch: Optional[int] = None) -> int:
        """Advisory reference count of a stored graph epoch."""
        return int(self._stored(name, epoch).refcount[0])

    def names(self) -> List[str]:
        """Names of all stored graphs."""
        return sorted(self._graphs)

    def epochs(self, name: str) -> List[int]:
        """Epochs of ``name`` still mapped, oldest first."""
        if name not in self._graphs:
            raise KeyError(f"no graph named {name!r} in the store")
        return sorted(self._graphs[name])

    def latest_epoch(self, name: str) -> int:
        """Most recently published epoch of ``name``."""
        return self.epochs(name)[-1]

    def _stored(self, name: str, epoch: Optional[int] = None) -> _StoredGraph:
        by_epoch = self._graphs.get(name)
        if not by_epoch:
            raise KeyError(f"no graph named {name!r} in the store")
        if epoch is None:
            epoch = max(by_epoch)
        stored = by_epoch.get(epoch)
        if stored is None:
            raise KeyError(f"graph {name!r} has no epoch {epoch} (released?)")
        return stored

    # ------------------------------------------------------------------ #
    def release(self, name: str, epoch: Optional[int] = None) -> None:
        """Drop and unlink a graph's segments (see the lifecycle contract).

        With ``epoch=None`` every epoch of ``name`` is released; otherwise
        only the given epoch is (the name stays stored while other epochs
        remain).  Releasing an unknown name or epoch is a no-op.
        """
        by_epoch = self._graphs.get(name)
        if by_epoch is None:
            return
        targets = sorted(by_epoch) if epoch is None else [epoch]
        for target in targets:
            stored = by_epoch.pop(target, None)
            if stored is None:
                continue
            stored.refcount[0] -= 1
            stored.graph = None  # type: ignore[assignment]
            stored.refcount = None  # type: ignore[assignment]
            for shm in stored.shms:
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - exported views survive
                    pass
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        if not by_epoch:
            self._graphs.pop(name, None)

    def close(self) -> None:
        """Release every stored graph; idempotent (also runs at exit)."""
        if self._closed:
            return
        for name in list(self._graphs):
            self.release(name)
        self._closed = True
        atexit.unregister(self.close)

    def __enter__(self) -> "SharedGraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
