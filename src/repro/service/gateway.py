"""The service's multi-tenant front door: result cache + admission control.

``Gateway`` sits between ``SamplingService.submit`` and the dispatcher and
decides, *before any compute is spent*, one of three fates for a request:

1. **Cache hit** -- the deterministic result cache (:mod:`repro.service.
   cache`) already holds a bit-identical answer for the request's
   ``(graph, epoch, algorithm, config, program kwargs, seeds, instances)``
   key: build the :class:`~repro.api.requests.SampleResponse` right here and
   never touch the dispatcher.  Hits are free, so they bypass quota
   accounting too.
2. **Shed** -- the tenant's token bucket (:mod:`repro.service.qos`) cannot
   cover the planner's predicted cost, or the service-wide pending ceiling
   is reached: raise :class:`~repro.service.qos.AdmissionRejected` with a
   retry-after hint.
3. **Admit** -- charge the tenant's bucket and let the request queue in its
   priority lane.

Per-tenant counters (``tenant_requests`` / ``tenant_completed`` /
``tenant_shed`` / ``tenant_cache_hits``, labelled by tenant) land in the
service's metrics registry, so they show up in ``stats()`` and the
Prometheus dump alongside the cache hit-rate and shed-rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.api.requests import SampleRequest, SampleResponse
from repro.api.results import InstanceSample
from repro.service.cache import CachedResult, SampleCache, cache_key
from repro.service.qos import (
    AdmissionController,
    AdmissionRejected,
    TenantQuota,
)
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["GatewayConfig", "Gateway"]

#: Retry-after hint for service-wide overload sheds: the queue drains
#: continuously, so a short fixed backoff beats pricing an unknowable wait.
_OVERLOAD_RETRY_AFTER_S = 0.1


@dataclass(frozen=True)
class GatewayConfig:
    """Front-door switches, all independently optional.

    ``cache_bytes=None`` disables the result cache; ``default_quota=None``
    leaves unlisted tenants unlimited; ``max_pending=None`` disables the
    service-wide pending-request ceiling.
    """

    cache_bytes: Optional[int] = 64 * 1024 * 1024
    default_quota: Optional[TenantQuota] = None
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    max_pending: Optional[int] = None


class Gateway:
    """Cache + admission control in front of the dispatch queue."""

    def __init__(self, config: GatewayConfig, metrics: MetricsRegistry,
                 **admission_kwargs):
        self.config = config
        self.metrics = metrics
        self.cache: Optional[SampleCache] = (
            SampleCache(config.cache_bytes)
            if config.cache_bytes else None
        )
        self.admission = AdmissionController(
            default_quota=config.default_quota,
            quotas=config.quotas,
            **admission_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def admit(self, request: SampleRequest, predicted_cost_s: float,
              pending_count: int) -> None:
        """Shed-or-admit; raises :class:`AdmissionRejected` on shed.

        Charges the tenant's bucket with the planner's calibrated cost
        estimate.  The service-wide ``max_pending`` ceiling is checked
        first: global overload sheds regardless of tenant budgets.
        """
        ceiling = self.config.max_pending
        try:
            if ceiling is not None and pending_count >= ceiling:
                raise AdmissionRejected(
                    f"service overloaded: {pending_count} requests pending "
                    f"(ceiling {ceiling}); retry shortly",
                    tenant=request.tenant,
                    retry_after_s=_OVERLOAD_RETRY_AFTER_S,
                    predicted_cost_s=predicted_cost_s,
                    reason="service_overloaded",
                )
            self.admission.admit(request.tenant, predicted_cost_s)
        except AdmissionRejected:
            self.metrics.counter("requests_shed").inc()
            self.metrics.counter("tenant_shed", tenant=request.tenant).inc()
            raise

    # ------------------------------------------------------------------ #
    # Result cache
    # ------------------------------------------------------------------ #
    def lookup(self, request: SampleRequest, epoch: int) -> Optional[SampleResponse]:
        """A bit-identical cached answer, or ``None``.

        The returned response carries the cached run's samples, iteration
        counts, route, plan and cost totals verbatim, with
        ``stats["cache_hit"] = True``; the caller stamps latency.
        """
        if self.cache is None:
            return None
        entry = self.cache.get(cache_key(request, epoch))
        if entry is None:
            self.metrics.counter("cache_misses").inc()
            return None
        self.metrics.counter("cache_hits").inc()
        self.metrics.counter("tenant_cache_hits", tenant=request.tenant).inc()
        stats: Dict[str, object] = dict(entry.stats)
        stats["cache_hit"] = True
        stats["tenant"] = request.tenant
        stats["priority"] = request.priority
        return SampleResponse(
            request_id=request.request_id,
            graph=request.graph,
            algorithm=request.algorithm,
            samples=[
                InstanceSample(instance_id=i, seeds=s, edges=e)
                for i, s, e in entry.samples
            ],
            iteration_counts=list(entry.iteration_counts),
            route=entry.route,
            epoch=epoch,
            coalesced_with=entry.coalesced_with,
            stats=stats,
            plan=entry.plan,
        )

    def store(self, request: SampleRequest, epoch: int,
              result: CachedResult) -> None:
        """Cache one completed request's payload under its determinism key."""
        if self.cache is not None:
            self.cache.put(cache_key(request, epoch), result)

    def invalidate_epoch(self, graph: str, epoch: int) -> int:
        """Epoch retired: evict exactly its entries (0 when cache is off)."""
        if self.cache is None:
            return 0
        return self.cache.invalidate_epoch(graph, epoch)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def tenant_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant counter rollup from the bound metrics registry."""
        tenants: Dict[str, Dict[str, int]] = {}
        for metric, key in (
            ("tenant_requests", "submitted"),
            ("tenant_completed", "completed"),
            ("tenant_shed", "shed"),
            ("tenant_cache_hits", "cache_hits"),
        ):
            for labels, counter in self.metrics.find_counters(metric):
                tenant = labels.get("tenant", "?")
                tenants.setdefault(tenant, {})[key] = counter.value
        return tenants

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "cache_enabled": self.cache is not None,
            "max_pending": self.config.max_pending,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        tenants = self.tenant_stats()
        if tenants:
            out["tenants"] = tenants
        return out
