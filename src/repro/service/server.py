"""The sampling service front-end: queueing, coalescing, routing, demux.

:class:`SamplingService` owns a :class:`~repro.service.store.
SharedGraphStore` and a :class:`~repro.service.workers.WorkerPool`.  Requests
enter through :meth:`submit` (returning a ``concurrent.futures.Future``); a
dispatcher thread collects everything that arrives within the *batching
window*, groups compatible requests -- equal
:meth:`~repro.api.requests.SampleRequest.class_key` -- into
:class:`~repro.service.workers.WorkUnit`s, and a collector thread
demultiplexes worker results back onto the per-request futures.

Admission / routing is delegated to the unified planner
(:mod:`repro.planner`): :func:`~repro.planner.planner.plan_admission` decides
each published graph epoch's route and partition layout at load time (the
route table *is* a table of plans), and full
:class:`~repro.planner.plan.ExecutionPlan`\\ s are built lazily and cached
per ``(graph, epoch, algorithm, config)``, then specialised per dispatched
unit (fusion grouping, predicted cost).  The winning plan's metadata rides
on every answer as ``SampleResponse.plan`` (including the
:meth:`~repro.planner.plan.ExecutionPlan.explain` dry-run text).  Changing
``memory_budget_bytes`` (or ``cluster_shards``) never resizes an admitted
graph out from under its frozen sizing -- call :meth:`SamplingService.replan`
to drain a graph's requests and re-admit it under the settings in force.

Determinism contract: a request's samples are bit-identical to a standalone
sampler run with the same seeds and config, no matter what it was coalesced
with (see ``docs/service.md`` and :mod:`repro.engine.hetero`).
"""

from __future__ import annotations

import collections
import itertools
import os
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.api.requests import SampleRequest, SampleResponse
from repro.api.results import InstanceSample
from repro.graph.csr import CSRGraph
from repro.oom.scheduler import OutOfMemoryConfig
from repro.planner.errors import SeedValidationError
from repro.planner.plan import ExecutionPlan, PartitionLayout
from repro.planner.planner import (
    PlanRequest,
    plan,
    plan_admission,
    scale_plan,
    validate_seed_tuples,
)
from repro.service.cache import CachedResult
from repro.service.gateway import Gateway, GatewayConfig
from repro.service.qos import AdmissionRejected, TenantQuota
from repro.service.store import SharedGraphStore
from repro.service.workers import RequestSpec, UnitResult, WorkUnit, WorkerPool
from repro.telemetry import profiler as _profiler
from repro.telemetry import trace as _trace
from repro.telemetry.feedback import FEEDBACK
from repro.telemetry.health import HealthMonitor, LatencyObjective
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import FlightRecorder

__all__ = ["ServiceError", "ServiceStats", "SamplingService"]


class ServiceError(RuntimeError):
    """A request failed inside the service (the worker traceback is attached).

    ``transient`` marks failures the request itself is blameless for -- its
    worker crashed or its unit went unanswered -- where resubmitting the
    same request is safe and (by determinism) yields the answer the lost
    run would have produced.  The clients' ``retries=`` machinery keys off
    this flag.
    """

    def __init__(self, message: str, *, transient: bool = False):
        super().__init__(message)
        self.transient = transient


@dataclass
class ServiceStats:
    """Aggregate service counters plus telemetry-derived rates.

    Readable two ways for compatibility: as the attribute it always was
    (``service.stats.units_dispatched``) and as a callable
    (``service.stats()`` -- alias of :meth:`snapshot`) returning the flat
    dict with per-route latency percentiles, queue-wait, fusion rate and
    kernel-cache hit rate mixed in from the service's metrics registry.
    """

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    #: Requests shed by admission control before any compute was spent
    #: (never counted as submitted -- they were refused at the door).
    requests_shed: int = 0
    #: Requests answered bit-identically from the result cache (these ARE
    #: counted submitted + completed; they just never dispatched).
    cache_hits: int = 0
    units_dispatched: int = 0
    coalesced_requests: int = 0  # requests that shared a unit with others
    oom_requests: int = 0
    sharded_requests: int = 0
    #: Most recent request latencies (bounded: a long-running service must
    #: not accumulate one float per request forever).
    latencies_s: Deque[float] = field(
        default_factory=lambda: collections.deque(maxlen=4096)
    )

    def bind(self, registry: MetricsRegistry,
             gateway: Optional["Gateway"] = None) -> "ServiceStats":
        """Attach the registry (and gateway) that enrich :meth:`snapshot`."""
        self._registry = registry
        self._gateway = gateway
        return self

    def snapshot(self) -> Dict[str, object]:
        """Flat copy for printing, enriched from the bound registry."""
        out: Dict[str, object] = {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_shed": self.requests_shed,
            "cache_hits": self.cache_hits,
            "units_dispatched": self.units_dispatched,
            "coalesced_requests": self.coalesced_requests,
            "oom_requests": self.oom_requests,
            "sharded_requests": self.sharded_requests,
        }
        attempted = self.requests_submitted + self.requests_shed
        if attempted:
            out["shed_rate"] = self.requests_shed / attempted
        if self.units_dispatched:
            out["mean_unit_size"] = (
                self.requests_completed + self.requests_failed
            ) / self.units_dispatched
        if self.requests_completed:
            out["fusion_rate"] = self.coalesced_requests / self.requests_completed
        gateway: Optional["Gateway"] = getattr(self, "_gateway", None)
        if gateway is not None:
            gw = gateway.stats()
            cache_stats = gw.get("cache")
            if cache_stats is not None:
                out["result_cache"] = cache_stats
                out["cache_hit_rate"] = cache_stats["hit_rate"]
            tenants = gw.get("tenants")
            if tenants is not None:
                out["tenants"] = tenants
        registry: Optional[MetricsRegistry] = getattr(self, "_registry", None)
        if registry is None:
            return out
        hits = registry.counter("kernel_cache_hits").value
        misses = registry.counter("kernel_cache_misses").value
        if hits + misses:
            out["kernel_cache_hit_rate"] = hits / (hits + misses)
        s_hits = registry.counter("structure_cache_hits").value
        s_misses = registry.counter("structure_cache_misses").value
        if s_hits + s_misses:
            out["structure_cache_hit_rate"] = s_hits / (s_hits + s_misses)
        step_tiers: Dict[str, Dict[str, int]] = {}
        for labels, counter in registry.find_counters("step_tier_requests"):
            algorithm = labels.get("algorithm", "?")
            step_tiers.setdefault(algorithm, {})[
                labels.get("step_tier", "?")
            ] = counter.value
        if step_tiers:
            out["step_tier_by_algorithm"] = step_tiers
        out["walker_migrations"] = registry.counter("walker_migrations").value
        out["epoch_retirements"] = registry.counter("epoch_retirements").value
        latency_by_route: Dict[str, Dict[str, float]] = {}
        for labels, histogram in registry.find_histograms("request_latency_s"):
            latency_by_route[labels.get("route", "?")] = histogram.summary()
        if latency_by_route:
            out["latency_by_route"] = latency_by_route
        for name, key in (("queue_wait_s", "queue_wait"),
                          ("execute_s", "execute")):
            found = registry.find_histograms(name)
            if found:
                out[key] = found[0][1].summary()
        return out

    def __call__(self) -> Dict[str, object]:
        return self.snapshot()


@dataclass
class _Pending:
    request: SampleRequest
    future: Future
    enqueued_at: float
    #: Graph epoch the request is bound to (resolved at submission).
    epoch: int = 0
    #: Plan summary of the dispatched unit (attached to the response).
    plan: Optional[Dict[str, object]] = None
    #: Telemetry: trace id minted at submission (None = tracing off) and
    #: the request's root span id, closed at completion.
    trace_id: Optional[str] = None
    root_span_id: Optional[str] = None
    #: Wall-clock submit time (span time base) and dispatch times.
    submitted_wall: float = 0.0
    dispatched_wall: float = 0.0
    dispatched_perf: float = 0.0


class SamplingService:
    """In-process sampling service with shared-memory workers."""

    def __init__(
        self,
        *,
        num_workers: int = 2,
        mode: str = "process",
        batch_window_s: float = 0.002,
        max_batch_requests: int = 64,
        memory_budget_bytes: Optional[int] = 256 * 1024 * 1024,
        oom_config: Optional[OutOfMemoryConfig] = None,
        cluster_shards: int = 0,
        store: Optional[SharedGraphStore] = None,
        unit_timeout_s: Optional[float] = 600.0,
        cache_bytes: Optional[int] = 64 * 1024 * 1024,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        max_pending: Optional[int] = None,
        intake_pause_timeout_s: float = 60.0,
        recorder_capacity: int = 2048,
        diagnostics_dir: Optional[str] = None,
        objectives: Optional[Dict[str, LatencyObjective]] = None,
    ):
        """``batch_window_s=0`` with ``max_batch_requests=1`` disables
        coalescing entirely (every request runs alone) -- the benchmark's
        baseline configuration.

        ``cluster_shards > 0`` serves over-budget graphs from a sharded
        sampling cluster instead of the serial out-of-memory path; the
        actual shard count per graph is at least ``ceil(nbytes / budget)``
        so every shard's partition fits the budget.  ``0`` (default) keeps
        the out-of-memory route.

        ``unit_timeout_s`` bounds how long a dispatched unit may stay
        unanswered before its requests fail.  It is the backstop for losses
        the claim protocol cannot see (a worker killed before its claim
        message flushed); ``None`` disables it.

        Gateway switches (see ``docs/service.md``): ``cache_bytes`` budgets
        the deterministic result cache (``None``/``0`` disables it);
        ``quotas`` / ``default_quota`` are per-tenant
        :class:`~repro.service.qos.TenantQuota` token buckets charged with
        each request's planner-predicted cost (both ``None`` = admission
        control off); ``max_pending`` is a service-wide pending ceiling.
        ``intake_pause_timeout_s`` bounds how long :meth:`submit` waits
        while :meth:`replan` has intake paused before failing transient.

        Diagnostics (see ``docs/telemetry.md``): ``recorder_capacity``
        sizes the flight recorder's event ring; ``diagnostics_dir`` is
        where crash/timeout snapshots are auto-dumped (``None`` disables
        the dump, :meth:`diagnose` still works); ``objectives`` overrides
        the per-route latency SLOs of :meth:`health`.
        """
        if max_batch_requests < 1:
            raise ValueError("max_batch_requests must be >= 1")
        if cluster_shards < 0:
            raise ValueError("cluster_shards must be >= 0 (0 disables sharding)")
        self.store = store if store is not None else SharedGraphStore()
        self._owns_store = store is None
        self.batch_window_s = float(batch_window_s)
        self.max_batch_requests = int(max_batch_requests)
        self.memory_budget_bytes = memory_budget_bytes
        self._oom_config = oom_config
        self.cluster_shards = int(cluster_shards)
        #: Admission plan per (graph name, epoch): ``(route, layout)``,
        #: frozen under the budget in force at admission time.
        self._admission: Dict[Tuple[str, int], Tuple[str, "PartitionLayout"]] = {}
        #: Class-level :class:`ExecutionPlan` cache, keyed by
        #: ``(graph, epoch, algorithm, config, program kwargs)``.
        self._plans: Dict[Tuple, "ExecutionPlan"] = {}
        #: Unresolved requests per (graph name, epoch); a retiring epoch is
        #: released once its count drains to zero.
        self._epoch_active: Dict[Tuple[str, int], int] = {}
        self._retiring: set = set()
        #: Serialises update_graph per service: concurrent updates of one
        #: name must not interleave their publish/retire steps.
        self._update_lock = threading.Lock()
        self._pool = WorkerPool(
            num_workers, mode=mode,
            resolve_graph=lambda handle: self.store.graph(
                handle.name, handle.epoch
            ),
        )
        #: Priority-lane dispatch queue: entries are ``(-priority, seq,
        #: pending-or-None)`` so higher priorities drain first, FIFO within
        #: a lane, and the shutdown sentinel (``+inf``) sorts last.
        self._queue: "queue.PriorityQueue[Tuple[float, int, Optional[_Pending]]]" = (
            queue.PriorityQueue()
        )
        self._queue_seq = itertools.count()
        self._coalescable: Dict[Tuple, bool] = {}
        self.unit_timeout_s = unit_timeout_s
        self._pending: Dict[int, _Pending] = {}
        self._inflight: Dict[int, List[int]] = {}  # unit id -> request ids
        self._claims: Dict[int, int] = {}  # unit id -> claiming worker pid
        self._dispatched_at: Dict[int, float] = {}  # unit id -> perf_counter
        self._unit_ids = itertools.count()
        self._lock = threading.Lock()
        #: Intake gate: cleared by replan() to pause submit() while a drain
        #: is in progress; _intake_open counts submits past the gate but not
        #: yet enqueued, so replan can wait the race window out.
        self._intake_gate = threading.Event()
        self._intake_gate.set()
        self._intake_open = 0
        self.intake_pause_timeout_s = float(intake_pause_timeout_s)
        #: Service-local metrics registry (latencies, queue waits, cache
        #: hit counters ...); dump with :meth:`metrics_text`.
        self.metrics = MetricsRegistry()
        #: Flight recorder: bounded ring of operational events feeding
        #: :meth:`diagnose` and the crash/timeout auto-dump.
        self.recorder = FlightRecorder(capacity=recorder_capacity)
        #: Rolling-window SLO accounting behind :meth:`health`.
        self.health_monitor = HealthMonitor(self.metrics, objectives=objectives)
        self.diagnostics_dir = diagnostics_dir
        self._dump_seq = itertools.count()
        #: Cache evictions already turned into recorder events.
        self._evictions_seen = 0
        #: Periodic load samples from the monitor thread: ``(wall ts,
        #: track name, {series: value})`` tuples ready for
        #: :func:`repro.telemetry.export.chrome_counter_events`.
        self._load_samples: Deque[Tuple[float, str, Dict[str, float]]] = (
            collections.deque(maxlen=4096)
        )
        #: The multi-tenant front door: deterministic result cache plus
        #: cost-based per-tenant admission control (docs/service.md).
        self.gateway = Gateway(
            GatewayConfig(
                cache_bytes=cache_bytes or None,
                default_quota=default_quota,
                quotas=dict(quotas or {}),
                max_pending=max_pending,
            ),
            self.metrics,
        )
        self.stats = ServiceStats().bind(self.metrics, self.gateway)
        self._shutdown = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="sampling-dispatch", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="sampling-collect", daemon=True
        )
        # The monitor duplicates the collector's crash/timeout backstops on
        # an independent thread: a collector blocked mid-recv on a truncated
        # result pickle (worker killed while its queue feeder was writing)
        # must not leave in-flight units unreapable.
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="sampling-monitor", daemon=True
        )
        self._dispatcher.start()
        self._collector.start()
        self._monitor.start()

    # ------------------------------------------------------------------ #
    # Graph admission
    # ------------------------------------------------------------------ #
    def load_graph(self, name: str, graph: Optional[CSRGraph] = None,
                   *, path=None) -> str:
        """Publish a graph (object or NPZ path) and decide its route.

        Returns ``"in_memory"``, ``"sharded"`` or ``"out_of_memory"``.
        """
        if (graph is None) == (path is None):
            raise ValueError("pass exactly one of graph= or path=")
        if path is not None:
            handle = self.store.load_npz_file(name, path)
        else:
            handle = self.store.put(name, graph)
        return self._admit(handle)

    def update_graph(self, name: str, graph=None, *,
                     add_edges=None, add_weights=None,
                     remove_edges=None, retire_vertices=None) -> int:
        """Publish a new epoch of a loaded graph; returns the epoch number.

        Pass either ``graph`` (a :class:`CSRGraph` or
        :class:`~repro.graph.delta.DeltaGraph`, snapshotted canonically) or
        any combination of ``add_edges`` / ``remove_edges`` /
        ``retire_vertices``, which are applied to the current latest epoch
        through a :class:`~repro.graph.delta.DeltaGraph` overlay and
        compacted.  The previous epoch keeps serving the requests already
        bound to it and is refcount-released once they drain; requests
        submitted after this call (without an explicit pin) run on the new
        epoch.  Admission (in-memory vs out-of-memory) is re-evaluated for
        the new epoch's footprint.
        """
        from repro.graph.delta import DeltaGraph, as_csr

        mutations = (add_edges, remove_edges, retire_vertices)
        if (graph is None) == all(m is None for m in mutations):
            raise ValueError("pass exactly one of graph= or mutation kwargs")
        # One update at a time: interleaved publish/retire steps of two
        # concurrent updates would leave the intermediate epoch unretired
        # (and its segments leaked) forever.
        with self._update_lock:
            if graph is not None:
                new_graph = as_csr(graph)
            else:
                delta = DeltaGraph(self.store.graph(name))
                if add_edges is not None:
                    delta.add_edges(add_edges, add_weights)
                if remove_edges is not None:
                    delta.remove_edges(remove_edges)
                for vertex in (retire_vertices or ()):
                    delta.retire_vertex(int(vertex))
                new_graph = delta.to_csr()
            handle = self.store.publish(name, new_graph)
            self._admit(handle)
            with self._lock:
                old_epochs = [
                    epoch for epoch in self.store.epochs(name)
                    if epoch != handle.epoch
                ]
                self._retiring.update((name, epoch) for epoch in old_epochs)
        for epoch in old_epochs:
            self._maybe_release_epoch(name, epoch)
        return handle.epoch

    def _admit(self, handle) -> str:
        """Plan and record the admission of one published graph epoch.

        The route table is a table of admission plans: ``(route, layout)``
        frozen under the budget in force *now*, so later budget changes
        never resize an admitted graph's shards or partitions out from
        under its documented sizing (use :meth:`replan` to re-admit).
        """
        key = (handle.name, handle.epoch)
        route, layout = plan_admission(
            num_vertices=handle.num_vertices,
            num_edges=handle.num_edges,
            nbytes=handle.nbytes,
            memory_budget_bytes=self.memory_budget_bytes,
            cluster_shards=self.cluster_shards,
            oom_config=self._oom_config,
        )
        with self._lock:
            self._admission[key] = (route, layout)
            # Drop class plans planned under a previous admission of this
            # (graph, epoch) -- replan() re-admits in place.
            self._plans = {
                k: v for k, v in self._plans.items() if k[:2] != key
            }
        self.recorder.record(
            "epoch_publish", graph=handle.name, epoch=handle.epoch,
            route=route, nbytes=handle.nbytes,
        )
        return route

    def route_of(self, name: str, epoch: Optional[int] = None) -> str:
        """The admission decision for a loaded graph (latest epoch default)."""
        if epoch is None:
            epoch = self.store.latest_epoch(name)
        return self._admission[(name, epoch)][0]

    def graph_epoch(self, name: str) -> int:
        """The latest published epoch of a loaded graph."""
        return self.store.latest_epoch(name)

    def replan(self, name: str, *, timeout: float = 30.0) -> str:
        """Drain a graph's outstanding requests and re-admit it.

        Changing :attr:`memory_budget_bytes` (or :attr:`cluster_shards`)
        after admission deliberately leaves already-admitted graphs on
        their frozen plans; ``replan`` applies the settings in force now:
        it waits for every in-flight request on ``name`` to resolve, then
        re-runs admission for the latest epoch and invalidates the cached
        class plans.  Returns the new route.

        Raises :class:`TimeoutError` if the graph's requests do not drain
        within ``timeout`` seconds (the admission is left unchanged).

        Intake is paused for the whole drain + re-admit window: without
        that, sustained traffic could keep the busy-check from ever seeing
        an idle instant (starving the replan until its timeout), and a
        request admitted between the final busy-check and the re-admission
        could be dispatched against the stale route's cached class plan.
        Paused submitters block on the intake gate (bounded by the
        service's ``intake_pause_timeout_s``, after which they fail with a
        *transient* :class:`ServiceError` the clients' retry path resubmits).
        """
        if name not in self.store.names():
            raise KeyError(f"graph {name!r} is not loaded")
        with self._update_lock:
            self._intake_gate.clear()
            try:
                deadline = time.perf_counter() + timeout
                while True:
                    with self._lock:
                        # _intake_open == 0 closes the submit race window:
                        # no request is past the gate but not yet pending.
                        busy = self._intake_open > 0 or any(
                            p.request.graph == name
                            for p in self._pending.values()
                        )
                    if not busy:
                        break
                    if time.perf_counter() > deadline:
                        raise TimeoutError(
                            f"replan({name!r}): requests still in flight "
                            f"after {timeout}s"
                        )
                    time.sleep(0.002)
                handle = self.store.handle(name, self.store.latest_epoch(name))
                self.recorder.record("replan_drain", graph=name)
                route = self._admit(handle)
                # Cached results carry the plan/route they ran under; a
                # re-admission makes them stale metadata-wise even though
                # the sampled bits would be identical.  Drop them.
                self.gateway.invalidate_epoch(name, handle.epoch)
                return route
            finally:
                self._intake_gate.set()

    def _oom_config_for(
        self, name: str, epoch: Optional[int] = None
    ) -> OutOfMemoryConfig:
        """The frozen out-of-memory layout of an admitted graph epoch."""
        if epoch is None:
            epoch = self.store.latest_epoch(name)
        layout = self._admission[(name, epoch)][1]
        if layout.oom is None:
            raise KeyError(
                f"graph {name!r} epoch {epoch} is not on the out_of_memory route"
            )
        return layout.oom

    # ------------------------------------------------------------------ #
    # Plan cache: one class-level plan per (graph, epoch, algorithm, config)
    # ------------------------------------------------------------------ #
    def _class_plan(self, request: SampleRequest, epoch: int) -> ExecutionPlan:
        """The cached :class:`ExecutionPlan` of one request class."""
        key = (request.graph, epoch) + request.class_key()[2:]
        with self._lock:
            cached = self._plans.get(key)
        if cached is not None:
            return cached
        handle = self.store.handle(request.graph, epoch)
        route, layout = self._admission[(request.graph, epoch)]
        from dataclasses import replace

        base = plan(PlanRequest(
            config=request.resolve_config(),
            algorithm=request.algorithm,
            num_instances=1,
            memory_budget_bytes=self.memory_budget_bytes,
            oom_config=layout.oom,
            force_route=route,
            coalescable=self._class_coalescable(request),
            graph_num_vertices=handle.num_vertices,
            graph_num_edges=handle.num_edges,
            graph_nbytes=handle.nbytes,
        ))
        # The admission-time layout is authoritative (frozen sizing).
        base = replace(base, layout=layout)
        with self._lock:
            self._plans[key] = base
        return base

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #
    def _intake_begin(self) -> None:
        """Pass the intake gate (see :meth:`replan`) and count ourselves in."""
        while True:
            if not self._intake_gate.wait(timeout=self.intake_pause_timeout_s):
                raise ServiceError(
                    "intake paused (replan in progress); resubmit shortly",
                    transient=True,
                )
            with self._lock:
                # Re-check under the lock: replan may have cleared the gate
                # between the wait and here; only count in when it is open.
                if self._intake_gate.is_set():
                    self._intake_open += 1
                    return

    def _intake_end(self) -> None:
        with self._lock:
            self._intake_open -= 1

    def _admission_active(self) -> bool:
        """Whether any quota or ceiling makes cost prediction worthwhile."""
        admission = self.gateway.admission
        return (
            self.gateway.config.max_pending is not None
            or admission.default_quota is not None
            or bool(admission._quotas)
        )

    def _predicted_cost_s(self, request: SampleRequest, epoch: int) -> float:
        """The planner's calibrated wall-time estimate for this request."""
        class_plan = self._class_plan(request, epoch)
        unit_plan = scale_plan(class_plan, [request.instance_count()])
        return unit_plan.calibrated_time_s or unit_plan.predicted_time_s

    def submit(self, request: SampleRequest) -> Future:
        """Queue a request; the future resolves to a :class:`SampleResponse`.

        The gateway runs first, before any compute: a deterministic-cache
        hit resolves the future right here (bit-identical to a fresh run,
        ``stats["cache_hit"]=True``, no dispatcher work); an over-quota
        tenant -- or a full service -- is shed with a synchronous
        :class:`~repro.service.qos.AdmissionRejected` carrying a
        ``retry_after_s`` hint.  Admitted requests queue in their
        ``priority`` lane.
        """
        if self._shutdown.is_set():
            raise RuntimeError("service is shut down")
        if request.graph not in self.store.names():
            raise KeyError(f"graph {request.graph!r} is not loaded")
        self._intake_begin()
        try:
            return self._submit_admitted(request)
        finally:
            self._intake_end()

    def _submit_admitted(self, request: SampleRequest) -> Future:
        # Resolve the epoch the request binds to (an explicit pin must name
        # a still-serving epoch; None means latest-now) and take the epoch
        # reference in the SAME critical section -- a concurrent
        # update_graph between the two would otherwise release the epoch
        # out from under the request.
        with self._lock:
            if request.epoch is None:
                epoch = self.store.latest_epoch(request.graph)
            else:
                epoch = int(request.epoch)
                self.store.handle(request.graph, epoch)  # raises if unknown
                if (request.graph, epoch) in self._retiring:
                    raise KeyError(
                        f"graph {request.graph!r} epoch {epoch} is retiring; "
                        "pin a current epoch or submit unpinned"
                    )
            handle = self.store.handle(request.graph, epoch)
            key = (request.graph, epoch)
            self._epoch_active[key] = self._epoch_active.get(key, 0) + 1
        pending = _Pending(request, Future(), time.perf_counter(), epoch=epoch)
        if _trace.enabled():
            # One trace per request; the root span opens here and is closed
            # (recorded) by the collector when the answer lands.
            pending.trace_id = _trace.new_trace_id()
            pending.root_span_id = _trace.new_span_id()
            pending.submitted_wall = time.time()
        try:
            # Plan-time seed validation, uniform across entry points: the
            # same SeedValidationError a standalone sampler would raise.
            try:
                validate_seed_tuples(
                    request.seeds,
                    handle.num_vertices,
                    num_instances=request.num_instances,
                    reject_duplicates=not request.resolve_config().with_replacement,
                )
            except SeedValidationError as exc:
                raise SeedValidationError(
                    f"request {request.request_id}: {exc}"
                ) from None
            # Fail fast, synchronously: bad config overrides raise inside
            # resolve_config, unhashable program kwargs inside the key's hash.
            hash(request.class_key())
        except Exception:
            self._note_resolved(pending)  # give the epoch reference back
            raise
        # Gateway, stage 1: the deterministic result cache.  Hits are
        # bit-identical by construction and cost (nearly) nothing, so they
        # are answered before -- and without -- quota accounting.
        cached = self.gateway.lookup(request, epoch)
        if cached is not None:
            self._finish_cache_hit(pending, cached)
            return pending.future
        # Gateway, stage 2: cost-based admission.  The planner's calibrated
        # estimate for this request class is charged against the tenant's
        # token bucket; an over-quota tenant is shed right here, before any
        # compute is spent.
        if self._admission_active():
            cost = self._predicted_cost_s(request, epoch)
            with self._lock:
                pending_count = len(self._pending)
            try:
                self.gateway.admit(request, cost, pending_count)
            except AdmissionRejected:
                with self._lock:
                    self.stats.requests_shed += 1
                self.recorder.record(
                    "shed", trace_id=pending.trace_id,
                    request_id=request.request_id, tenant=request.tenant,
                )
                self._note_resolved(pending)
                raise
        with self._lock:
            self.stats.requests_submitted += 1
            self.metrics.counter("requests_submitted").inc()
            self.metrics.counter("tenant_requests", tenant=request.tenant).inc()
            self._pending[request.request_id] = pending
        self.recorder.record(
            "admit", trace_id=pending.trace_id,
            request_id=request.request_id, tenant=request.tenant,
            priority=request.priority,
        )
        self._enqueue(pending, request.priority)
        return pending.future

    def _enqueue(self, pending: Optional[_Pending], priority: float = 0.0) -> None:
        """Queue in priority lanes (higher first, FIFO within a lane)."""
        self._queue.put((-float(priority), next(self._queue_seq), pending))

    def _finish_cache_hit(self, pending: _Pending, response: SampleResponse) -> None:
        """Resolve a request from the cache: no dispatch, no worker, no plan."""
        request = pending.request
        latency = time.perf_counter() - pending.enqueued_at
        self.recorder.record(
            "cache_hit", trace_id=pending.trace_id,
            request_id=request.request_id, tenant=request.tenant,
        )
        response.stats["latency_s"] = latency
        if pending.trace_id is not None:
            response.stats["trace_id"] = pending.trace_id
            now_wall = time.time()
            _trace.record_span(
                "request",
                trace_id=pending.trace_id,
                span_id=pending.root_span_id,
                parent_id=None,
                start_s=pending.submitted_wall,
                end_s=now_wall,
                request_id=request.request_id,
                graph=request.graph,
                algorithm=request.algorithm,
                route="cache",
            )
        with self._lock:
            self.stats.requests_submitted += 1
            self.stats.requests_completed += 1
            self.stats.cache_hits += 1
            self.stats.latencies_s.append(latency)
            self.metrics.counter("requests_submitted").inc()
            self.metrics.counter("requests_completed").inc()
            self.metrics.counter("tenant_requests", tenant=request.tenant).inc()
            self.metrics.counter("tenant_completed", tenant=request.tenant).inc()
        self.metrics.histogram("request_latency_s", route="cache").observe(latency)
        self._set_future(pending.future, result=response)
        self._note_resolved(pending)

    # ------------------------------------------------------------------ #
    # Dispatcher: window batching + class grouping
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            try:
                _, _, first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._shutdown.is_set():
                    return
                continue
            if first is None:
                return
            batch = [first]
            deadline = time.perf_counter() + self.batch_window_s
            while len(batch) < self.max_batch_requests:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    _, _, item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is None:
                    self._safe_dispatch(batch)
                    return
                batch.append(item)
            self._safe_dispatch(batch)

    def _safe_dispatch(self, batch: List[_Pending]) -> None:
        """Dispatch a batch; a failure fails the batch, never the thread."""
        try:
            self._dispatch_batch(batch)
        except Exception as exc:  # pragma: no cover - defensive
            for pending in batch:
                self._fail(pending.request.request_id, f"dispatch failed: {exc!r}")

    def _class_coalescable(self, request: SampleRequest) -> bool:
        """Whether this request's program may share an engine batch."""
        from repro.algorithms.registry import get_algorithm

        key = (request.algorithm, tuple(sorted(request.program_kwargs.items())))
        cached = self._coalescable.get(key)
        if cached is None:
            program = get_algorithm(request.algorithm).program_factory(
                **request.program_kwargs
            )
            cached = bool(program.supports_coalescing)
            self._coalescable[key] = cached
        return cached

    def _dispatch_batch(self, batch: List[_Pending]) -> None:
        classes: Dict[Tuple, List[_Pending]] = {}
        order: List[Tuple] = []
        for pending in batch:
            # The resolved epoch joins the coalescing key: two requests that
            # straddle an update_graph call must not share an engine batch.
            key = (pending.request.class_key(), pending.epoch)
            if key not in classes:
                classes[key] = []
                order.append(key)
            classes[key].append(pending)
        for key in order:
            group = classes[key]
            head_request = group[0].request
            class_plan = self._class_plan(head_request, group[0].epoch)
            fusible = class_plan.route == "in_memory" and class_plan.coalescable
            if len(group) > 1 and not fusible:
                # Non-coalescable programs and the out-of-memory path never
                # fuse; one unit per request keeps them spread across
                # workers instead of serialised on one (and keeps the
                # coalescing stats honest).
                units = [[pending] for pending in group]
            else:
                units = [group]
            for members in units:
                self._dispatch_unit(members, class_plan)

    def _dispatch_unit(
        self, members: List[_Pending], class_plan: ExecutionPlan
    ) -> None:
        head = members[0].request
        epoch = members[0].epoch
        # Specialise the cached class plan to this unit: fusion grouping
        # (member sizes) and predicted cost for the unit's instance count.
        unit_plan = scale_plan(
            class_plan,
            [p.request.instance_count() for p in members],
        )
        route = class_plan.route  # the worker-facing tier name
        # A fused unit runs once, so its worker spans join the HEAD
        # request's trace; sibling members keep their own trace ids but
        # only record service-side spans (see docs/telemetry.md).
        trace_ctx = (
            (members[0].trace_id, members[0].root_span_id)
            if members[0].trace_id is not None
            else None
        )
        unit = WorkUnit(
            unit_id=next(self._unit_ids),
            handle=self.store.handle(head.graph, epoch),
            algorithm=head.algorithm,
            config=head.resolve_config(),
            program_kwargs=tuple(sorted(head.program_kwargs.items())),
            requests=tuple(
                RequestSpec(
                    request_id=p.request.request_id,
                    seeds=p.request.seeds,
                    num_instances=p.request.num_instances,
                )
                for p in members
            ),
            route=route,
            oom_config=unit_plan.layout.oom,
            cluster_shards=(
                unit_plan.layout.num_partitions if route == "sharded" else None
            ),
            plan=unit_plan,
            trace_ctx=trace_ctx,
            # Thread/inline workers accumulate straight into this process's
            # profiler; only process workers need the per-unit mirror+ship.
            profile=(self._pool.mode == "process" and _profiler.enabled()),
        )
        plan_summary = unit_plan.summary()
        dispatched_perf = time.perf_counter()
        dispatched_wall = time.time()
        for p in members:
            p.plan = plan_summary
            p.dispatched_perf = dispatched_perf
            p.dispatched_wall = dispatched_wall
        with self._lock:
            self._inflight[unit.unit_id] = [
                p.request.request_id for p in members
            ]
            self._dispatched_at[unit.unit_id] = dispatched_perf
            self.stats.units_dispatched += 1
            self.metrics.counter("units_dispatched").inc()
            self.metrics.counter("route_requests", route=route).inc(len(members))
            if route == "out_of_memory":
                self.stats.oom_requests += len(members)
            if route == "sharded":
                self.stats.sharded_requests += len(members)
            if len(members) > 1:
                self.stats.coalesced_requests += len(members)
                self.metrics.counter("coalesced_requests").inc(len(members))
        self._pool.submit(unit)

    # ------------------------------------------------------------------ #
    # Collector: demultiplex worker results onto futures
    # ------------------------------------------------------------------ #
    def _collect_loop(self) -> None:
        while True:
            try:
                message = self._pool.next_result(timeout=0.05)
            except queue.Empty:
                if self._shutdown.is_set() and not self._inflight:
                    return
                if self._inflight:
                    self._reap_dead_workers(drain=True)
                    self._expire_stale_units()
                continue
            except (EOFError, OSError):  # pragma: no cover - pool torn down
                return
            self._handle_message(message)

    def _handle_message(self, message) -> None:
        if isinstance(message, tuple) and message and message[0] == "claim":
            _, unit_id, pid = message
            with self._lock:
                if unit_id in self._inflight:
                    self._claims[unit_id] = pid
            self.recorder.record(
                "worker_claim", trace_id=self._head_trace_id(unit_id),
                unit_id=unit_id, worker_pid=pid,
            )
            return
        self._finish_unit(message)

    def _monitor_loop(self) -> None:
        while not self._shutdown.is_set():
            time.sleep(0.1)
            self._sample_load()
            if self._inflight:
                # Never drains here: draining means reading the result pipe,
                # the very operation that can wedge after a worker crash.
                self._reap_dead_workers(drain=False)
                self._expire_stale_units()

    def _sample_load(self) -> None:
        """One periodic load sample (monitor thread): queue + cache + units."""
        now = time.time()
        with self._lock:
            pending = len(self._pending)
            inflight = len(self._inflight)
        self._load_samples.append((now, "service_load", {
            "pending": float(pending),
            "inflight_units": float(inflight),
        }))
        cache = self.gateway.cache
        if cache is not None:
            self._load_samples.append((now, "result_cache_bytes", {
                "bytes": float(cache.stats()["current_bytes"]),
            }))

    def load_samples(self) -> List[Tuple[float, str, Dict[str, float]]]:
        """The monitor thread's periodic load samples, oldest first.

        Each is ``(wall ts, track name, {series: value})`` -- exactly the
        shape :func:`repro.telemetry.export.chrome_counter_events` turns
        into ``ph:"C"`` counter tracks alongside a trace dump.
        """
        return list(self._load_samples)

    def _reap_dead_workers(self, *, drain: bool) -> None:
        """Fail units whose worker died; leave healthy workers' work alone."""
        dead = set(self._pool.dead_worker_pids())
        pool_dead = not self._pool.any_workers_alive()
        if not dead and not pool_dead:
            return
        # A finished result may still be queued behind the death: drain
        # whatever already arrived before declaring anything lost.
        while drain:
            try:
                self._handle_message(self._pool.next_result(timeout=0.01))
            except queue.Empty:
                break
            except (EOFError, OSError):  # pragma: no cover - pool torn down
                break
        with self._lock:
            stuck = [
                unit_id for unit_id, pid in self._claims.items()
                if pid in dead and unit_id in self._inflight
            ]
            if pool_dead:
                # Spawn failure / total loss: unclaimed queued units will
                # never even be claimed.
                stuck.extend(
                    unit_id for unit_id in self._inflight
                    if unit_id not in stuck
                )
            victim_pids = {
                unit_id: self._claims.get(unit_id, 0) for unit_id in stuck
            }
        for unit_id in stuck:
            # Record + dump BEFORE failing the unit: the victims' trace
            # ids are still resolvable through _pending.
            self.recorder.record(
                "worker_crash", trace_id=self._head_trace_id(unit_id),
                unit_id=unit_id, worker_pid=victim_pids.get(unit_id, 0),
            )
            self._dump_diagnostics("worker_crash", unit_id,
                                   "worker process died")
            self._finish_unit(UnitResult(
                unit_id=unit_id, error="worker process died", transient=True
            ))

    def _expire_stale_units(self) -> None:
        """Backstop for losses the claim protocol cannot see."""
        if self.unit_timeout_s is None:
            return
        cutoff = time.perf_counter() - self.unit_timeout_s
        with self._lock:
            expired = [
                unit_id for unit_id, started in self._dispatched_at.items()
                if started < cutoff and unit_id in self._inflight
            ]
        for unit_id in expired:
            self.recorder.record(
                "unit_timeout", trace_id=self._head_trace_id(unit_id),
                unit_id=unit_id, timeout_s=self.unit_timeout_s,
            )
            self._dump_diagnostics(
                "unit_timeout", unit_id,
                f"unit unanswered after {self.unit_timeout_s}s",
            )
            self._finish_unit(UnitResult(
                unit_id=unit_id,
                error=f"unit unanswered after {self.unit_timeout_s}s",
                transient=True,
            ))

    def _finish_unit(self, result: UnitResult) -> None:
        with self._lock:
            request_ids = self._inflight.pop(result.unit_id, [])
            self._claims.pop(result.unit_id, None)
            self._dispatched_at.pop(result.unit_id, None)
        # Spans/feedback/profile minted in a process worker ride home on
        # the result.
        if getattr(result, "spans", None):
            _trace.ingest(result.spans)
        if getattr(result, "feedback", None):
            FEEDBACK.ingest(result.feedback)
        if getattr(result, "profile", None):
            _profiler.ingest(result.profile)
        if result.error is not None:
            for request_id in request_ids:
                self._fail(request_id, result.error,
                           transient=getattr(result, "transient", False))
            return
        answered = set()
        for payload in result.payloads:
            answered.add(payload.request_id)
            with self._lock:
                pending = self._pending.pop(payload.request_id, None)
            if pending is None:
                continue
            latency = time.perf_counter() - pending.enqueued_at
            if payload.error is not None:
                with self._lock:
                    self.stats.requests_failed += 1
                    self.metrics.counter("requests_failed").inc()
                self._set_future(
                    pending.future, exception=ServiceError(payload.error)
                )
                self._note_resolved(pending)
                continue
            extra: Dict[str, object] = {
                "latency_s": latency,
                "cache_hit": False,
                "tenant": pending.request.tenant,
                "priority": pending.request.priority,
            }
            queue_wait = None
            if pending.dispatched_perf:
                # Submit -> dispatch wait (coalescing window + queueing),
                # separated from the execute wall so window latency is
                # visible per response.
                queue_wait = pending.dispatched_perf - pending.enqueued_at
                extra["queue_wait_s"] = queue_wait
                extra["execute_s"] = latency - queue_wait
            if pending.trace_id is not None:
                extra["trace_id"] = pending.trace_id
                now_wall = time.time()
                _trace.record_span(
                    "queue_wait",
                    trace_id=pending.trace_id,
                    parent_id=pending.root_span_id,
                    start_s=pending.submitted_wall,
                    end_s=pending.dispatched_wall or now_wall,
                )
                _trace.record_span(
                    "request",
                    trace_id=pending.trace_id,
                    span_id=pending.root_span_id,
                    parent_id=None,
                    start_s=pending.submitted_wall,
                    end_s=now_wall,
                    request_id=payload.request_id,
                    graph=pending.request.graph,
                    algorithm=pending.request.algorithm,
                    route=payload.route,
                )
            response = SampleResponse(
                request_id=payload.request_id,
                graph=pending.request.graph,
                algorithm=pending.request.algorithm,
                samples=[
                    InstanceSample(instance_id=i, seeds=s, edges=e)
                    for i, s, e in payload.samples
                ],
                iteration_counts=payload.iteration_counts,
                route=payload.route,
                epoch=pending.epoch,
                coalesced_with=payload.coalesced_with,
                stats={**payload.stats, **extra},
                plan=pending.plan,
            )
            with self._lock:
                self.stats.requests_completed += 1
                self.stats.latencies_s.append(latency)
                self.metrics.counter("requests_completed").inc()
            self.metrics.histogram(
                "request_latency_s", route=payload.route
            ).observe(latency)
            if queue_wait is not None:
                self.metrics.histogram("queue_wait_s").observe(queue_wait)
                self.metrics.histogram("execute_s").observe(latency - queue_wait)
            cache_hits = payload.stats.get("kernel_cache_hits")
            if cache_hits is not None:
                self.metrics.counter("kernel_cache_hits").inc(int(cache_hits))
                self.metrics.counter("kernel_cache_misses").inc(
                    int(payload.stats.get("kernel_cache_misses", 0))
                )
            structure_hits = payload.stats.get("structure_cache_hits")
            if structure_hits is not None:
                self.metrics.counter("structure_cache_hits").inc(
                    int(structure_hits)
                )
                self.metrics.counter("structure_cache_misses").inc(
                    int(payload.stats.get("structure_cache_misses", 0))
                )
            step_tier = payload.stats.get("step_tier")
            if step_tier is not None:
                # Per-algorithm tier coverage: how much traffic actually ran
                # compiled vs interpreted (snapshot() pivots these counters).
                self.metrics.counter(
                    "step_tier_requests",
                    algorithm=pending.request.algorithm,
                    step_tier=step_tier,
                ).inc()
            migrations = payload.stats.get("migrations")
            if migrations:
                self.metrics.counter("walker_migrations").inc(int(migrations))
                self.recorder.record(
                    "shard_migration", trace_id=pending.trace_id,
                    request_id=payload.request_id,
                    migrations=int(migrations),
                    num_shards=int(payload.stats.get("num_shards", 0)),
                )
            self.metrics.counter(
                "tenant_completed", tenant=pending.request.tenant
            ).inc()
            # Populate the deterministic result cache with the worker-side
            # payload (stats without the per-request latency annotations),
            # so an identical future request is answered bit-identically
            # without dispatching.
            self.gateway.store(
                pending.request,
                pending.epoch,
                CachedResult(
                    samples=payload.samples,
                    iteration_counts=list(payload.iteration_counts),
                    route=payload.route,
                    coalesced_with=payload.coalesced_with,
                    stats=dict(payload.stats),
                    plan=pending.plan,
                ),
            )
            self._note_cache_evictions()
            self._set_future(pending.future, result=response)
            self._note_resolved(pending)
        for request_id in request_ids:
            if request_id not in answered:  # pragma: no cover - defensive
                self._fail(request_id, "worker returned no payload")

    def _fail(self, request_id: int, message: str, *, transient: bool = False) -> None:
        with self._lock:
            pending = self._pending.pop(request_id, None)
            if pending is not None:
                self.stats.requests_failed += 1
                self.metrics.counter("requests_failed").inc()
        if pending is not None:
            self._set_future(
                pending.future,
                exception=ServiceError(message, transient=transient),
            )
            self._note_resolved(pending)

    @staticmethod
    def _set_future(future: Future, *, result=None, exception=None) -> None:
        """Resolve a request future, tolerating caller-side cancellation.

        An asyncio caller that times out (``asyncio.wait_for``) cancels the
        bridged future; the worker's answer then has nowhere to land, which
        must not crash the collector thread.
        """
        try:
            if exception is not None:
                future.set_exception(exception)
            else:
                future.set_result(result)
        except InvalidStateError:  # future cancelled by the caller
            pass

    # ------------------------------------------------------------------ #
    # Epoch lifecycle: retiring epochs release once their requests drain
    # ------------------------------------------------------------------ #
    def _note_resolved(self, pending: _Pending) -> None:
        """One request finished: drop its epoch reference, reap if drained."""
        name = pending.request.graph
        epoch = pending.epoch
        with self._lock:
            key = (name, epoch)
            count = self._epoch_active.get(key, 0) - 1
            if count > 0:
                self._epoch_active[key] = count
            else:
                self._epoch_active.pop(key, None)
        self._maybe_release_epoch(name, epoch)

    def _maybe_release_epoch(self, name: str, epoch: int) -> None:
        """Release a retiring epoch's segments once no request references it."""
        with self._lock:
            key = (name, epoch)
            if key not in self._retiring or self._epoch_active.get(key, 0) > 0:
                return
            self._retiring.discard(key)
            self._admission.pop(key, None)
            self._plans = {
                k: v for k, v in self._plans.items() if k[:2] != key
            }
            # Evict the retired epoch's compiled structures before releasing
            # the segments: thread/inline workers sample through the owner's
            # graph view, so the structure cache would otherwise keep the
            # stale epoch's alias/prefix arrays alive until a GC pass
            # (process workers evict via the weakref finalizer when their
            # attached mapping closes).
            try:
                retired_graph = self.store.graph(name, epoch)
            except KeyError:  # pragma: no cover - raced release
                retired_graph = None
            # Release under the lock: a concurrent submit must observe
            # either a pinnable epoch or a KeyError, never the gap between
            # un-retiring and unlinking.
            self.store.release(name, epoch)
            self.metrics.counter("epoch_retirements").inc()
        if retired_graph is not None:
            from repro.compiled import evict_graph

            evict_graph(retired_graph)
        # Retirement is the cache's invalidation signal: evict exactly this
        # epoch's cached results (newer/pinned epochs' entries stay).
        self.gateway.invalidate_epoch(name, epoch)
        self.recorder.record("epoch_retire", graph=name, epoch=epoch)
        self._note_cache_evictions()

    # ------------------------------------------------------------------ #
    # Telemetry and diagnostics
    # ------------------------------------------------------------------ #
    def metrics_text(self) -> str:
        """Prometheus-style text dump of the service's metrics registry.

        Point-in-time operational gauges (queue depth, in-flight units,
        live workers, recorder occupancy, store bytes) and the SLO burn
        rates are refreshed right before rendering, so a scrape always
        sees current values.
        """
        self._refresh_gauges()
        return self.metrics.render_prometheus()

    def _head_trace_id(self, unit_id: int) -> Optional[str]:
        """The trace id of a unit's head request (None = tracing off)."""
        with self._lock:
            for request_id in self._inflight.get(unit_id, []):
                pending = self._pending.get(request_id)
                if pending is not None and pending.trace_id is not None:
                    return pending.trace_id
        return None

    def _note_cache_evictions(self) -> None:
        """Turn new result-cache evictions/invalidations into events."""
        cache = self.gateway.cache
        if cache is None:
            return
        stats = cache.stats()
        total = int(stats["evictions"]) + int(stats["invalidations"])
        if total > self._evictions_seen:
            self.recorder.record(
                "cache_evict", evicted=total - self._evictions_seen,
                entries=int(stats["entries"]),
                current_bytes=int(stats["current_bytes"]),
            )
            self._evictions_seen = total

    def _worker_state(self) -> Dict[str, object]:
        """Live worker census shared by :meth:`diagnose` and :meth:`health`."""
        dead = self._pool.dead_worker_pids()
        if not self._pool.any_workers_alive():
            alive = 0
        else:
            alive = max(0, self._pool.num_workers - len(dead))
        with self._lock:
            claims = dict(self._claims)
            inflight = len(self._inflight)
        return {
            "mode": self._pool.mode,
            "num_workers": self._pool.num_workers,
            "alive": alive,
            "dead_pids": list(dead),
            "claimed_units": {str(uid): pid for uid, pid in claims.items()},
            "inflight_units": inflight,
            # In-flight units per worker, capped at 1.0: the pool has no
            # per-worker busy flag, so claimed+queued work is the proxy.
            "utilization": min(
                1.0, inflight / max(1, self._pool.num_workers)
            ),
        }

    def diagnose(self, last: int = 64) -> Dict[str, object]:
        """JSON-ready snapshot of what the service is doing right now.

        The post-mortem view: the flight recorder's last ``last`` events,
        per-priority-lane queue depths, worker liveness/utilization,
        shared-memory store and result-cache occupancy, and per-tenant
        quota bucket levels.  Safe to call from any thread at any time.
        """
        # Lane census first (its own mutex) to keep lock scopes disjoint.
        lanes: Dict[str, int] = {}
        with self._queue.mutex:
            for neg_priority, _, item in list(self._queue.queue):
                if item is None:
                    continue
                lane = f"{-neg_priority:g}"
                lanes[lane] = lanes.get(lane, 0) + 1
        with self._lock:
            pending = len(self._pending)
            retiring = sorted(
                f"{name}@{epoch}" for name, epoch in self._retiring
            )
        graphs: Dict[str, object] = {}
        total_bytes = 0
        for name in self.store.names():
            epochs = {}
            for epoch in self.store.epochs(name):
                try:
                    handle = self.store.handle(name, epoch)
                except KeyError:  # released between epochs() and here
                    continue
                epochs[str(epoch)] = int(handle.nbytes)
                total_bytes += int(handle.nbytes)
            graphs[name] = epochs
        gateway_stats = self.gateway.stats()
        return {
            "generated_at": time.time(),
            "events": self.recorder.snapshot(last),
            "events_dropped": self.recorder.dropped,
            "event_counts": self.recorder.counts(),
            "queue": {"pending_requests": pending, "lanes": lanes},
            "workers": self._worker_state(),
            "store": {"graphs": graphs, "total_bytes": total_bytes,
                      "retiring": retiring},
            "result_cache": gateway_stats.get("cache"),
            "tenants": gateway_stats.get("tenants", {}),
            "stats": self.stats.snapshot(),
        }

    def health(self) -> Dict[str, object]:
        """Current service health: ``ok`` / ``degraded`` / ``unhealthy``.

        Per-route SLO burn rates from the latency histograms plus hard
        operational signals (worker liveness, pending-queue saturation);
        every non-ok verdict carries machine-readable ``reasons``.
        """
        workers = self._worker_state()
        with self._lock:
            queue_depth = len(self._pending)
        signals: Dict[str, object] = {
            "workers_alive": workers["alive"],
            "num_workers": workers["num_workers"],
            "queue_depth": queue_depth,
        }
        if self.gateway.config.max_pending is not None:
            signals["max_pending"] = self.gateway.config.max_pending
        return self.health_monitor.evaluate(signals)

    def _dump_diagnostics(self, reason: str, unit_id: int,
                          error: str) -> Optional[str]:
        """Auto-dump a diagnose() snapshot on a crash/timeout; best-effort."""
        directory = self.diagnostics_dir
        if directory is None:
            return None
        with self._lock:
            trace_ids = [
                p.trace_id
                for request_id in self._inflight.get(unit_id, [])
                for p in (self._pending.get(request_id),)
                if p is not None and p.trace_id is not None
            ]
        path = os.path.join(
            directory, f"diagnostics-{reason}-unit{unit_id}-"
            f"{next(self._dump_seq)}.json",
        )
        try:
            self.recorder.record(
                "snapshot_dump", trace_id=trace_ids[0] if trace_ids else None,
                unit_id=unit_id, reason=reason, path=path,
            )
            self.recorder.dump(path, extra={
                "failure": {
                    "reason": reason,
                    "unit_id": unit_id,
                    "error": error,
                    "trace_ids": trace_ids,
                },
                "service": self.diagnose(),
            })
        except Exception:  # pragma: no cover - diagnostics must not kill
            return None
        return path

    def _refresh_gauges(self) -> None:
        """Mirror point-in-time operational state into Prometheus gauges."""
        with self._lock:
            pending = len(self._pending)
            inflight = len(self._inflight)
        self.metrics.gauge("queue_depth").set(pending)
        self.metrics.gauge("inflight_units").set(inflight)
        workers = self._worker_state()
        self.metrics.gauge("workers_alive").set(workers["alive"])
        self.metrics.gauge("recorder_events").set(len(self.recorder))
        self.metrics.gauge("recorder_dropped").set(self.recorder.dropped)
        total_bytes = 0
        for name in self.store.names():
            for epoch in self.store.epochs(name):
                try:
                    total_bytes += int(self.store.handle(name, epoch).nbytes)
                except KeyError:  # released between epochs() and here
                    continue
        self.metrics.gauge("store_bytes").set(total_bytes)
        cache = self.gateway.cache
        if cache is not None:
            self.metrics.gauge("result_cache_bytes").set(
                cache.stats()["current_bytes"]
            )
        # evaluate() refreshes the slo_* burn/violation gauges and
        # health_status as a side effect of the verdict.
        self.health()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until every submitted request has resolved."""
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._lock:
                if not self._pending and not self._inflight:
                    return True
            time.sleep(0.002)
        return False

    def shutdown(self, *, drain_timeout: float = 30.0) -> None:
        """Drain, stop the threads, stop the workers, unlink the store."""
        if self._shutdown.is_set():
            return
        self.drain(drain_timeout)
        self._shutdown.set()
        # Sentinel at -inf priority: sorts after all real work, drains last.
        self._enqueue(None, float("-inf"))
        self._dispatcher.join(timeout=5.0)
        self._collector.join(timeout=5.0)
        self._monitor.join(timeout=5.0)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for pending in leftovers:  # pragma: no cover - drain timeout path
            if not pending.future.done():
                pending.future.set_exception(ServiceError("service shut down"))
        self._pool.shutdown()
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "SamplingService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
