"""Worker pool: each worker drives coalesced engine batches over shared graphs.

A :class:`WorkUnit` is one dispatchable chunk of the front-end's batching
decision: a graph handle plus one *class* of compatible requests (same
algorithm, config and program constructor arguments).  Workers execute the
whole class as a single coalesced engine batch
(:func:`repro.engine.hetero.run_coalesced`) when the program allows it, or
one standalone run per request otherwise, and ship back per-request payloads
of plain arrays.

Three pool modes share the exact same execution path
(:func:`execute_unit`):

* ``"process"`` -- real OS processes (spawn), each attaching the store's
  shared-memory segments; the production shape.
* ``"thread"``  -- threads mapping the owner's views directly; no process
  startup cost, useful for benchmarks of coalescing itself and on small
  boxes.
* ``"inline"``  -- alias for one thread; deterministic single-consumer mode
  used by tests.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.config import SamplingConfig
from repro.api.instance import make_instances
from repro.api.sampler import GraphSampler
from repro.engine.hetero import run_coalesced
from repro.graph.csr import CSRGraph
from repro.compiled.compiler import kernel_cache_stats
from repro.compiled.structures import structure_cache_stats
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler
from repro.service.store import SharedGraphHandle, attach
from repro.telemetry import profiler as _profiler
from repro.telemetry import trace as _trace
from repro.telemetry.feedback import FEEDBACK

__all__ = [
    "RequestSpec",
    "WorkUnit",
    "RequestPayload",
    "UnitResult",
    "execute_unit",
    "WorkerPool",
]


@dataclass(frozen=True)
class RequestSpec:
    """One request's execution inputs (the picklable subset)."""

    request_id: int
    seeds: Tuple
    num_instances: Optional[int] = None


@dataclass(frozen=True)
class WorkUnit:
    """One class of compatible requests bound for a single worker."""

    unit_id: int
    handle: SharedGraphHandle
    algorithm: str
    config: SamplingConfig
    program_kwargs: Tuple[Tuple[str, object], ...]
    requests: Tuple[RequestSpec, ...]
    #: ``"in_memory"``, ``"out_of_memory"`` or ``"sharded"`` (the admission
    #: plan's call).
    route: str = "in_memory"
    oom_config: Optional[OutOfMemoryConfig] = None
    #: Shard count for the ``"sharded"`` route (in-process shards inside the
    #: executing worker, sized so each partition fits the memory budget).
    cluster_shards: Optional[int] = None
    #: The service's :class:`~repro.planner.plan.ExecutionPlan` for this
    #: unit.  ``route`` / ``oom_config`` / ``cluster_shards`` above are its
    #: worker-facing projection; directly constructed units (tests) may
    #: omit it.
    plan: Optional[object] = None
    #: Telemetry trace context of the (head) request this unit serves, so
    #: worker-side spans join the request's trace; ``None`` = tracing off.
    trace_ctx: Optional[tuple] = None
    #: Whether the front-end's continuous profiler is on: a process worker
    #: enables its local profiler for this unit and ships the accumulators
    #: home on the result (thread workers share the front-end's profiler).
    profile: bool = False


@dataclass
class RequestPayload:
    """Per-request result shipped back from a worker."""

    request_id: int
    #: ``(instance_id, seeds, edges)`` per instance, in instance order.
    samples: List[Tuple[int, np.ndarray, np.ndarray]] = field(default_factory=list)
    iteration_counts: List[int] = field(default_factory=list)
    route: str = "in_memory"
    coalesced_with: int = 1
    #: Numeric run statistics plus telemetry annotations (``step_tier`` is
    #: a string; everything else stays a float).
    stats: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None


@dataclass
class UnitResult:
    """Everything a worker produced for one :class:`WorkUnit`."""

    unit_id: int
    payloads: List[RequestPayload] = field(default_factory=list)
    error: Optional[str] = None
    #: Unit-level failures synthesised by the front-end's crash/timeout
    #: backstops are transient: the requests were not at fault and a
    #: resubmit is safe (clients retry exactly these).
    transient: bool = False
    #: Telemetry span records drained from a process worker's buffer,
    #: shipped home so the front-end re-ingests them into one tree (empty
    #: for thread/inline workers, which share the front-end's buffer).
    spans: List = field(default_factory=list)
    #: Plan-cost feedback records drained alongside the spans.
    feedback: List = field(default_factory=list)
    #: Profiler accumulators drained from a process worker (empty for
    #: thread/inline workers, which accumulate into the front-end's).
    profile: Dict = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# Execution (mode-independent)
# --------------------------------------------------------------------------- #
def _payload_from_result(spec: RequestSpec, result, route: str,
                         coalesced_with: int) -> RequestPayload:
    return RequestPayload(
        request_id=spec.request_id,
        samples=[(s.instance_id, s.seeds, s.edges) for s in result.samples],
        iteration_counts=list(result.iteration_counts),
        route=route,
        coalesced_with=coalesced_with,
        stats={
            "sampled_edges": float(result.total_sampled_edges),
            "kernel_time_s": float(result.kernel_time()),
        },
    )


def _annotate_step_tier(payload: RequestPayload, unit: WorkUnit) -> None:
    """Surface the plan's compiled/interpreted decision on the payload."""
    if unit.plan is not None:
        payload.stats["step_tier"] = unit.plan.step_tier


def _cache_snapshot() -> Tuple[Dict[str, int], Dict[str, int]]:
    """Worker-local kernel- and structure-cache counters, taken together."""
    return kernel_cache_stats(), structure_cache_stats()


def _annotate_cache_deltas(payload: RequestPayload, before) -> None:
    """Ship the run's cache activity home on the payload.

    Both caches live in the worker process; the front-end only ever sees
    these per-payload deltas, which its collector folds into the service
    registry (``kernel_cache_*`` / ``structure_cache_*`` counters).
    """
    kernel_before, structure_before = before
    kernel_after, structure_after = _cache_snapshot()
    payload.stats["kernel_cache_hits"] = float(
        kernel_after["hits"] - kernel_before["hits"]
    )
    payload.stats["kernel_cache_misses"] = float(
        kernel_after["misses"] - kernel_before["misses"]
    )
    payload.stats["structure_cache_hits"] = float(
        structure_after["hits"] - structure_before["hits"]
    )
    payload.stats["structure_cache_misses"] = float(
        structure_after["misses"] - structure_before["misses"]
    )


def execute_unit(graph: CSRGraph, unit: WorkUnit) -> UnitResult:
    """Run one work unit against an already-attached graph.

    The unit's :class:`ExecutionPlan` (when the front-end attached one) is
    authoritative for the route and partition layout; the flat
    ``route`` / ``oom_config`` / ``cluster_shards`` fields are its
    projection and the fallback for directly constructed units.  Each
    branch below delegates to a facade that itself plans + executes on the
    shared executor, so the worker never re-implements a run loop.

    When the unit carries a trace context the whole execution is adopted
    into that trace under a ``unit`` span, so worker-side spans connect to
    the front-end's request span.
    """
    ctx = unit.trace_ctx
    if ctx is None:
        return _execute_unit(graph, unit)
    with _trace.activated(ctx), _trace.span(
        "unit",
        unit_id=unit.unit_id,
        route=unit.route,
        requests=len(unit.requests),
    ):
        return _execute_unit(graph, unit)


def _execute_unit(graph: CSRGraph, unit: WorkUnit) -> UnitResult:
    from repro.algorithms.registry import get_algorithm

    info = get_algorithm(unit.algorithm)
    kwargs = dict(unit.program_kwargs)
    payloads: List[RequestPayload] = []
    route = unit.route
    oom_config = unit.oom_config
    cluster_shards = unit.cluster_shards
    if unit.plan is not None:
        route = unit.plan.route
        if route == "coalesced":
            route = "in_memory"
        layout = unit.plan.layout
        if layout.oom is not None:
            oom_config = layout.oom
        if route == "sharded":
            cluster_shards = layout.num_partitions

    if route == "sharded":
        # Oversized graphs served by the sharded tier: one in-process
        # cluster run per request (bit-identical for any shard count, so
        # the sizing decision never changes results -- see
        # docs/distributed.md).
        from repro.distributed import ShardedSamplingCluster

        if not cluster_shards:
            # The front-end froze the shard count at admission; a missing
            # value must not silently run partitions over the budget.
            return UnitResult(
                unit_id=unit.unit_id,
                error="sharded unit carries no cluster_shards",
            )
        for spec in unit.requests:
            try:
                cache_before = _cache_snapshot()
                cluster = ShardedSamplingCluster(
                    graph,
                    unit.algorithm,
                    unit.config,
                    num_shards=int(cluster_shards),
                    program_kwargs=kwargs,
                    transport="in_process",
                )
                cluster_result = cluster.run(
                    list(spec.seeds), num_instances=spec.num_instances
                )
                payload = _payload_from_result(
                    spec, cluster_result.result, "sharded", 1
                )
                payload.stats["makespan"] = float(cluster_result.makespan())
                payload.stats["num_shards"] = float(cluster_result.num_shards)
                payload.stats["migrations"] = float(cluster_result.migrations)
                _annotate_cache_deltas(payload, cache_before)
                _annotate_step_tier(payload, unit)
                payloads.append(payload)
            except Exception:
                payloads.append(RequestPayload(
                    request_id=spec.request_id, route="sharded",
                    error=traceback.format_exc(limit=8),
                ))
        return UnitResult(unit_id=unit.unit_id, payloads=payloads)

    if route == "out_of_memory":
        # Oversized graphs run the partition-scheduled sampler, one request
        # per run (bit-identical to a standalone OutOfMemorySampler by
        # construction); a fresh program per request keeps stateful hooks
        # standalone-equivalent.
        for spec in unit.requests:
            try:
                cache_before = _cache_snapshot()
                sampler = OutOfMemorySampler(
                    graph, info.program_factory(**kwargs), unit.config,
                    oom_config, algorithm=unit.algorithm,
                )
                oom_result = sampler.run(
                    list(spec.seeds), num_instances=spec.num_instances
                )
                payload = _payload_from_result(
                    spec, oom_result.sample, "out_of_memory", 1
                )
                payload.stats["makespan"] = float(oom_result.makespan)
                _annotate_cache_deltas(payload, cache_before)
                _annotate_step_tier(payload, unit)
                payloads.append(payload)
            except Exception:
                payloads.append(RequestPayload(
                    request_id=spec.request_id, route="out_of_memory",
                    error=traceback.format_exc(limit=8),
                ))
        return UnitResult(unit_id=unit.unit_id, payloads=payloads)

    probe = info.program_factory(**kwargs)
    if probe.supports_coalescing and len(unit.requests) > 1:
        try:
            members = [
                make_instances(
                    list(spec.seeds), num_instances=spec.num_instances
                )
                for spec in unit.requests
            ]
            cache_before = _cache_snapshot()
            results = run_coalesced(graph, probe, unit.config, members,
                                    algorithm=unit.algorithm)
            for spec, result in zip(unit.requests, results):
                payload = _payload_from_result(
                    spec, result, "in_memory", len(unit.requests)
                )
                # One kernel/structure lookup served the fused batch; every
                # member reports the shared delta.
                _annotate_cache_deltas(payload, cache_before)
                _annotate_step_tier(payload, unit)
                payloads.append(payload)
            return UnitResult(unit_id=unit.unit_id, payloads=payloads)
        except Exception:
            # One member's failure must not take down the whole batch: fall
            # through to the solo loop, which isolates errors per request.
            # Surface the fused failure (worker stderr + payload stats) so a
            # reproducible batch-only engine bug cannot hide behind the
            # fallback doing double work forever.
            warnings.warn(
                "coalesced batch failed, falling back to per-request runs:\n"
                + traceback.format_exc(limit=8)
            )
            payloads = []
            fell_back = True
    else:
        fell_back = False

    for spec in unit.requests:
        try:
            # Snapshot before construction: building the sampler is what
            # resolves the compiled step engine's cached structures.
            cache_before = _cache_snapshot()
            sampler = GraphSampler(
                graph, info.program_factory(**kwargs), unit.config,
                algorithm=unit.algorithm,
            )
            result = sampler.run(list(spec.seeds), num_instances=spec.num_instances)
            payload = _payload_from_result(spec, result, "in_memory", 1)
            _annotate_cache_deltas(payload, cache_before)
            _annotate_step_tier(payload, unit)
            if fell_back:
                payload.stats["coalesced_fallback"] = 1.0
            payloads.append(payload)
        except Exception:
            payloads.append(RequestPayload(
                request_id=spec.request_id, error=traceback.format_exc(limit=8),
            ))
    return UnitResult(unit_id=unit.unit_id, payloads=payloads)


# --------------------------------------------------------------------------- #
# Worker loops
# --------------------------------------------------------------------------- #
def _process_worker_main(task_queue, result_queue) -> None:
    """Process-mode worker: attach shared graphs lazily, loop until sentinel."""
    import os

    # A forked worker inherits the front-end's span/feedback buffers and
    # profiler accumulators; those records belong to the parent and must
    # not ship home again.
    _trace.clear()
    FEEDBACK.clear()
    _profiler.clear()
    attached: Dict[str, object] = {}
    try:
        while True:
            unit = task_queue.get()
            if unit is None:
                break
            # Claim the unit before running it: if this process dies mid-unit
            # the front-end can fail exactly this unit instead of guessing.
            result_queue.put(("claim", unit.unit_id, os.getpid()))
            try:
                # Cache by name, validated by segment identity: releasing a
                # graph and publishing a different one under the same name
                # must not serve the stale mapping.
                mapping = attached.get(unit.handle.name)
                if mapping is None or mapping.handle.segments != unit.handle.segments:
                    if mapping is not None:
                        mapping.close()
                    mapping = attach(unit.handle)
                    attached[unit.handle.name] = mapping
                # The profiler's runtime switch lives in the front-end;
                # mirror it here per unit (spawned workers start disabled).
                if unit.profile:
                    _profiler.enable()
                result = execute_unit(mapping.graph, unit)
                if unit.trace_ctx is not None:
                    # Process boundary: spans and plan-cost feedback minted
                    # here must travel home inside the result message.
                    result.spans = _trace.drain()
                    result.feedback = FEEDBACK.drain()
                if unit.profile:
                    result.profile = _profiler.drain()
            except Exception:
                result = UnitResult(
                    unit_id=unit.unit_id, error=traceback.format_exc(limit=8)
                )
            result_queue.put(result)
    finally:
        for mapping in attached.values():
            try:
                mapping.close()
            except Exception:
                pass


def _thread_worker_main(task_queue, result_queue,
                        resolve_graph: Callable[[SharedGraphHandle], CSRGraph]) -> None:
    """Thread-mode worker: graphs come straight from the owner's store."""
    while True:
        unit = task_queue.get()
        if unit is None:
            break
        try:
            result = execute_unit(resolve_graph(unit.handle), unit)
        except Exception:
            result = UnitResult(
                unit_id=unit.unit_id, error=traceback.format_exc(limit=8)
            )
        result_queue.put(result)


class WorkerPool:
    """Fixed-size pool executing :class:`WorkUnit`s, any of three modes."""

    def __init__(
        self,
        num_workers: int = 2,
        *,
        mode: str = "process",
        resolve_graph: Optional[Callable[[SharedGraphHandle], CSRGraph]] = None,
        mp_context: str = "spawn",
    ):
        if mode == "inline":
            mode, num_workers = "thread", 1
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if mode == "thread" and resolve_graph is None:
            raise ValueError("thread mode needs a resolve_graph callable")
        self.mode = mode
        self.num_workers = num_workers
        self._workers: List = []
        self._closed = False
        if mode == "process":
            ctx = multiprocessing.get_context(mp_context)
            self._tasks = ctx.Queue()
            self._results = ctx.Queue()
            for _ in range(num_workers):
                proc = ctx.Process(
                    target=_process_worker_main,
                    args=(self._tasks, self._results),
                    daemon=True,
                )
                proc.start()
                self._workers.append(proc)
        else:
            self._tasks = queue.Queue()
            self._results = queue.Queue()
            for _ in range(num_workers):
                thread = threading.Thread(
                    target=_thread_worker_main,
                    args=(self._tasks, self._results, resolve_graph),
                    daemon=True,
                )
                thread.start()
                self._workers.append(thread)

    # ------------------------------------------------------------------ #
    def submit(self, unit: WorkUnit) -> None:
        """Queue a unit for execution."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        self._tasks.put(unit)

    def next_result(self, timeout: Optional[float] = None) -> UnitResult:
        """Block for the next finished unit (raises ``queue.Empty`` on timeout)."""
        return self._results.get(timeout=timeout)

    def any_workers_alive(self) -> bool:
        """Whether at least one worker is still running (a fully dead pool --
        typically a spawn failure -- means every queued unit hangs forever)."""
        if self._closed:
            return False
        return any(worker.is_alive() for worker in self._workers)

    def dead_worker_pids(self) -> List[int]:
        """Pids of process workers that are no longer alive.

        Combined with the workers' claim messages this identifies exactly
        which in-flight units died with their worker.  Thread workers cannot
        die silently (their loop catches exceptions), so thread pools always
        return an empty list.
        """
        if self._closed or self.mode != "process":
            return []
        return [
            worker.pid for worker in self._workers
            if worker.pid is not None and not worker.is_alive()
        ]

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Stop all workers (drains nothing: call after the queue is idle)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=join_timeout)
        if self.mode == "process":
            for worker in self._workers:
                if worker.is_alive():  # pragma: no cover - stuck worker
                    worker.terminate()
            self._tasks.close()
            self._results.close()
            # Queue feeder threads must wind down before interpreter exit.
            self._tasks.join_thread()
            self._results.join_thread()
        self._workers = []
