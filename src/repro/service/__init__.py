"""The sampling service: shared-memory worker pool with request coalescing.

Production-shaped serving layer over the batched execution engine
(:mod:`repro.engine`):

* :class:`~repro.service.store.SharedGraphStore` -- graphs live once in
  ``multiprocessing.shared_memory``; every worker process maps the same CSR
  arrays zero-copy.
* :class:`~repro.service.workers.WorkerPool` -- process (or thread) workers,
  each driving coalesced :class:`~repro.engine.step.BatchedStepEngine`
  batches.
* :class:`~repro.service.server.SamplingService` -- front-end queue that
  coalesces compatible requests arriving within a batching window into one
  multi-instance engine run, demultiplexes per-request results, and routes
  graphs larger than the memory budget to the out-of-memory sampler.
* :class:`~repro.service.gateway.Gateway` -- the multi-tenant front door:
  a deterministic result cache (:mod:`repro.service.cache`, bit-identical
  hits without dispatching) and cost-based per-tenant admission control
  (:mod:`repro.service.qos`, token buckets charged with planner-predicted
  cost; over-quota tenants shed with :class:`~repro.service.qos.
  AdmissionRejected` before any compute).
* :class:`~repro.service.client.SamplingClient` /
  :class:`~repro.service.client.AsyncSamplingClient` -- blocking and asyncio
  front doors.

Per-request results are bit-identical to standalone sampler runs with the
same seed regardless of coalescing (see ``docs/service.md``).
"""

from repro.service.cache import CachedResult, SampleCache
from repro.service.client import AsyncSamplingClient, SamplingClient
from repro.service.gateway import Gateway, GatewayConfig
from repro.service.qos import (
    AdmissionController,
    AdmissionRejected,
    TenantQuota,
    TokenBucket,
)
from repro.service.server import SamplingService, ServiceError, ServiceStats
from repro.service.store import (
    AttachedGraph,
    SharedGraphHandle,
    SharedGraphStore,
    attach,
    leaked_segments,
)
from repro.service.workers import (
    RequestPayload,
    RequestSpec,
    UnitResult,
    WorkUnit,
    WorkerPool,
    execute_unit,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AsyncSamplingClient",
    "AttachedGraph",
    "CachedResult",
    "Gateway",
    "GatewayConfig",
    "RequestPayload",
    "RequestSpec",
    "SampleCache",
    "SamplingClient",
    "SamplingService",
    "ServiceError",
    "ServiceStats",
    "TenantQuota",
    "TokenBucket",
    "SharedGraphHandle",
    "SharedGraphStore",
    "UnitResult",
    "WorkUnit",
    "WorkerPool",
    "attach",
    "execute_unit",
    "leaked_segments",
]
