"""Lightweight structured tracing with cross-process context propagation.

Design goals, in order:

1. **Near-zero disabled cost.**  :func:`span` is the only call sites pay.
   With tracing off and no propagated context active it returns a shared
   no-op span object without allocating -- one global check, one
   thread-local read.  Nothing else runs.
2. **One trace per request, across processes.**  A :class:`TraceContext`
   is a tiny picklable pair ``(trace_id, span_id)``.  The service mints a
   trace id per request and ships the context inside ``WorkUnit``; the
   sharded executor ships it inside ``WalkerEnvelope``; receivers adopt it
   with :func:`activated` so their spans join the caller's tree.  Span ids
   embed the producing pid, so ids never collide across workers.
3. **No locks on the hot path.**  Finished spans land in a process-local
   bounded deque (``collections.deque`` append is atomic under the GIL).
   Workers :func:`drain` their buffer and ship the records home inside the
   result message; the front-end :func:`ingest`\\ s them back, yielding one
   coherent tree.

Spans record wall-clock epoch seconds (``time.time()``) so records from
different processes line up on a shared axis in Chrome trace viewers.
"""

from __future__ import annotations

import collections
import itertools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, NamedTuple, Optional

__all__ = [
    "Span",
    "SpanRecord",
    "TraceContext",
    "activated",
    "active",
    "clear",
    "current",
    "disable",
    "drain",
    "enable",
    "enabled",
    "ingest",
    "new_span_id",
    "new_trace_id",
    "record_span",
    "span",
    "spans",
    "spans_for",
]

# Maximum finished spans retained per process; oldest are dropped first.
_BUFFER_CAPACITY = 65536

_enabled = os.environ.get("REPRO_TELEMETRY", "") == "1"

_local = threading.local()

_BUFFER: Deque["SpanRecord"] = collections.deque(maxlen=_BUFFER_CAPACITY)

# Monotonic per-process sequence for span ids; combined with the pid so
# ids minted in different worker processes never collide.
_SEQUENCE = itertools.count(1)


class TraceContext(NamedTuple):
    """Picklable propagation token: the trace id plus the parent span id."""

    trace_id: str
    span_id: Optional[str] = None


@dataclass
class SpanRecord:
    """A finished span. Plain data, picklable, cheap to ship across pipes."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float
    end_s: float
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def enable() -> None:
    """Turn telemetry on process-wide (spans, hot-path metrics, feedback)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn telemetry off. Already-buffered spans are kept until :func:`clear`."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether telemetry was enabled in this process."""
    return _enabled


def current() -> Optional[TraceContext]:
    """The active trace context on this thread, or None."""
    return getattr(_local, "ctx", None)


def active() -> bool:
    """True when spans would record: telemetry is enabled here, or a
    propagated context is active on this thread (worker processes trace
    on behalf of an enabled front-end without flipping their own switch)."""
    return _enabled or getattr(_local, "ctx", None) is not None


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    return "%x.%x" % (os.getpid(), next(_SEQUENCE))


class _NullSpan:
    """Shared no-op span returned when tracing is inactive."""

    __slots__ = ()
    span_id: Optional[str] = None
    trace_id: Optional[str] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """A live span; use as a context manager. On exit it restores the
    parent context and appends a :class:`SpanRecord` to the process buffer."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "start_s", "_prev")

    def __init__(self, name: str, trace_id: str, parent_id: Optional[str],
                 attrs: Dict[str, object]):
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_s = 0.0
        self._prev: Optional[TraceContext] = None

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start_s = time.time()
        self._prev = getattr(_local, "ctx", None)
        _local.ctx = TraceContext(self.trace_id, self.span_id)
        return self

    def __exit__(self, *exc: object) -> bool:
        _local.ctx = self._prev
        _BUFFER.append(SpanRecord(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_s=self.start_s,
            end_s=time.time(),
            attrs=self.attrs,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFF,
        ))
        return False


def span(name: str, **attrs: object):
    """Open a span named ``name``.

    Child of the thread's current span when one is active; otherwise a new
    trace root when telemetry is enabled; otherwise the shared no-op span.
    """
    ctx = getattr(_local, "ctx", None)
    if ctx is None:
        if not _enabled:
            return _NULL_SPAN
        return Span(name, new_trace_id(), None, attrs)
    return Span(name, ctx.trace_id, ctx.span_id, attrs)


@contextmanager
def activated(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Adopt a propagated context on this thread for the duration of the
    block. ``None`` is a no-op, so call sites need no conditional."""
    if ctx is None:
        yield
        return
    prev = getattr(_local, "ctx", None)
    _local.ctx = TraceContext(ctx[0], ctx[1])
    try:
        yield
    finally:
        _local.ctx = prev


def record_span(name: str, *, trace_id: str, start_s: float, end_s: float,
                span_id: Optional[str] = None, parent_id: Optional[str] = None,
                **attrs: object) -> SpanRecord:
    """Append an already-timed span directly.

    Used for spans whose start and end happen on different threads (the
    service opens a request's root span at submit time on the caller thread
    and closes it on the collector thread).
    """
    rec = SpanRecord(
        trace_id=trace_id,
        span_id=span_id if span_id is not None else new_span_id(),
        parent_id=parent_id,
        name=name,
        start_s=start_s,
        end_s=end_s,
        attrs=dict(attrs),
        pid=os.getpid(),
        tid=threading.get_ident() & 0xFFFF,
    )
    _BUFFER.append(rec)
    return rec


def drain() -> List[SpanRecord]:
    """Remove and return every buffered span (worker side of shipping)."""
    records: List[SpanRecord] = []
    while True:
        try:
            records.append(_BUFFER.popleft())
        except IndexError:
            return records


def ingest(records: Iterable[SpanRecord]) -> None:
    """Append spans shipped from another process into the local buffer."""
    _BUFFER.extend(records)


def spans() -> List[SpanRecord]:
    """Snapshot of all buffered spans, oldest first."""
    return list(_BUFFER)


def spans_for(trace_id: str) -> List[SpanRecord]:
    """Buffered spans belonging to one trace, oldest first."""
    return [r for r in _BUFFER if r.trace_id == trace_id]


def clear() -> None:
    """Discard every buffered span."""
    _BUFFER.clear()
