"""Span exporters: JSON, Chrome ``trace_event`` format, and tree helpers.

``write_chrome_trace`` produces a file loadable in ``chrome://tracing`` or
https://ui.perfetto.dev -- each span becomes a complete ("ph": "X") event
with microsecond timestamps, laid out per process/thread, with trace and
span ids in ``args`` for cross-referencing.

Alongside spans, ``chrome_counter_events`` turns time-stamped load
samples (queue depth, cache bytes, in-flight units -- the service's
monitor thread records them; see ``SamplingService.load_samples``) into
counter ("ph": "C") events, so Perfetto draws the service's load curves
on the same time axis as the request spans.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.telemetry.trace import SpanRecord

__all__ = [
    "CounterSample",
    "chrome_counter_events",
    "chrome_trace_events",
    "format_tree",
    "is_connected",
    "span_tree",
    "write_chrome_trace",
    "write_json",
]

#: One load sample: (ts_s, counter_name, {series: value}).  Values must be
#: numbers; each series becomes one stacked band in the counter track.
CounterSample = Tuple[float, str, Dict[str, float]]


def _record_dict(record: SpanRecord) -> Dict[str, object]:
    return {
        "trace_id": record.trace_id,
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "name": record.name,
        "start_s": record.start_s,
        "end_s": record.end_s,
        "duration_s": record.duration_s,
        "attrs": dict(record.attrs),
        "pid": record.pid,
        "tid": record.tid,
    }


def write_json(records: Sequence[SpanRecord],
               path: Union[str, Path, None] = None) -> str:
    """Serialize spans to a JSON array; optionally write it to ``path``."""
    text = json.dumps([_record_dict(r) for r in records], indent=2,
                      default=str)
    if path is not None:
        Path(path).write_text(text)
    return text


def chrome_trace_events(records: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Spans as Chrome ``trace_event`` complete events (+ process metadata)."""
    events: List[Dict[str, object]] = []
    seen_pids = set()
    for record in records:
        if record.pid not in seen_pids:
            seen_pids.add(record.pid)
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": record.pid,
                "args": {"name": "repro pid %d" % record.pid},
            })
        events.append({
            "ph": "X",
            "name": record.name,
            "cat": "repro",
            "ts": record.start_s * 1e6,
            "dur": max(record.duration_s, 0.0) * 1e6,
            "pid": record.pid,
            "tid": record.tid,
            "args": {
                "trace_id": record.trace_id,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                **{k: str(v) for k, v in record.attrs.items()},
            },
        })
    return events


def chrome_counter_events(samples: Sequence[CounterSample],
                          pid: int = 0) -> List[Dict[str, object]]:
    """Load samples as Chrome ``trace_event`` counter ("ph": "C") events.

    Each distinct counter name becomes one track; the values dict's keys
    become stacked series within it.  Timestamps share the spans' wall
    clock epoch axis, so the resulting events can be concatenated with
    :func:`chrome_trace_events` output directly.
    """
    events: List[Dict[str, object]] = []
    for ts_s, name, values in samples:
        events.append({
            "ph": "C",
            "name": name,
            "cat": "repro",
            "ts": float(ts_s) * 1e6,
            "pid": pid,
            "args": {k: float(v) for k, v in values.items()},
        })
    return events


def write_chrome_trace(records: Sequence[SpanRecord],
                       path: Union[str, Path],
                       counters: Optional[Sequence[CounterSample]] = None
                       ) -> Path:
    """Write spans (plus optional load counters) as a Chrome trace file."""
    events = chrome_trace_events(records)
    if counters:
        events.extend(chrome_counter_events(counters))
    path = Path(path)
    path.write_text(json.dumps(
        {"traceEvents": events,
         "displayTimeUnit": "ms"},
        default=str))
    return path


def span_tree(records: Sequence[SpanRecord]
              ) -> Tuple[List[SpanRecord], Dict[str, List[SpanRecord]]]:
    """Split spans into (roots, children-by-parent-span-id).

    A span is a root when it has no parent id or its parent is absent from
    ``records`` (the latter marks a broken tree; see :func:`is_connected`).
    """
    by_id = {r.span_id: r for r in records}
    roots: List[SpanRecord] = []
    children: Dict[str, List[SpanRecord]] = {}
    for record in records:
        if record.parent_id is not None and record.parent_id in by_id:
            children.setdefault(record.parent_id, []).append(record)
        else:
            roots.append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.start_s, r.span_id))
    roots.sort(key=lambda r: (r.start_s, r.span_id))
    return roots, children


def is_connected(records: Sequence[SpanRecord],
                 trace_id: Optional[str] = None) -> bool:
    """True when spans form one tree: a single trace id, exactly one span
    without a parent, and every other span's parent present in the set."""
    if not records:
        return False
    trace_ids = {r.trace_id for r in records}
    if trace_id is not None and trace_ids != {trace_id}:
        return False
    if len(trace_ids) != 1:
        return False
    by_id = {r.span_id: r for r in records}
    if len(by_id) != len(records):
        return False  # duplicate span ids
    orphanless_roots = [r for r in records if r.parent_id is None]
    if len(orphanless_roots) != 1:
        return False
    return all(r.parent_id in by_id for r in records
               if r.parent_id is not None)


def format_tree(records: Sequence[SpanRecord]) -> str:
    """Human-readable indented rendering of the span tree (for debugging)."""
    roots, children = span_tree(records)
    lines: List[str] = []

    def visit(record: SpanRecord, depth: int) -> None:
        attrs = " ".join("%s=%s" % (k, v) for k, v in record.attrs.items())
        lines.append("%s%s (%.3f ms)%s" % (
            "  " * depth, record.name, record.duration_s * 1e3,
            " [%s]" % attrs if attrs else ""))
        for child in children.get(record.span_id, ()):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)
