"""Plan-cost feedback: predicted vs actual cost of every executed plan.

The executor records one entry per plan execution when telemetry is
active. Entries use the same record keys as the shipped benchmark files
(``predicted_time_s`` / ``actual_time_s`` / ``bench`` / ``route``), so
:func:`repro.planner.calibration.fit_calibration` consumes them directly
and :func:`repro.planner.calibration.fit_from_telemetry` can refresh the
host calibration from live traffic.

Worker processes record into their own sink; the pool drains it alongside
span buffers and ships the entries home inside the unit result, where the
front-end re-ingests them.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, Iterable, List

__all__ = ["FEEDBACK", "PlanFeedbackSink"]

_DEFAULT_CAPACITY = 4096


class PlanFeedbackSink:
    """Bounded buffer of plan-outcome records (oldest dropped first)."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        self._records: Deque[Dict[str, object]] = collections.deque(
            maxlen=capacity)

    def record(self, plan, actual_time_s: float, *,
               source: str = "live") -> Dict[str, object]:
        """Store the outcome of one executed :class:`ExecutionPlan`."""
        entry: Dict[str, object] = {
            "bench": "%s:%s" % (source, plan.algorithm or plan.program_name
                                or "program"),
            "route": plan.route,
            "algorithm": plan.algorithm,
            "step_tier": plan.step_tier,
            "num_instances": plan.num_instances,
            "predicted_sampled_edges": int(plan.predicted_cost.sampled_edges),
            "predicted_time_s": float(plan.predicted_time_s),
            "calibrated_time_s": float(plan.calibrated_time_s),
            "actual_time_s": float(actual_time_s),
        }
        self._records.append(entry)
        return entry

    def records(self) -> List[Dict[str, object]]:
        return list(self._records)

    def ingest(self, records: Iterable[Dict[str, object]]) -> None:
        """Append records shipped from a worker process."""
        self._records.extend(records)

    def drain(self) -> List[Dict[str, object]]:
        """Remove and return every buffered record (worker side)."""
        records: List[Dict[str, object]] = []
        while True:
            try:
                records.append(self._records.popleft())
            except IndexError:
                return records

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


# Process-global sink written by the executor, drained by worker pools.
FEEDBACK = PlanFeedbackSink()
