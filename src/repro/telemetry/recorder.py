"""Flight recorder: a bounded ring buffer of operational events.

When a worker crashes or a unit times out, metrics tell you *that* it
happened and spans tell you *where the request was* -- but neither tells
you what the service was doing in the seconds before.  The flight
recorder keeps the last N structured events (admissions, sheds, cache
hits and evictions, epoch lifecycle, replan drains, worker crashes and
claims, unit timeouts, shard migrations) in memory at all times, each
correlated to the owning request's trace id, so a post-mortem needs no
reproduction: :meth:`SamplingService.diagnose` snapshots the buffer, and
the service auto-dumps it to a file the moment a crash or timeout is
detected.

The buffer is a ``collections.deque(maxlen=...)``: appends are atomic
under the GIL, so the hot path takes no lock and never blocks the
dispatcher; old events simply fall off the left end.  Recording when
disabled is a single attribute check.
"""

from __future__ import annotations

import collections
import json
import os
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = ["EVENT_KINDS", "FlightRecorder", "RecorderEvent"]

#: The event taxonomy. ``record()`` accepts any kind string (forward
#: compatibility), but everything the service emits is listed here and
#: documented in docs/telemetry.md.
EVENT_KINDS = (
    "admit",            # request admitted past the gateway
    "shed",             # request rejected by admission control
    "cache_hit",        # result served from the deterministic cache
    "cache_evict",      # LRU eviction or epoch invalidation removed entries
    "epoch_publish",    # new graph epoch published
    "epoch_retire",     # old epoch fully drained and released
    "replan_drain",     # replan() paused intake and drained in-flight work
    "worker_claim",     # worker claimed a unit (crash-recovery protocol)
    "worker_crash",     # worker process died with units in flight
    "unit_timeout",     # unit exceeded its deadline and was failed
    "shard_migration",  # sharded run finished; walker migration totals
    "snapshot_dump",    # diagnose() snapshot auto-dumped to a file
)


@dataclass(frozen=True)
class RecorderEvent:
    """One recorded event. Plain data; ``as_dict`` is JSON-ready."""

    ts: float
    kind: str
    trace_id: Optional[str] = None
    pid: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ts": self.ts,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


class FlightRecorder:
    """Bounded, lock-free ring buffer of :class:`RecorderEvent`."""

    def __init__(self, capacity: int = 2048, enabled: bool = True):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        self._events: Deque[RecorderEvent] = collections.deque(
            maxlen=self.capacity)
        self._dropped = 0

    def record(self, kind: str, trace_id: Optional[str] = None,
               **attrs: object) -> None:
        """Append one event; constant-time, no lock, never raises."""
        if not self.enabled:
            return
        if len(self._events) == self.capacity:
            self._dropped += 1
        self._events.append(RecorderEvent(
            ts=time.time(),
            kind=kind,
            trace_id=trace_id,
            pid=os.getpid(),
            attrs=attrs,
        ))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events pushed off the ring since construction or clear()."""
        return self._dropped

    def events(self, kind: Optional[str] = None,
               trace_id: Optional[str] = None,
               last: Optional[int] = None) -> List[RecorderEvent]:
        """Buffered events oldest-first, optionally filtered, last N."""
        out = [
            e for e in list(self._events)
            if (kind is None or e.kind == kind)
            and (trace_id is None or e.trace_id == trace_id)
        ]
        if last is not None:
            out = out[-last:]
        return out

    def counts(self) -> Dict[str, int]:
        """Event count per kind currently in the buffer."""
        out: Dict[str, int] = {}
        for event in list(self._events):
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def snapshot(self, last: Optional[int] = None) -> List[Dict[str, object]]:
        """JSON-ready dicts of the last N events, oldest first."""
        return [e.as_dict() for e in self.events(last=last)]

    def dump(self, path: str,
             extra: Optional[Dict[str, object]] = None) -> str:
        """Write a JSON snapshot (events + optional context) to ``path``.

        Returns the path.  Parent directories are created; failures are
        the caller's problem to swallow -- the recorder itself must never
        take the service down.
        """
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        payload: Dict[str, object] = {
            "version": 1,
            "dumped_at": time.time(),
            "dropped": self._dropped,
            "events": self.snapshot(),
        }
        if extra:
            payload.update(extra)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        return path

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0
