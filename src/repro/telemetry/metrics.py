"""Process-local counters and fixed-bucket histograms.

Hot-path friendly: a :class:`Counter` increment is one integer add on a
pre-resolved object, a :class:`Histogram` observation is one bisect plus
a few scalar updates -- no locks (single-interpreter atomicity is enough:
writers only add, readers snapshot). Registries from worker processes can
be merged into the front-end registry because counters add and histograms
share fixed bucket bounds.

Percentiles are estimated from the fixed buckets by linear interpolation
inside the bucket holding the requested rank, clamped to the observed
min/max -- accurate to bucket resolution (successive bounds differ by
2x by default), which is plenty for p50/p99 latency reporting.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
]

# Geometric latency buckets: 1 microsecond .. ~67 seconds, doubling.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 2.0 ** i for i in range(27))

_LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A value that can go up and down (queue depth, occupancy, levels).

    Merging sums values: a gauge split across worker registries (e.g.
    per-worker in-flight units) reads as the cluster total after merge.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        self.value += other.value


class Histogram:
    """Fixed-bucket histogram of non-negative samples (latencies, sizes)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Optional[Iterable[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = (
            tuple(float(b) for b in bounds) if bounds is not None
            else DEFAULT_BUCKETS
        )
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (q in [0, 100])."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "mean_s": 0.0, "min_s": 0.0, "max_s": 0.0,
                    "p50_s": 0.0, "p99_s": 0.0}
        return {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min,
            "max_s": self.max,
            "p50_s": self.percentile(50.0),
            "p99_s": self.percentile(99.0),
        }


def _label_key(name: str, labels: Dict[str, object]) -> _LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    The spec requires ``\\`` -> ``\\\\``, ``"`` -> ``\\"`` and a literal
    newline -> ``\\n`` inside quoted label values; anything else passes
    through verbatim.  Backslash must be first or it would re-escape the
    escapes it just introduced.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(
        '%s="%s"' % (k, _escape_label_value(v)) for k, v in labels
    ) + "}"


class MetricsRegistry:
    """Named counters and histograms, addressed by (name, labels).

    ``counter()`` / ``histogram()`` resolve (and lazily create) the
    instrument; hold the returned object to skip the dict lookup on
    genuinely hot paths.  Creation is thread-safe: the submit, dispatcher
    and collector threads all create instruments lazily, and an unlocked
    check-then-insert could race two objects for one key -- the loser's
    increments would be silently dropped.  The hot path (instrument
    already exists) stays a lock-free dict read.
    """

    def __init__(self) -> None:
        self._counters: Dict[_LabelKey, Counter] = {}
        self._gauges: Dict[_LabelKey, Gauge] = {}
        self._histograms: Dict[_LabelKey, Histogram] = {}
        self._create_lock = threading.Lock()

    def counter(self, name: str, **labels: object) -> Counter:
        key = _label_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.get(key)
                if instrument is None:
                    instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _label_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.get(key)
                if instrument is None:
                    instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, buckets: Optional[Iterable[float]] = None,
                  **labels: object) -> Histogram:
        key = _label_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.get(key)
                if instrument is None:
                    instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    def find_counters(self, name: str) -> List[Tuple[Dict[str, str], Counter]]:
        """Every counter registered under ``name``, with its label dict."""
        with self._create_lock:
            items = sorted(self._counters.items())
        return [
            (dict(labels), counter)
            for (metric, labels), counter in items
            if metric == name
        ]

    def find_gauges(self, name: str) -> List[Tuple[Dict[str, str], Gauge]]:
        """Every gauge registered under ``name``, with its label dict."""
        with self._create_lock:
            items = sorted(self._gauges.items())
        return [
            (dict(labels), gauge)
            for (metric, labels), gauge in items
            if metric == name
        ]

    def find_histograms(
        self, name: str
    ) -> List[Tuple[Dict[str, str], Histogram]]:
        """Every histogram registered under ``name``, with its label dict."""
        with self._create_lock:
            items = sorted(self._histograms.items())
        return [
            (dict(labels), histogram)
            for (metric, labels), histogram in items
            if metric == name
        ]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. shipped from a worker) into this one."""
        with self._create_lock:
            for (name, labels), counter in other._counters.items():
                self._counters.setdefault((name, labels), Counter()).merge(counter)
            for (name, labels), gauge in other._gauges.items():
                self._gauges.setdefault((name, labels), Gauge()).merge(gauge)
            for (name, labels), histogram in other._histograms.items():
                mine = self._histograms.get((name, labels))
                if mine is None:
                    mine = self._histograms[(name, labels)] = Histogram(histogram.bounds)
                mine.merge(histogram)

    def snapshot(self) -> Dict[str, object]:
        """Flat dict: counters -> int, histograms -> summary dicts."""
        out: Dict[str, object] = {}
        # Freeze the key sets under the lock: a reader snapshotting while
        # another thread creates an instrument must not see a dict resize.
        with self._create_lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        for (name, labels), counter in counters:
            out[name + _format_labels(labels)] = counter.value
        for (name, labels), gauge in gauges:
            out[name + _format_labels(labels)] = gauge.value
        for (name, labels), histogram in histograms:
            out[name + _format_labels(labels)] = histogram.summary()
        return out

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (counters + histograms)."""
        lines: List[str] = []
        with self._create_lock:
            counter_items = sorted(self._counters.items())
            gauge_items = sorted(self._gauges.items())
            histogram_items = sorted(self._histograms.items())
        for (name, labels), counter in counter_items:
            full = prefix + name
            lines.append("# TYPE %s counter" % full)
            lines.append("%s%s %d" % (full, _format_labels(labels), counter.value))
        for (name, labels), gauge in gauge_items:
            full = prefix + name
            lines.append("# TYPE %s gauge" % full)
            lines.append("%s%s %g" % (full, _format_labels(labels), gauge.value))
        for (name, labels), histogram in histogram_items:
            full = prefix + name
            lines.append("# TYPE %s histogram" % full)
            cumulative = 0
            for bound, bucket_count in zip(histogram.bounds,
                                           histogram.bucket_counts):
                cumulative += bucket_count
                le = dict(labels)
                le["le"] = "%g" % bound
                lines.append("%s_bucket%s %d" % (
                    full, _format_labels(tuple(sorted(le.items()))), cumulative))
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append("%s_bucket%s %d" % (
                full, _format_labels(tuple(sorted(inf_labels.items()))),
                histogram.count))
            lines.append("%s_sum%s %g" % (full, _format_labels(labels),
                                          histogram.total))
            lines.append("%s_count%s %d" % (full, _format_labels(labels),
                                            histogram.count))
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        with self._create_lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# Process-global default registry, used by hot-path instrumentation in the
# engine and executor. The sampling service keeps its own registry.
REGISTRY = MetricsRegistry()
