"""Health / SLO monitor: rolling-window latency objectives per route.

Builds on what PR 7 already collects -- the service's per-route
``request_latency_s`` histograms are cumulative, so this module never
adds hot-path instrumentation.  :meth:`HealthMonitor.evaluate` diffs the
cumulative (count, violations) pair against the previous evaluation,
keeps the deltas in a rolling window, and derives classic SLO numbers:

* **violation rate** -- fraction of windowed requests slower than the
  route's latency objective (counted from the histogram buckets above
  the bound, so accuracy is bucket resolution -- same contract as the
  p50/p99 estimates);
* **burn rate** -- violation rate divided by the error budget.  Burn 1.0
  means the budget is being consumed exactly as fast as allowed; above
  that the route is eating into future headroom.

Routes degrade at ``DEGRADED_BURN`` and go unhealthy at
``UNHEALTHY_BURN``.  Hard operational signals (dead workers, a saturated
pending queue) short-circuit the verdict regardless of latency, because
a service with no live workers is unhealthy even while its window is
empty.  Every verdict carries machine-readable reason dicts, and the
monitor mirrors its numbers into gauges on the bound registry so they
land in the Prometheus dump.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import collections

from repro.telemetry.metrics import Histogram, MetricsRegistry

__all__ = [
    "DEGRADED_BURN",
    "UNHEALTHY_BURN",
    "HealthMonitor",
    "LatencyObjective",
    "STATUS_LEVELS",
]

#: Burn-rate thresholds: budget consumed exactly on schedule is 1.0.
DEGRADED_BURN = 1.0
UNHEALTHY_BURN = 10.0

#: Ordered severity; index doubles as the ``health_status`` gauge value.
STATUS_LEVELS = ("ok", "degraded", "unhealthy")


@dataclass(frozen=True)
class LatencyObjective:
    """A route's SLO: ``error_budget`` of requests may exceed ``latency_s``."""

    latency_s: float
    error_budget: float = 0.01
    window_s: float = 300.0

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise ValueError("latency_s must be > 0")
        if not 0 < self.error_budget < 1:
            raise ValueError("error_budget must be in (0, 1)")
        if self.window_s <= 0:
            raise ValueError("window_s must be > 0")


#: Conservative single-host defaults; services override per deployment.
DEFAULT_OBJECTIVES: Dict[str, LatencyObjective] = {
    "in_memory": LatencyObjective(latency_s=2.0),
    "coalesced": LatencyObjective(latency_s=4.0),
    "out_of_memory": LatencyObjective(latency_s=30.0),
    "sharded": LatencyObjective(latency_s=30.0),
}


def _violations_above(hist: Histogram, bound_s: float) -> int:
    """Observations strictly above ``bound_s``, to bucket resolution.

    Undercounts by at most the bucket straddling the bound -- a
    violation the histogram itself cannot resolve.
    """
    start = bisect.bisect_left(hist.bounds, bound_s) + 1
    return sum(hist.bucket_counts[start:])


class HealthMonitor:
    """Rolling-window SLO accounting over a registry's latency histograms."""

    def __init__(self, metrics: MetricsRegistry,
                 objectives: Optional[Dict[str, LatencyObjective]] = None,
                 latency_metric: str = "request_latency_s"):
        self.metrics = metrics
        self.objectives = dict(
            DEFAULT_OBJECTIVES if objectives is None else objectives)
        self.latency_metric = latency_metric
        # route -> cumulative (count, violations) at the last evaluation
        self._last: Dict[str, Tuple[int, int]] = {}
        # route -> deque of (ts, requests_delta, violations_delta)
        self._windows: Dict[str, Deque[Tuple[float, int, int]]] = {}

    # ------------------------------------------------------------------ #
    def _route_histograms(self) -> Dict[str, Histogram]:
        out: Dict[str, Histogram] = {}
        for labels, hist in self.metrics.find_histograms(self.latency_metric):
            route = labels.get("route")
            if route is not None:
                out[route] = hist
        return out

    def _advance(self, route: str, objective: LatencyObjective,
                 hist: Histogram, now: float) -> Tuple[int, int]:
        """Fold new observations into the route's window; return totals."""
        cum = (hist.count, _violations_above(hist, objective.latency_s))
        prev = self._last.get(route, (0, 0))
        self._last[route] = cum
        window = self._windows.setdefault(route, collections.deque())
        d_count = cum[0] - prev[0]
        d_viol = cum[1] - prev[1]
        if d_count < 0 or d_viol < 0:
            # Histogram was cleared (tests, registry reset): start over.
            window.clear()
            d_count, d_viol = cum
        if d_count > 0:
            window.append((now, d_count, d_viol))
        horizon = now - objective.window_s
        while window and window[0][0] < horizon:
            window.popleft()
        return (sum(w[1] for w in window), sum(w[2] for w in window))

    # ------------------------------------------------------------------ #
    def evaluate(self, signals: Optional[Dict[str, object]] = None,
                 now: Optional[float] = None) -> Dict[str, object]:
        """One health verdict: status, per-route SLO numbers, reasons.

        ``signals`` carries hard operational facts the latency window
        cannot see -- ``workers_alive`` / ``num_workers``,
        ``queue_depth`` / ``max_pending`` -- and participates in the
        verdict; anything else passes through for display.
        """
        now = time.time() if now is None else now
        reasons: List[Dict[str, object]] = []
        routes: Dict[str, Dict[str, object]] = {}
        severity = 0

        hists = self._route_histograms()
        for route, objective in sorted(self.objectives.items()):
            hist = hists.get(route)
            if hist is None:
                continue
            total, violations = self._advance(route, objective, hist, now)
            rate = violations / total if total else 0.0
            burn = rate / objective.error_budget
            if burn >= UNHEALTHY_BURN:
                route_status = "unhealthy"
            elif burn >= DEGRADED_BURN:
                route_status = "degraded"
            else:
                route_status = "ok"
            route_severity = STATUS_LEVELS.index(route_status)
            if route_severity:
                reasons.append({
                    "code": "latency_burn",
                    "route": route,
                    "severity": route_status,
                    "burn_rate": burn,
                    "violation_rate": rate,
                    "objective_s": objective.latency_s,
                    "error_budget": objective.error_budget,
                })
                severity = max(severity, route_severity)
            routes[route] = {
                "status": route_status,
                "objective_s": objective.latency_s,
                "error_budget": objective.error_budget,
                "window_s": objective.window_s,
                "window_requests": total,
                "window_violations": violations,
                "violation_rate": rate,
                "burn_rate": burn,
            }
            self.metrics.gauge("slo_burn_rate", route=route).set(burn)
            self.metrics.gauge("slo_violation_rate", route=route).set(rate)

        signals = dict(signals or {})
        severity = max(severity, self._judge_signals(signals, reasons))

        status = STATUS_LEVELS[severity]
        self.metrics.gauge("health_status").set(severity)
        return {
            "status": status,
            "checked_at": now,
            "reasons": reasons,
            "routes": routes,
            "signals": signals,
        }

    @staticmethod
    def _judge_signals(signals: Dict[str, object],
                       reasons: List[Dict[str, object]]) -> int:
        severity = 0
        alive = signals.get("workers_alive")
        total = signals.get("num_workers")
        if alive is not None and total:
            if int(alive) == 0:
                reasons.append({
                    "code": "no_live_workers", "severity": "unhealthy",
                    "workers_alive": 0, "num_workers": int(total),
                })
                severity = max(severity, 2)
            elif int(alive) < int(total):
                reasons.append({
                    "code": "dead_workers", "severity": "degraded",
                    "workers_alive": int(alive), "num_workers": int(total),
                })
                severity = max(severity, 1)
        depth = signals.get("queue_depth")
        ceiling = signals.get("max_pending")
        if depth is not None and ceiling:
            if int(depth) >= int(ceiling):
                reasons.append({
                    "code": "queue_saturated", "severity": "degraded",
                    "queue_depth": int(depth), "max_pending": int(ceiling),
                })
                severity = max(severity, 1)
        return severity

    def reset(self) -> None:
        """Forget all window state (tests)."""
        self._last.clear()
        self._windows.clear()
