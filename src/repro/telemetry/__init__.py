"""Unified telemetry: structured tracing, metrics and plan-cost feedback.

One zero-dependency subsystem observes every layer of the stack:

* :mod:`repro.telemetry.trace` -- lightweight spans with a trace id minted
  per request and propagated through :class:`~repro.service.workers.WorkUnit`
  into process workers and through
  :class:`~repro.distributed.router.WalkerEnvelope` across cluster shards,
  so one sampling request yields a single coherent span tree covering
  admission -> plan -> dispatch -> per-depth engine (or compiled-kernel)
  steps -> migration epochs -> reassembly;
* :mod:`repro.telemetry.metrics` -- a process-local registry of counters and
  fixed-bucket histograms (no locks on the hot path, mergeable across
  workers) behind the service's per-route latency / queue-wait / fusion-rate
  / kernel-cache statistics and a Prometheus-style text dump;
* :mod:`repro.telemetry.export` -- JSON and Chrome ``trace_event`` exporters
  (viewable in ``chrome://tracing`` / Perfetto) plus span-tree helpers;
* :mod:`repro.telemetry.feedback` -- every executed plan records predicted
  vs actual cost, so :func:`repro.planner.calibration.fit_from_telemetry`
  can refresh the host calibration from live traffic;
* :mod:`repro.telemetry.profiler` -- continuous phase-level profiler
  (gather / bias / select / update / migrate / reassemble) keyed by
  (route, algorithm, step_tier) with per-depth totals and a
  collapsed-stack flamegraph exporter (``python -m
  repro.telemetry.profiler dump``);
* :mod:`repro.telemetry.recorder` -- flight recorder: a bounded lock-free
  ring of trace-id-correlated operational events behind
  ``SamplingService.diagnose()`` and crash auto-dumps;
* :mod:`repro.telemetry.health` -- rolling-window per-route latency
  objectives with error-budget burn rates behind
  ``SamplingService.health()``.

**Overhead contract.**  Telemetry is disabled by default and the disabled
mode costs near zero: every instrumented hot path is guarded by a no-op
span / a single boolean check, and ``benchmarks/bench_telemetry_overhead.py``
pins the total disabled-mode instrumentation cost of a run below 3% of its
wall time.  Enabling telemetry never changes sampling results -- spans and
metrics observe the RNG-independent control flow only (asserted over the
full 13-algorithm x 4-route matrix by
``tests/integration/test_telemetry_bitcompat.py``).

Enable with :func:`enable` (or ``REPRO_TELEMETRY=1``), disable with
:func:`disable`.
"""

from repro.telemetry.trace import (
    Span,
    SpanRecord,
    TraceContext,
    activated,
    active,
    clear,
    current,
    disable,
    drain,
    enable,
    enabled,
    ingest,
    new_span_id,
    new_trace_id,
    record_span,
    span,
    spans,
    spans_for,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.telemetry.export import (
    chrome_counter_events,
    chrome_trace_events,
    format_tree,
    is_connected,
    span_tree,
    write_chrome_trace,
    write_json,
)
from repro.telemetry.feedback import FEEDBACK, PlanFeedbackSink
from repro.telemetry.health import HealthMonitor, LatencyObjective
from repro.telemetry.recorder import FlightRecorder, RecorderEvent
from repro.telemetry import profiler

__all__ = [
    "Counter",
    "FEEDBACK",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "LatencyObjective",
    "MetricsRegistry",
    "PlanFeedbackSink",
    "REGISTRY",
    "RecorderEvent",
    "profiler",
    "Span",
    "SpanRecord",
    "TraceContext",
    "activated",
    "active",
    "chrome_counter_events",
    "chrome_trace_events",
    "clear",
    "current",
    "disable",
    "drain",
    "enable",
    "enabled",
    "format_tree",
    "ingest",
    "is_connected",
    "new_span_id",
    "new_trace_id",
    "record_span",
    "span",
    "span_tree",
    "spans",
    "spans_for",
    "write_chrome_trace",
    "write_json",
]
