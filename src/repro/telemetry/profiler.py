"""Continuous phase-level profiler for the sampling hot loops.

Tracing (:mod:`repro.telemetry.trace`) answers *where a request went*;
this module answers *where a depth step spends its time*.  The engine,
the compiled kernel, the out-of-memory scheduler and the shard runtime
mark phase boundaries -- gather / bias / select / update / migrate /
reassemble -- and the profiler accumulates wall time per
``(route, algorithm, step_tier, phase)`` with per-depth totals and a
duration histogram per phase.

Design mirrors the tracer's contract:

1. **Near-zero disabled cost.**  Call sites pay one :func:`clock` call
   per depth step.  With profiling off it returns a shared no-op clock
   whose ``lap()`` does nothing -- one global check, no allocation.
2. **Lap timing partitions the step.**  A real :class:`PhaseClock`
   remembers the previous lap's timestamp; ``lap("gather")`` attributes
   the elapsed interval since then to ``gather``.  Consecutive laps
   therefore tile the instrumented region exactly, so phase totals sum
   to the loop's wall time (the basis of the within-10%-of-``execute_s``
   acceptance check).
3. **Cross-process shipping.**  Worker processes profile on behalf of
   the front-end: the service sets ``WorkUnit.profile`` when profiling
   is on, the worker enables its local profiler for the unit, and ships
   :func:`drain`'s accumulators home inside the result message, where
   :func:`ingest` merges them.

The collapsed-stack exporter writes ``route;algorithm;step_tier;phase
<microseconds>`` lines -- the format every flamegraph tool
(flamegraph.pl, speedscope, inferno) accepts.  ``python -m
repro.telemetry.profiler dump profile.json`` renders a saved profile
that way.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from contextlib import contextmanager

from repro.telemetry.metrics import Histogram

__all__ = [
    "PHASES",
    "PhaseClock",
    "PhaseStat",
    "clear",
    "clock",
    "collapsed",
    "disable",
    "drain",
    "enable",
    "enabled",
    "ingest",
    "load",
    "profiled",
    "save",
    "snapshot",
    "stats",
]

#: The phase taxonomy.  Instrumentation may only lap these names; the
#: exporter orders rows by this sequence so profiles read as the
#: pipeline executes.
PHASES: Tuple[str, ...] = (
    "gather", "bias", "bias_build", "structure_hit", "structure_update",
    "select", "update", "migrate", "reassemble",
)

_StatKey = Tuple[str, str, str, str]  # (route, algorithm, step_tier, phase)

_enabled = os.environ.get("REPRO_PROFILER", "") == "1"

_local = threading.local()

# Attribution for instrumented code running outside an Executor-planned
# request (e.g. the engine driven directly by a unit test).
_DEFAULT_CTX: Tuple[str, str, str] = ("direct", "unknown", "interpreted")

_STATS: Dict[_StatKey, "PhaseStat"] = {}
_create_lock = threading.Lock()


def enable() -> None:
    """Turn the profiler on process-wide."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the profiler off. Accumulated stats persist until :func:`clear`."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


class PhaseStat:
    """Accumulated wall time for one (route, algorithm, tier, phase) cell."""

    __slots__ = ("total_s", "calls", "durations", "by_depth")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.calls = 0
        self.durations = Histogram()
        # depth -> [total_s, calls]; depth -1 aggregates undepthed laps
        # (reassembly, scalar OOM expansion).
        self.by_depth: Dict[int, List[float]] = {}

    def add(self, duration_s: float, depth: int) -> None:
        self.total_s += duration_s
        self.calls += 1
        self.durations.observe(duration_s)
        cell = self.by_depth.get(depth)
        if cell is None:
            self.by_depth[depth] = [duration_s, 1]
        else:
            cell[0] += duration_s
            cell[1] += 1

    def merge(self, other: "PhaseStat") -> None:
        self.total_s += other.total_s
        self.calls += other.calls
        self.durations.merge(other.durations)
        for depth, (total_s, calls) in other.by_depth.items():
            cell = self.by_depth.get(depth)
            if cell is None:
                self.by_depth[depth] = [total_s, calls]
            else:
                cell[0] += total_s
                cell[1] += calls

    # Explicit state plumbing: __slots__ classes need it for pickling
    # across the worker result pipe.
    def __getstate__(self) -> Tuple:
        return (self.total_s, self.calls, self.durations, self.by_depth)

    def __setstate__(self, state: Tuple) -> None:
        self.total_s, self.calls, self.durations, self.by_depth = state


def _stat(key: _StatKey) -> PhaseStat:
    stat = _STATS.get(key)
    if stat is None:
        with _create_lock:
            stat = _STATS.get(key)
            if stat is None:
                stat = _STATS[key] = PhaseStat()
    return stat


class _NullClock:
    """Shared no-op clock returned when profiling is off."""

    __slots__ = ()

    def lap(self, phase: str) -> "_NullClock":
        return self

    def restart(self) -> "_NullClock":
        return self


_NULL_CLOCK = _NullClock()


class PhaseClock:
    """Lap timer attributing consecutive intervals to named phases.

    Construction captures the thread's profiling context (set by the
    Executor via :func:`profiled`) and starts the clock; each ``lap``
    charges the elapsed interval since the previous lap (or construction)
    to the given phase under that context.
    """

    __slots__ = ("_ctx", "_depth", "_last")

    def __init__(self, depth: int) -> None:
        self._ctx: Tuple[str, str, str] = getattr(_local, "ctx", None) or _DEFAULT_CTX
        self._depth = depth
        self._last = time.perf_counter()

    def lap(self, phase: str) -> "PhaseClock":
        now = time.perf_counter()
        route, algorithm, step_tier = self._ctx
        _stat((route, algorithm, step_tier, phase)).add(
            now - self._last, self._depth)
        self._last = now
        return self

    def restart(self) -> "PhaseClock":
        """Reset the lap origin without charging the interval to a phase.

        Used to exclude non-pipeline work (bookkeeping between
        instrumented regions) from the profile.
        """
        self._last = time.perf_counter()
        return self


def clock(depth: int = -1):
    """A lap clock for one depth step, or the shared no-op when off."""
    if not _enabled:
        return _NULL_CLOCK
    return PhaseClock(depth)


@contextmanager
def profiled(route: str, algorithm: str, step_tier: str) -> Iterator[None]:
    """Set the thread's profiling attribution context for a block.

    The Executor wraps ``execute()`` in this so every clock minted in the
    engine / kernel / shard runtime below it lands under the plan's
    (route, algorithm, step_tier) key.  Cheap enough to run
    unconditionally: one thread-local store each way.
    """
    prev = getattr(_local, "ctx", None)
    _local.ctx = (route, algorithm, step_tier)
    try:
        yield
    finally:
        _local.ctx = prev


# --------------------------------------------------------------------- #
# Shipping and reporting
# --------------------------------------------------------------------- #
def snapshot() -> Dict[_StatKey, PhaseStat]:
    """Reference snapshot of the live accumulators (read-only use)."""
    with _create_lock:
        return dict(_STATS)


def drain() -> Dict[_StatKey, PhaseStat]:
    """Remove and return every accumulator (worker side of shipping)."""
    with _create_lock:
        out = dict(_STATS)
        _STATS.clear()
    return out


def ingest(records: Mapping[_StatKey, PhaseStat]) -> None:
    """Merge accumulators shipped from another process into this one."""
    if not records:
        return
    for key, stat in records.items():
        _stat(tuple(key)).merge(stat)


def clear() -> None:
    """Discard all accumulated profile data."""
    with _create_lock:
        _STATS.clear()


def stats() -> List[Dict[str, object]]:
    """Flat report rows, ordered by key then pipeline phase order."""
    def phase_rank(phase: str) -> int:
        try:
            return PHASES.index(phase)
        except ValueError:
            return len(PHASES)

    rows: List[Dict[str, object]] = []
    items = sorted(
        snapshot().items(),
        key=lambda kv: (kv[0][:3], phase_rank(kv[0][3])),
    )
    for (route, algorithm, step_tier, phase), stat in items:
        rows.append({
            "route": route,
            "algorithm": algorithm,
            "step_tier": step_tier,
            "phase": phase,
            "total_s": stat.total_s,
            "calls": stat.calls,
            "mean_s": stat.durations.mean,
            "p50_s": stat.durations.percentile(50.0),
            "p99_s": stat.durations.percentile(99.0),
            "by_depth": {
                str(depth): {"total_s": cell[0], "calls": int(cell[1])}
                for depth, cell in sorted(stat.by_depth.items())
            },
        })
    return rows


def total_s(route: Optional[str] = None) -> float:
    """Summed phase wall time, optionally restricted to one route."""
    return sum(
        stat.total_s for (r, _, _, _), stat in snapshot().items()
        if route is None or r == route
    )


def collapsed(rows: Optional[List[Dict[str, object]]] = None) -> str:
    """Collapsed-stack rendering (``flamegraph.pl`` input format).

    One line per profile cell: semicolon-joined frames, a space, and the
    sample weight -- here integer microseconds of wall time.  Cells that
    round to zero microseconds are dropped (flamegraph tools reject
    zero-weight lines).
    """
    lines: List[str] = []
    for row in (rows if rows is not None else stats()):
        weight_us = int(round(float(row["total_s"]) * 1e6))
        if weight_us <= 0:
            continue
        lines.append("%s;%s;%s;%s %d" % (
            row["route"], row["algorithm"], row["step_tier"],
            row["phase"], weight_us,
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def save(path: str) -> None:
    """Write the current profile as JSON (input for the ``dump`` CLI)."""
    with open(path, "w") as fh:
        json.dump({"version": 1, "stats": stats()}, fh, indent=2)


def load(path: str) -> List[Dict[str, object]]:
    """Read rows previously written by :func:`save`."""
    with open(path) as fh:
        payload = json.load(fh)
    return list(payload["stats"])


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.profiler",
        description="Render a saved profile as collapsed stacks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    dump = sub.add_parser(
        "dump", help="print collapsed stacks (flamegraph.pl input)")
    dump.add_argument("profile", help="JSON file written by profiler.save()")
    dump.add_argument("-o", "--output", default=None,
                      help="write to a file instead of stdout")
    ns = parser.parse_args(argv)

    text = collapsed(load(ns.profile))
    if ns.output:
        with open(ns.output, "w") as fh:
            fh.write(text)
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())
