"""Statistical helpers for the evaluation figures and the test suite.

Two groups of functions live here:

* distribution checks -- empirical selection frequencies, chi-square
  uniformity tests and total-variation distance, used by the tests to verify
  that every selection technique realises the transition probabilities of
  Theorem 1 (and that bipartite region search matches updated sampling);
* figure metrics -- mean do-while iterations (Fig. 11), collision-search
  reduction ratios (Fig. 12) and kernel-time standard deviation (Fig. 14).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats as sp_stats

__all__ = [
    "empirical_distribution",
    "chi_square_uniformity",
    "total_variation_distance",
    "mean_iterations",
    "search_reduction_ratio",
    "kernel_time_std",
]


def empirical_distribution(selections: np.ndarray, num_candidates: int) -> np.ndarray:
    """Empirical selection frequency of each candidate (sums to 1)."""
    selections = np.asarray(selections, dtype=np.int64)
    if num_candidates < 1:
        raise ValueError("num_candidates must be >= 1")
    if selections.size and (selections.min() < 0 or selections.max() >= num_candidates):
        raise ValueError("selection indices out of range")
    counts = np.bincount(selections, minlength=num_candidates).astype(np.float64)
    total = counts.sum()
    return counts / total if total > 0 else counts


def chi_square_uniformity(
    selections: np.ndarray, expected_probs: np.ndarray
) -> Tuple[float, float]:
    """Chi-square goodness-of-fit of selections against expected probabilities.

    Returns ``(statistic, p_value)``.  Candidates with zero expected
    probability must never be selected (a selection there yields p = 0).
    """
    selections = np.asarray(selections, dtype=np.int64)
    expected_probs = np.asarray(expected_probs, dtype=np.float64)
    counts = np.bincount(selections, minlength=expected_probs.size).astype(np.float64)
    if counts.size != expected_probs.size:
        raise ValueError("selections reference candidates outside expected_probs")
    zero_mask = expected_probs <= 0
    if np.any(counts[zero_mask] > 0):
        return float("inf"), 0.0
    keep = ~zero_mask
    expected = expected_probs[keep] * counts.sum()
    statistic, p_value = sp_stats.chisquare(counts[keep], expected)
    return float(statistic), float(p_value)


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two distributions over the same support."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return float(0.5 * np.abs(p - q).sum())


def mean_iterations(iteration_counts: Sequence[int]) -> float:
    """Average do-while iterations per selected vertex (Fig. 11's metric)."""
    counts = np.asarray(list(iteration_counts), dtype=np.float64)
    return float(counts.mean()) if counts.size else 0.0


def search_reduction_ratio(optimized_searches: int, baseline_searches: int) -> float:
    """Fig. 12's ratio: total searches with the optimisation over the baseline."""
    if baseline_searches <= 0:
        raise ValueError("baseline search count must be positive")
    if optimized_searches < 0:
        raise ValueError("optimized search count must be non-negative")
    return optimized_searches / baseline_searches


def kernel_time_std(kernel_times: Sequence[float], *, normalize: bool = True) -> float:
    """Standard deviation of kernel times (Fig. 14's workload-imbalance metric).

    With ``normalize=True`` the standard deviation is divided by the mean
    (coefficient of variation) so graphs of different sizes are comparable,
    which is how the figure's "ratio" axis behaves.
    """
    times = np.asarray(list(kernel_times), dtype=np.float64)
    if times.size == 0:
        return 0.0
    std = float(times.std())
    if not normalize:
        return std
    mean = float(times.mean())
    return std / mean if mean > 0 else 0.0
