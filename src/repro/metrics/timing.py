"""Host-side wall-clock timing helpers.

The reproduction's headline numbers come from the *simulated* cost model, but
the benchmark harness also records host wall-clock time (how long the
simulation itself took) so regressions in the Python implementation are
visible in ``pytest-benchmark`` output.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Timer", "host_time"]


@dataclass
class Timer:
    """Accumulates named wall-clock timings."""

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name``."""
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per measurement under ``name``."""
        count = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / count if count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """All totals as a plain dictionary."""
        return dict(self.totals)


@contextmanager
def host_time() -> Iterator[dict]:
    """Context manager yielding a dict whose ``"seconds"`` key is filled on exit."""
    result = {"seconds": 0.0}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start
