"""Sampled Edges Per Second (SEPS) and speedup helpers.

The paper argues SEPS is the right throughput metric for sampling and random
walk (Section VI, "Metrics"): different algorithms traverse different numbers
of edges but what matters is how many edges end up in the sample per unit of
(kernel) time.
"""

from __future__ import annotations

__all__ = ["seps", "million_seps", "speedup"]


def seps(sampled_edges: int, kernel_time_s: float) -> float:
    """Sampled edges per second.

    Raises
    ------
    ValueError
        If the edge count is negative or the time is not positive.
    """
    if sampled_edges < 0:
        raise ValueError("sampled_edges must be non-negative")
    if kernel_time_s <= 0:
        raise ValueError("kernel_time_s must be positive")
    return sampled_edges / kernel_time_s


def million_seps(sampled_edges: int, kernel_time_s: float) -> float:
    """SEPS expressed in millions, the unit of the paper's Fig. 9."""
    return seps(sampled_edges, kernel_time_s) / 1e6


def speedup(baseline_time_s: float, optimized_time_s: float) -> float:
    """Baseline-over-optimised time ratio (>1 means the optimisation wins)."""
    if baseline_time_s <= 0 or optimized_time_s <= 0:
        raise ValueError("times must be positive")
    return baseline_time_s / optimized_time_s
