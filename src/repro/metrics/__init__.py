"""Metrics: SEPS, iteration/search statistics and distribution checks.

The paper introduces SEPS (Sampled Edges Per Second) as its headline metric
and additionally reports per-optimisation statistics: average do-while
iterations per selected vertex (Fig. 11), collision-search reduction ratios
(Fig. 12), kernel-time standard deviation (Fig. 14) and partition transfer
counts (Fig. 15).  This package computes all of them plus the statistical
helpers the test suite uses to verify that selection probabilities follow
Theorem 1.
"""

from repro.metrics.seps import seps, speedup, million_seps
from repro.metrics.stats import (
    empirical_distribution,
    chi_square_uniformity,
    total_variation_distance,
    kernel_time_std,
    search_reduction_ratio,
    mean_iterations,
)
from repro.metrics.timing import Timer, host_time

__all__ = [
    "seps",
    "speedup",
    "million_seps",
    "empirical_distribution",
    "chi_square_uniformity",
    "total_variation_distance",
    "kernel_time_std",
    "search_reduction_ratio",
    "mean_iterations",
    "Timer",
    "host_time",
]
