"""Mutable overlay for dynamic graphs: :class:`DeltaGraph`.

The sampling kernels all consume an immutable :class:`~repro.graph.csr.
CSRGraph`; real service traffic mutates its graphs between queries (new
edges, retired vertices).  ``DeltaGraph`` bridges the two worlds: it buffers
mutations in a small *overlay* on top of a CSR base and answers
degree/neighbor queries through a merged view, so readers never see a
half-applied update.  When the overlay exceeds ``compaction_budget`` pending
operations it is *compacted* -- folded into a fresh CSR base -- and the set
of vertices whose adjacency changed is handed to an optional ``on_compact``
hook so per-vertex sampling structures (ITS prefix sums, alias tables; see
:mod:`repro.selection.incremental`) can be patched incrementally instead of
rebuilt from scratch.

Bit-compatibility contract
--------------------------

Compaction is canonical: for every vertex the surviving base edges come
first (in base order), followed by the inserted edges (in insertion order),
and edges touching retired vertices are dropped.  :meth:`DeltaGraph.to_csr`
produces **exactly** the CSR that :func:`~repro.graph.builder.from_edge_list`
builds from that edge sequence, so sampling a mutated-then-compacted
``DeltaGraph`` is bit-identical to sampling a freshly built CSR holding the
same edges.  ``tests/integration/test_dynamic_bitcompat.py`` asserts this
for every registry algorithm.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["DeltaGraph", "as_csr"]

_VERTEX_DTYPE = np.int64
_WEIGHT_DTYPE = np.float64

#: Signature of the compaction hook: ``(new_base, touched_vertices)``.
CompactHook = Callable[[CSRGraph, np.ndarray], None]


def as_csr(graph) -> CSRGraph:
    """Coerce a :class:`CSRGraph` or :class:`DeltaGraph` to a plain CSR.

    Samplers call this at construction so a ``DeltaGraph`` can be handed
    anywhere a static graph is expected; the snapshot follows the canonical
    compaction order, so results are bit-identical to a fresh CSR build.
    """
    if isinstance(graph, CSRGraph):
        return graph
    if isinstance(graph, DeltaGraph):
        return graph.to_csr()
    raise TypeError(f"expected CSRGraph or DeltaGraph, got {type(graph).__name__}")


class DeltaGraph:
    """A CSR graph plus a bounded overlay of pending mutations.

    Parameters
    ----------
    base:
        The starting graph.  Never mutated; compaction replaces it.
    compaction_budget:
        Maximum number of pending overlay operations (tombstones + inserted
        edges + retirements) before a mutation triggers automatic
        compaction.  ``None`` disables auto-compaction ( :meth:`compact`
        can still be called explicitly).
    on_compact:
        Optional hook invoked after every compaction with the fresh base
        and the sorted array of vertices whose adjacency list changed.
    """

    def __init__(
        self,
        base: CSRGraph,
        *,
        compaction_budget: Optional[int] = None,
        on_compact: Optional[CompactHook] = None,
    ):
        if compaction_budget is not None and compaction_budget < 1:
            raise ValueError("compaction_budget must be >= 1 (or None)")
        self.compaction_budget = compaction_budget
        self.on_compact = on_compact
        #: Number of compactions applied so far (the graph's local version).
        self.version = 0
        self._reset(base)

    def _reset(self, base: CSRGraph) -> None:
        self._base = base
        self._num_vertices = base.num_vertices
        self._dead = np.zeros(base.num_edges, dtype=bool)
        self._num_dead = 0
        self._inserts: Dict[int, List[Tuple[int, Optional[float]]]] = {}
        self._num_inserted = 0
        self._retired: set = set()
        self._retired_cache: Optional[np.ndarray] = None
        #: Whether the *base* arrays may still hold edges into retired
        #: vertices (true between a retirement and the next compaction).
        self._retired_in_base = False
        self._touched: set = set()
        self._insert_weighted = False

    # ------------------------------------------------------------------ #
    # Basic properties (merged view)
    # ------------------------------------------------------------------ #
    @property
    def base(self) -> CSRGraph:
        """The current immutable CSR base (replaced by compaction)."""
        return self._base

    @property
    def num_vertices(self) -> int:
        """Vertex count including added (and retired) vertices."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of *live* edges in the merged view."""
        if not self._retired_in_base:
            return self._base.num_edges - self._num_dead + self._num_inserted
        hidden_base = int(np.count_nonzero(
            np.isin(self._base.col_idx, self._retired_array()) & ~self._dead
        ))
        return (self._base.num_edges - self._num_dead - hidden_base
                + self._num_inserted)

    @property
    def overlay_size(self) -> int:
        """Pending overlay operations (what the budget is compared against)."""
        return self._num_dead + self._num_inserted + len(self._retired)

    @property
    def is_weighted(self) -> bool:
        """Whether a compaction of the current state produces edge weights."""
        return self._base.is_weighted or self._insert_weighted

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint (base CSR plus overlay buffers)."""
        overlay = self._dead.nbytes + self._num_inserted * 24
        return self._base.nbytes + int(overlay)

    def is_retired(self, vertex: int) -> bool:
        """Whether ``vertex`` has been retired."""
        self._check_vertex(vertex)
        return vertex in self._retired

    # ------------------------------------------------------------------ #
    # Merged neighbor access
    # ------------------------------------------------------------------ #
    def degree(self, vertex: int) -> int:
        """Live out-degree of ``vertex`` through the merged view."""
        return int(self.neighbors(vertex).size)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Live neighbor list of ``vertex`` in canonical (compaction) order."""
        neighbors, _ = self._merged_row(vertex)
        return neighbors

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """Live edge weights of ``vertex``'s row (ones when unweighted)."""
        _, weights = self._merged_row(vertex)
        return weights

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether a live directed edge ``src -> dst`` exists."""
        self._check_vertex(dst)
        return bool(np.any(self.neighbors(src) == dst))

    def _retired_array(self) -> np.ndarray:
        """The retired set as a cached sorted array (rebuilt per retirement)."""
        if self._retired_cache is None:
            self._retired_cache = np.array(sorted(self._retired),
                                           dtype=_VERTEX_DTYPE)
        return self._retired_cache

    def _merged_row(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        self._check_vertex(vertex)
        if vertex in self._retired:
            empty = np.empty(0, dtype=_VERTEX_DTYPE)
            return empty, np.empty(0, dtype=_WEIGHT_DTYPE)
        parts_n: List[np.ndarray] = []
        parts_w: List[np.ndarray] = []
        if vertex < self._base.num_vertices:
            start, end = self._base.edge_range(vertex)
            keep = ~self._dead[start:end]
            base_n = self._base.col_idx[start:end][keep]
            base_w = self._base.neighbor_weights(vertex)[keep]
            if self._retired_in_base and base_n.size:
                live = ~np.isin(base_n, self._retired_array())
                base_n, base_w = base_n[live], base_w[live]
            parts_n.append(base_n)
            parts_w.append(base_w)
        ins = self._inserts.get(vertex)
        if ins:
            # Retirement sweeps inserts into retired vertices eagerly, so
            # every buffered pair here is live.
            parts_n.append(np.array([d for d, _ in ins], dtype=_VERTEX_DTYPE))
            parts_w.append(np.array(
                [1.0 if w is None else w for _, w in ins], dtype=_WEIGHT_DTYPE
            ))
        if not parts_n:
            return np.empty(0, dtype=_VERTEX_DTYPE), np.empty(0, dtype=_WEIGHT_DTYPE)
        return np.concatenate(parts_n), np.concatenate(parts_w)

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def add_vertices(self, count: int) -> int:
        """Append ``count`` fresh isolated vertices; returns the first new id."""
        if count < 1:
            raise ValueError("count must be >= 1")
        first = self._num_vertices
        self._num_vertices += int(count)
        return first

    def add_edge(self, src: int, dst: int, weight: Optional[float] = None) -> None:
        """Buffer one edge insertion (appended after existing edges of ``src``)."""
        self._check_vertex(src)
        self._check_vertex(dst)
        if src in self._retired or dst in self._retired:
            raise ValueError("cannot add an edge touching a retired vertex")
        if weight is not None:
            weight = float(weight)
            if not np.isfinite(weight) or weight < 0:
                raise ValueError("edge weights must be non-negative and finite")
            self._insert_weighted = True
        self._inserts.setdefault(src, []).append((int(dst), weight))
        self._num_inserted += 1
        self._touched.add(int(src))
        self._maybe_compact()

    def add_edges(
        self,
        edges: Sequence[Tuple[int, int]],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Buffer many edge insertions, in order."""
        edges = np.asarray(edges, dtype=_VERTEX_DTYPE).reshape(-1, 2)
        if weights is not None and len(weights) != edges.shape[0]:
            raise ValueError("weights must align with edges")
        for i, (src, dst) in enumerate(edges):
            self.add_edge(int(src), int(dst),
                          None if weights is None else float(weights[i]))

    def remove_edge(self, src: int, dst: int) -> None:
        """Remove the first live ``src -> dst`` edge in canonical order.

        Base edges precede inserted edges, so repeated removals of a
        parallel edge retire its copies oldest-first.  Raises ``KeyError``
        when no live matching edge exists.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        if dst in self._retired or src in self._retired:
            # Edges touching retired vertices are not live, whatever the
            # underlying arrays still hold.
            raise KeyError(f"no live edge {src} -> {dst}")
        if src < self._base.num_vertices:
            start, end = self._base.edge_range(src)
            for pos in range(start, end):
                if not self._dead[pos] and self._base.col_idx[pos] == dst:
                    self._dead[pos] = True
                    self._num_dead += 1
                    self._touched.add(int(src))
                    self._maybe_compact()
                    return
        ins = self._inserts.get(src, [])
        for i, (d, _) in enumerate(ins):
            if d == dst:
                del ins[i]
                self._num_inserted -= 1
                self._touched.add(int(src))
                return
        raise KeyError(f"no live edge {src} -> {dst}")

    def remove_edges(self, edges: Sequence[Tuple[int, int]]) -> None:
        """Remove many edges (each resolved independently, in order)."""
        for src, dst in np.asarray(edges, dtype=_VERTEX_DTYPE).reshape(-1, 2):
            self.remove_edge(int(src), int(dst))

    def retire_vertex(self, vertex: int) -> None:
        """Retire ``vertex``: its row empties and edges into it disappear.

        The vertex id stays valid (ids are never remapped) but both its
        out-edges and all in-edges are dropped from the merged view and from
        the next compaction.  Idempotent.
        """
        self._check_vertex(vertex)
        if vertex in self._retired:
            return
        self._retired.add(int(vertex))
        self._retired_cache = None
        if vertex < self._base.num_vertices:
            # Vertices added after the base cannot appear in base.col_idx,
            # so retiring them never hides base edges.
            self._retired_in_base = True
            start, end = self._base.edge_range(vertex)
            fresh = ~self._dead[start:end]
            self._num_dead += int(np.count_nonzero(fresh))
            self._dead[start:end] = True
        dropped = self._inserts.pop(vertex, None)
        if dropped:
            self._num_inserted -= len(dropped)
        # Sweep pending inserts *into* the vertex out of the overlay, so the
        # buffered-insert state never references a retired vertex (the base
        # arrays are the only place retired ids may linger until compaction).
        for src, ins in list(self._inserts.items()):
            kept = [(d, w) for d, w in ins if d != vertex]
            if len(kept) != len(ins):
                self._num_inserted -= len(ins) - len(kept)
                self._touched.add(int(src))
                if kept:
                    self._inserts[src] = kept
                else:
                    del self._inserts[src]
        self._touched.add(int(vertex))
        self._maybe_compact()

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def touched_vertices(self) -> np.ndarray:
        """Sorted vertices whose adjacency differs from the current base.

        Includes vertices with pending inserts/removals/retirements and the
        sources of base edges that point into retired vertices (their rows
        shrink at compaction even though they were never mutated directly).
        """
        touched = set(self._touched)
        if self._retired_in_base and self._base.num_edges:
            hits = np.nonzero(np.isin(self._base.col_idx, self._retired_array()))[0]
            if hits.size:
                srcs = np.searchsorted(self._base.row_ptr, hits, side="right") - 1
                touched.update(int(v) for v in np.unique(srcs))
        return np.array(sorted(touched), dtype=_VERTEX_DTYPE)

    def to_csr(self) -> CSRGraph:
        """Canonical CSR snapshot of the merged view (does not mutate).

        Per vertex: surviving base edges in base order, then inserted edges
        in insertion order; rows of retired vertices are empty and edges
        into retired vertices are dropped.  The arrays are exactly what
        :func:`~repro.graph.builder.from_edge_list` produces from the same
        edge sequence.

        When the overlay is empty the base *is* the canonical snapshot and
        is returned as-is, so repeated snapshots of an unmutated graph keep
        one identity -- which is what the compiled tier's per-graph
        structure cache (:mod:`repro.compiled.structures`) keys on.
        """
        if (
            self._num_dead == 0
            and self._num_inserted == 0
            and not self._retired_in_base
            and self._num_vertices == self._base.num_vertices
        ):
            return self._base
        base = self._base
        keep = ~self._dead
        base_src = np.repeat(
            np.arange(base.num_vertices, dtype=_VERTEX_DTYPE), base.degrees
        )[keep]
        base_dst = base.col_idx[keep]
        weighted = self.is_weighted
        if base.weights is not None:
            base_w = base.weights[keep]
        else:
            base_w = np.ones(base_dst.size, dtype=_WEIGHT_DTYPE)

        ins_src: List[int] = []
        ins_dst: List[int] = []
        ins_w: List[float] = []
        for src in sorted(self._inserts):
            for dst, w in self._inserts[src]:
                ins_src.append(src)
                ins_dst.append(dst)
                ins_w.append(1.0 if w is None else w)

        src_all = np.concatenate([base_src, np.array(ins_src, dtype=_VERTEX_DTYPE)])
        dst_all = np.concatenate([base_dst, np.array(ins_dst, dtype=_VERTEX_DTYPE)])
        w_all = np.concatenate([base_w, np.array(ins_w, dtype=_WEIGHT_DTYPE)])

        if self._retired_in_base and dst_all.size:
            live = ~np.isin(dst_all, self._retired_array())
            src_all, dst_all, w_all = src_all[live], dst_all[live], w_all[live]

        # Stable sort by source groups rows while preserving the canonical
        # per-vertex order -- the exact ordering from_edge_list applies.
        order = np.argsort(src_all, kind="stable")
        src_all, dst_all, w_all = src_all[order], dst_all[order], w_all[order]
        counts = np.bincount(src_all, minlength=self._num_vertices)
        row_ptr = np.zeros(self._num_vertices + 1, dtype=_VERTEX_DTYPE)
        np.cumsum(counts, out=row_ptr[1:])
        return CSRGraph(row_ptr, dst_all, w_all if weighted else None)

    def compact(self) -> np.ndarray:
        """Fold the overlay into a fresh base; returns the touched vertices.

        After compaction the overlay is empty, retired vertices stay retired
        as permanently empty rows, and ``version`` is incremented.  The
        ``on_compact`` hook (if any) receives the new base and the touched
        set so per-vertex sampling structures can be patched incrementally.
        """
        touched = self.touched_vertices()
        new_vertices = self._num_vertices - self._base.num_vertices
        if new_vertices:
            touched = np.union1d(
                touched,
                np.arange(self._base.num_vertices, self._num_vertices,
                          dtype=_VERTEX_DTYPE),
            )
        new_base = self.to_csr()
        retired = self._retired
        self._reset(new_base)
        self._retired = retired  # retirement is permanent across compactions
        self.version += 1
        if self.on_compact is not None:
            self.on_compact(new_base, touched)
        return touched

    def _maybe_compact(self) -> None:
        if (
            self.compaction_budget is not None
            and self.overlay_size > self.compaction_budget
        ):
            self.compact()

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"DeltaGraph(num_vertices={self.num_vertices}, "
            f"base_edges={self._base.num_edges}, overlay={self.overlay_size}, "
            f"retired={len(self._retired)}, version={self.version})"
        )

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= vertex < self._num_vertices):
            raise IndexError(
                f"vertex {vertex} out of range for graph with "
                f"{self._num_vertices} vertices"
            )
