"""Constructing :class:`~repro.graph.csr.CSRGraph` instances.

The builders accept edge lists (arrays or Python iterables) and
:mod:`networkx` graphs.  They canonicalise the input into the CSR layout the
sampling kernels expect: neighbor lists grouped by source vertex, optionally
deduplicated and symmetrised.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

try:  # networkx is a hard dependency of the project but keep the import local
    import networkx as nx
except ImportError:  # pragma: no cover - exercised only without networkx
    nx = None

from repro.graph.csr import CSRGraph

__all__ = ["from_edge_list", "from_networkx", "to_networkx"]

EdgeInput = Union[np.ndarray, Sequence[Tuple[int, int]], Iterable[Tuple[int, int]]]


def from_edge_list(
    edges: EdgeInput,
    num_vertices: Optional[int] = None,
    weights: Optional[Sequence[float]] = None,
    *,
    symmetrize: bool = False,
    dedup: bool = False,
    sort_neighbors: bool = False,
) -> CSRGraph:
    """Build a CSR graph from a ``(src, dst)`` edge list.

    Parameters
    ----------
    edges:
        Array-like of shape ``(num_edges, 2)``; rows are ``(src, dst)`` pairs.
    num_vertices:
        Total vertex count.  Defaults to ``max(vertex id) + 1``.
    weights:
        Optional per-edge weights aligned with ``edges``.
    symmetrize:
        When true, add the reverse of every edge (weights are mirrored).
    dedup:
        When true, drop duplicate ``(src, dst)`` pairs keeping the first
        occurrence.
    sort_neighbors:
        When true, sort every neighbor list by destination id.  Sampling does
        not require sorted lists but some tests and analytics do.
    """
    edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edge_array.size == 0:
        edge_array = edge_array.reshape(0, 2)
    edge_array = edge_array.astype(np.int64, copy=False)
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise ValueError("edges must be an array-like of (src, dst) pairs")
    if np.any(edge_array < 0):
        raise ValueError("vertex ids must be non-negative")

    weight_array: Optional[np.ndarray] = None
    if weights is not None:
        weight_array = np.asarray(weights, dtype=np.float64)
        if weight_array.shape[0] != edge_array.shape[0]:
            raise ValueError("weights must align with edges")

    if symmetrize and edge_array.shape[0]:
        reverse = edge_array[:, ::-1]
        edge_array = np.vstack([edge_array, reverse])
        if weight_array is not None:
            weight_array = np.concatenate([weight_array, weight_array])

    if dedup and edge_array.shape[0]:
        _, keep = np.unique(edge_array, axis=0, return_index=True)
        keep.sort()
        edge_array = edge_array[keep]
        if weight_array is not None:
            weight_array = weight_array[keep]

    if num_vertices is None:
        num_vertices = int(edge_array.max()) + 1 if edge_array.size else 0
    elif edge_array.size and int(edge_array.max()) >= num_vertices:
        raise ValueError("num_vertices too small for supplied edge list")

    if sort_neighbors and edge_array.shape[0]:
        order = np.lexsort((edge_array[:, 1], edge_array[:, 0]))
    else:
        order = np.argsort(edge_array[:, 0], kind="stable") if edge_array.shape[0] else np.array([], dtype=np.int64)

    edge_array = edge_array[order] if edge_array.shape[0] else edge_array
    if weight_array is not None and edge_array.shape[0]:
        weight_array = weight_array[order]

    counts = np.bincount(edge_array[:, 0], minlength=num_vertices) if num_vertices else np.array([], dtype=np.int64)
    row_ptr = np.zeros(num_vertices + 1, dtype=np.int64)
    if num_vertices:
        np.cumsum(counts, out=row_ptr[1:])
    col_idx = edge_array[:, 1].copy() if edge_array.shape[0] else np.array([], dtype=np.int64)
    return CSRGraph(row_ptr, col_idx, weight_array)


def from_networkx(graph: "nx.Graph", weight_attr: Optional[str] = None) -> CSRGraph:
    """Convert a networkx graph (directed or undirected) to CSR.

    Undirected graphs are symmetrised; node labels are mapped to contiguous
    integer ids in sorted order when possible, otherwise insertion order.
    """
    if nx is None:  # pragma: no cover
        raise RuntimeError("networkx is not available")
    nodes = list(graph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {node: i for i, node in enumerate(nodes)}
    edges = []
    weights = [] if weight_attr is not None else None
    directed = graph.is_directed()
    for u, v, data in graph.edges(data=True):
        edges.append((index[u], index[v]))
        if weights is not None:
            weights.append(float(data.get(weight_attr, 1.0)))
        if not directed:
            edges.append((index[v], index[u]))
            if weights is not None:
                weights.append(float(data.get(weight_attr, 1.0)))
    return from_edge_list(edges, num_vertices=len(nodes), weights=weights)


def to_networkx(graph: CSRGraph) -> "nx.DiGraph":
    """Convert a CSR graph back into a :class:`networkx.DiGraph`."""
    if nx is None:  # pragma: no cover
        raise RuntimeError("networkx is not available")
    out = nx.DiGraph()
    out.add_nodes_from(range(graph.num_vertices))
    if graph.is_weighted:
        for (src, dst), w in zip(graph.edge_array(), graph.weights):
            out.add_edge(int(src), int(dst), weight=float(w))
    else:
        out.add_edges_from((int(s), int(d)) for s, d in graph.edge_array())
    return out
