"""Contiguous vertex-range graph partitioning (Section V-A of the paper).

C-SAW partitions the graph by assigning a contiguous, roughly equal range of
vertices -- together with *all* their neighbor lists -- to each partition.
The paper argues for this scheme over METIS-style or 2-D partitioning
because:

1. sampling needs the complete neighbor list of a vertex to compute
   transition probabilities, so neighbor lists must never be split;
2. preprocessing must be cheap; and
3. mapping a vertex to its partition must be O(1), which a contiguous range
   gives via a single division/search.

Two balance policies are provided: equal vertex ranges (the paper's default)
and equal edge counts (ranges chosen so each partition holds roughly the same
number of edges), the latter being useful when degree skew would otherwise
make partition sizes wildly unequal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "VertexRangePartition",
    "PartitionSet",
    "partition_bounds",
    "partition_graph",
    "range_owners",
    "uniform_stride",
]


def uniform_stride(bounds: np.ndarray) -> Optional[int]:
    """The common range width when every partition is equally wide, else None.

    Equal-vertex partitioning of ``P | num_vertices`` graphs produces uniform
    bounds, for which the owner lookup is a single integer division -- the
    paper's O(1) vertex-to-partition mapping.  The division is only valid
    for zero-based bounds, so offset partitionings never get a stride.
    """
    bounds = np.asarray(bounds, dtype=np.int64)
    if bounds.size < 2 or bounds[0] != 0:
        return None
    widths = np.diff(bounds)
    if np.all(widths == widths[0]):
        return int(widths[0])
    return None


def range_owners(
    bounds: np.ndarray,
    vertices: Union[int, np.ndarray],
    *,
    stride: Optional[int] = None,
) -> np.ndarray:
    """Partition index owning each vertex, given range ``bounds`` alone.

    With ``stride`` (see :func:`uniform_stride`) the lookup is one integer
    division; otherwise a single ``searchsorted`` over the bounds.  No bounds
    checking is performed -- callers validate vertex ids where needed.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if stride:
        return vertices // stride
    return np.searchsorted(
        np.asarray(bounds, dtype=np.int64), vertices, side="right"
    ) - 1


@dataclass(frozen=True)
class VertexRangePartition:
    """One partition: vertices ``[lo, hi)`` and their full neighbor lists."""

    index: int
    lo: int
    hi: int
    subgraph: CSRGraph

    @property
    def num_vertices(self) -> int:
        """Number of vertices owned by this partition."""
        return self.hi - self.lo

    @property
    def num_edges(self) -> int:
        """Number of edges stored in this partition."""
        return self.subgraph.num_edges

    @property
    def nbytes(self) -> int:
        """Memory footprint of the partition's CSR slice in bytes."""
        return self.subgraph.nbytes

    def owns(self, vertex: int) -> bool:
        """Whether ``vertex`` belongs to this partition's range."""
        return self.lo <= vertex < self.hi

    def __repr__(self) -> str:
        return (
            f"VertexRangePartition(index={self.index}, range=[{self.lo}, {self.hi}), "
            f"edges={self.num_edges})"
        )


class PartitionSet:
    """A full partitioning of a graph into contiguous vertex ranges.

    Provides the O(1) vertex-to-partition lookup the workload-aware scheduler
    relies on, plus per-partition memory footprints for the device-capacity
    admission decisions.
    """

    def __init__(self, graph: CSRGraph, boundaries: Sequence[int]):
        bounds = np.asarray(boundaries, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2:
            raise ValueError("boundaries must contain at least [0, num_vertices]")
        if bounds[0] != 0 or bounds[-1] != graph.num_vertices:
            raise ValueError("boundaries must start at 0 and end at num_vertices")
        if np.any(np.diff(bounds) <= 0):
            raise ValueError("boundaries must be strictly increasing")
        self._graph = graph
        self._bounds = bounds
        self._stride = uniform_stride(bounds)
        self._partitions: List[VertexRangePartition] = [
            VertexRangePartition(
                index=i,
                lo=int(bounds[i]),
                hi=int(bounds[i + 1]),
                subgraph=graph.subgraph_by_vertex_range(int(bounds[i]), int(bounds[i + 1])),
            )
            for i in range(bounds.size - 1)
        ]

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRGraph:
        """The original (unsliced) graph."""
        return self._graph

    @property
    def boundaries(self) -> np.ndarray:
        """Partition boundaries, length ``num_partitions + 1``."""
        return self._bounds

    @property
    def num_partitions(self) -> int:
        """Number of partitions."""
        return len(self._partitions)

    def __len__(self) -> int:
        return self.num_partitions

    def __getitem__(self, index: int) -> VertexRangePartition:
        return self._partitions[index]

    def __iter__(self):
        return iter(self._partitions)

    # ------------------------------------------------------------------ #
    def owner(self, vertices: Union[int, np.ndarray]) -> np.ndarray:
        """Vectorised O(1) owner lookup for a scalar or array of vertex ids.

        Uniformly wide partitions (the equal-vertex default on divisible
        sizes) resolve with one integer division; otherwise a single
        ``searchsorted`` over the range bounds.  Out-of-range ids raise.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (
            vertices.min() < 0 or vertices.max() >= self._graph.num_vertices
        ):
            raise IndexError("vertex id out of range")
        return range_owners(self._bounds, vertices, stride=self._stride)

    def partition_of(self, vertex: int) -> int:
        """Partition index owning ``vertex`` (scalar :meth:`owner`)."""
        return int(self.owner(int(vertex)))

    def partition_of_many(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`partition_of` (alias of :meth:`owner`)."""
        return self.owner(vertices)

    def sizes_bytes(self) -> np.ndarray:
        """Memory footprint of each partition in bytes."""
        return np.array([p.nbytes for p in self._partitions], dtype=np.int64)

    def edge_counts(self) -> np.ndarray:
        """Edge count of each partition."""
        return np.array([p.num_edges for p in self._partitions], dtype=np.int64)


def partition_bounds(
    graph: CSRGraph,
    num_partitions: int,
    *,
    balance: str = "vertices",
) -> np.ndarray:
    """Range boundaries of a contiguous partitioning, without slicing CSRs.

    The sharded cluster ships these bounds to every shard for its owner
    lookups; :func:`partition_graph` materialises the per-partition CSR
    slices on top of them.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if graph.num_vertices == 0:
        raise ValueError("cannot partition an empty graph")
    if num_partitions > graph.num_vertices:
        raise ValueError("more partitions than vertices")

    if balance == "vertices":
        bounds = np.linspace(0, graph.num_vertices, num_partitions + 1).round().astype(np.int64)
    elif balance == "edges":
        targets = np.linspace(0, graph.num_edges, num_partitions + 1)
        bounds = np.searchsorted(graph.row_ptr, targets, side="left").astype(np.int64)
        bounds[0], bounds[-1] = 0, graph.num_vertices
    else:
        raise ValueError(f"unknown balance policy {balance!r}")

    # Ensure strict monotonicity (possible collapse for tiny graphs / heavy skew).
    for i in range(1, bounds.size):
        if bounds[i] <= bounds[i - 1]:
            bounds[i] = bounds[i - 1] + 1
    bounds = np.minimum(bounds, graph.num_vertices)
    if bounds[-1] != graph.num_vertices:
        bounds[-1] = graph.num_vertices
    # Collapse any trailing duplicates by re-spreading (rare; tiny graphs only).
    if np.any(np.diff(bounds) <= 0):
        bounds = np.unique(bounds)
        if bounds[0] != 0:
            bounds = np.insert(bounds, 0, 0)
        if bounds[-1] != graph.num_vertices:
            bounds = np.append(bounds, graph.num_vertices)
    return bounds


def partition_graph(
    graph: CSRGraph,
    num_partitions: int,
    *,
    balance: str = "vertices",
) -> PartitionSet:
    """Split ``graph`` into ``num_partitions`` contiguous vertex ranges.

    Parameters
    ----------
    graph:
        Graph to partition.
    num_partitions:
        Desired partition count; must not exceed the vertex count.
    balance:
        ``"vertices"`` (paper default) gives equal vertex ranges;
        ``"edges"`` picks range boundaries so each partition holds roughly the
        same number of edges.
    """
    return PartitionSet(graph, partition_bounds(graph, num_partitions, balance=balance))
