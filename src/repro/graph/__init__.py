"""Graph substrate for C-SAW.

This package provides the graph data structures and utilities every other
subsystem builds on:

* :class:`~repro.graph.csr.CSRGraph` -- the compressed-sparse-row adjacency
  structure used by the sampling kernels (the paper stores graphs in CSR and
  partitions them by contiguous vertex ranges).
* :class:`~repro.graph.delta.DeltaGraph` -- a mutable overlay buffering
  edge/vertex insertions and deletions over a CSR base, with budgeted
  canonical compaction (the dynamic-graph substrate; see ``docs/dynamic.md``).
* :mod:`~repro.graph.builder` -- constructing CSR graphs from edge lists or
  :mod:`networkx` graphs.
* :mod:`~repro.graph.generators` -- synthetic graph generators and the
  Table II dataset registry (scaled-down stand-ins for the SNAP/KONECT
  datasets the paper evaluates on).
* :mod:`~repro.graph.partition` -- contiguous vertex-range partitioning used
  for out-of-memory sampling (Section V-A of the paper).
* :mod:`~repro.graph.properties` -- degree statistics and other analytics.
* :mod:`~repro.graph.io` -- simple text/NPZ persistence.
"""

from repro.graph.csr import CSRGraph
from repro.graph.delta import DeltaGraph, as_csr
from repro.graph.builder import (
    from_edge_list,
    from_networkx,
    to_networkx,
)
from repro.graph.generators import (
    DatasetSpec,
    TABLE2_DATASETS,
    generate_dataset,
    rmat_graph,
    powerlaw_graph,
    erdos_renyi_graph,
    ring_graph,
    complete_graph,
    star_graph,
)
from repro.graph.partition import PartitionSet, VertexRangePartition, partition_graph
from repro.graph.properties import GraphStats, graph_stats
from repro.graph.io import save_npz, load_npz, save_edge_list, load_edge_list

__all__ = [
    "CSRGraph",
    "DeltaGraph",
    "as_csr",
    "from_edge_list",
    "from_networkx",
    "to_networkx",
    "DatasetSpec",
    "TABLE2_DATASETS",
    "generate_dataset",
    "rmat_graph",
    "powerlaw_graph",
    "erdos_renyi_graph",
    "ring_graph",
    "complete_graph",
    "star_graph",
    "PartitionSet",
    "VertexRangePartition",
    "partition_graph",
    "GraphStats",
    "graph_stats",
    "save_npz",
    "load_npz",
    "save_edge_list",
    "load_edge_list",
]
