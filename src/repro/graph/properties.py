"""Graph analytics used by tests, benchmarks and EXPERIMENTS.md tables.

These mirror the statistics the paper reports in Table II (vertex count, edge
count, average degree) plus skew measures that explain the per-dataset
behaviour of collision mitigation (Figures 10-12): heavy-tailed graphs suffer
more selection collisions, low-average-degree graphs benefit most from
bipartite region search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "graph_stats", "degree_histogram", "gini_coefficient"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (Table II style plus skew measures)."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    min_degree: int
    median_degree: float
    degree_std: float
    degree_gini: float
    isolated_vertices: int

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for table printing."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "avg_degree": self.avg_degree,
            "max_degree": self.max_degree,
            "min_degree": self.min_degree,
            "median_degree": self.median_degree,
            "degree_std": self.degree_std,
            "degree_gini": self.degree_gini,
            "isolated_vertices": self.isolated_vertices,
        }


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = uniform, ->1 = skewed)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return 0.0
    if np.any(values < 0):
        raise ValueError("Gini coefficient requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    n = values.size
    index = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * np.sum(index * values) / (n * total)) - (n + 1.0) / n)


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Histogram of out-degrees: ``hist[d]`` = number of vertices of degree d."""
    degrees = graph.degrees
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute :class:`GraphStats` for a graph."""
    degrees = graph.degrees.astype(np.float64)
    if degrees.size == 0:
        return GraphStats(0, 0, 0.0, 0, 0, 0.0, 0.0, 0.0, 0)
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        min_degree=int(degrees.min()),
        median_degree=float(np.median(degrees)),
        degree_std=float(degrees.std()),
        degree_gini=gini_coefficient(degrees),
        isolated_vertices=int(np.count_nonzero(degrees == 0)),
    )
