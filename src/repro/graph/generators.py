"""Synthetic graph generators and the Table II dataset registry.

The paper evaluates on ten SNAP/KONECT graphs (Table II).  Those datasets are
not redistributable inside this repository, so we substitute scaled-down
synthetic graphs whose *shape* matches what drives every experiment:

* the average degree (which controls collision rates in vertex selection and
  frontier growth in out-of-memory sampling), and
* the degree skew (scale-free graphs make repeated sampling suffer, which is
  exactly the effect Figures 10-12 measure).

Each Table II entry is registered as a :class:`DatasetSpec` with the paper's
vertex count, edge count and average degree, plus the scaled-down generator
parameters used by the benchmark harness.  ``generate_dataset("LJ")`` returns
a graph with roughly the LiveJournal average degree and a heavy-tailed degree
distribution at about 1/1000 of the original size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph

__all__ = [
    "DatasetSpec",
    "TABLE2_DATASETS",
    "generate_dataset",
    "rmat_graph",
    "powerlaw_graph",
    "erdos_renyi_graph",
    "ring_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
]


# --------------------------------------------------------------------------- #
# Elementary deterministic graphs (useful for unit tests)
# --------------------------------------------------------------------------- #
def ring_graph(num_vertices: int, *, bidirectional: bool = True) -> CSRGraph:
    """Cycle graph ``0 -> 1 -> ... -> n-1 -> 0`` (optionally bidirectional)."""
    if num_vertices < 1:
        raise ValueError("ring graph needs at least one vertex")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    edges = np.column_stack([src, dst])
    return from_edge_list(edges, num_vertices=num_vertices, symmetrize=bidirectional)


def complete_graph(num_vertices: int, *, self_loops: bool = False) -> CSRGraph:
    """Directed complete graph on ``num_vertices`` vertices."""
    if num_vertices < 1:
        raise ValueError("complete graph needs at least one vertex")
    src, dst = np.meshgrid(
        np.arange(num_vertices, dtype=np.int64),
        np.arange(num_vertices, dtype=np.int64),
        indexing="ij",
    )
    edges = np.column_stack([src.ravel(), dst.ravel()])
    if not self_loops:
        edges = edges[edges[:, 0] != edges[:, 1]]
    return from_edge_list(edges, num_vertices=num_vertices)


def star_graph(num_leaves: int, *, bidirectional: bool = True) -> CSRGraph:
    """Star graph with vertex 0 as hub and ``num_leaves`` leaves."""
    if num_leaves < 1:
        raise ValueError("star graph needs at least one leaf")
    hub = np.zeros(num_leaves, dtype=np.int64)
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    edges = np.column_stack([hub, leaves])
    return from_edge_list(edges, num_vertices=num_leaves + 1, symmetrize=bidirectional)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """Bidirectional 2-D grid graph of ``rows x cols`` vertices."""
    if rows < 1 or cols < 1:
        raise ValueError("grid graph needs positive dimensions")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    down = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    edges = np.vstack([right, down]) if right.size or down.size else np.empty((0, 2), dtype=np.int64)
    return from_edge_list(edges, num_vertices=rows * cols, symmetrize=True)


# --------------------------------------------------------------------------- #
# Random graph families
# --------------------------------------------------------------------------- #
def erdos_renyi_graph(
    num_vertices: int,
    avg_degree: float,
    *,
    seed: int = 0,
    symmetrize: bool = True,
) -> CSRGraph:
    """G(n, m)-style uniform random graph with a target average out-degree."""
    if num_vertices < 1:
        raise ValueError("graph needs at least one vertex")
    rng = np.random.default_rng(seed)
    num_edges = max(1, int(round(num_vertices * avg_degree / (2 if symmetrize else 1))))
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    mask = src != dst
    edges = np.column_stack([src[mask], dst[mask]])
    return from_edge_list(edges, num_vertices=num_vertices, symmetrize=symmetrize, dedup=True)


def powerlaw_graph(
    num_vertices: int,
    avg_degree: float,
    *,
    exponent: float = 2.1,
    seed: int = 0,
    symmetrize: bool = True,
) -> CSRGraph:
    """Scale-free random graph via a Chung-Lu style expected-degree model.

    Expected degrees follow a power law with the given exponent, rescaled so
    the realised average degree is close to ``avg_degree``.  The heavy tail is
    what makes repeated sampling expensive in the paper's Figures 10-11.
    """
    if num_vertices < 2:
        raise ValueError("power-law graph needs at least two vertices")
    if exponent <= 1.0:
        raise ValueError("power-law exponent must exceed 1")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    weights *= (avg_degree * num_vertices / (2.0 if symmetrize else 1.0)) / weights.sum()

    # Sample endpoints proportionally to the expected-degree weights.
    num_edges = max(1, int(round(num_vertices * avg_degree / (2 if symmetrize else 1))))
    prob = weights / weights.sum()
    src = rng.choice(num_vertices, size=num_edges, p=prob)
    dst = rng.choice(num_vertices, size=num_edges, p=prob)
    mask = src != dst
    edges = np.column_stack([src[mask], dst[mask]]).astype(np.int64)
    # Randomly permute labels so vertex id does not correlate with degree;
    # contiguous-range partitioning would otherwise get artificially skewed.
    perm = rng.permutation(num_vertices)
    edges = perm[edges]
    return from_edge_list(edges, num_vertices=num_vertices, symmetrize=symmetrize, dedup=True)


def rmat_graph(
    scale: int,
    edge_factor: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    symmetrize: bool = True,
) -> CSRGraph:
    """Recursive-matrix (R-MAT / Graph500 style) generator.

    ``2**scale`` vertices and about ``edge_factor * 2**scale`` undirected
    edges.  Default parameters follow the Graph500 specification and produce
    a skewed, community-structured graph similar to social networks.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("R-MAT probabilities must sum to at most 1")
    num_vertices = 1 << scale
    num_edges = max(1, int(round(edge_factor * num_vertices)))
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        # Quadrant thresholds: [a, a+b, a+b+c, 1]
        right = (r >= a) & (r < a + b)
        down = (r >= a + b) & (r < a + b + c)
        diag = r >= a + b + c
        bit = np.int64(1 << (scale - level - 1))
        dst += np.where(right | diag, bit, 0)
        src += np.where(down | diag, bit, 0)
    mask = src != dst
    edges = np.column_stack([src[mask], dst[mask]])
    perm = rng.permutation(num_vertices)
    edges = perm[edges]
    return from_edge_list(edges, num_vertices=num_vertices, symmetrize=symmetrize, dedup=True)


# --------------------------------------------------------------------------- #
# Table II dataset registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DatasetSpec:
    """A Table II dataset and the scaled-down synthetic stand-in we build.

    Attributes
    ----------
    abbr, name:
        Abbreviation and full dataset name from the paper.
    paper_vertices, paper_edges, paper_avg_degree:
        The statistics reported in Table II (vertices/edges in millions).
    family:
        Generator family for the stand-in: ``"powerlaw"``, ``"rmat"`` or
        ``"uniform"``.
    scaled_vertices:
        Vertex count of the generated stand-in graph.
    exponent:
        Power-law exponent (heavier tail = smaller exponent) used for
        ``"powerlaw"`` stand-ins.
    out_of_memory:
        Whether the paper treats the dataset as exceeding GPU memory
        (Friendster and Twitter).
    """

    abbr: str
    name: str
    paper_vertices: float
    paper_edges: float
    paper_avg_degree: float
    family: str
    scaled_vertices: int
    exponent: float = 2.1
    out_of_memory: bool = False


TABLE2_DATASETS: Dict[str, DatasetSpec] = {
    spec.abbr: spec
    for spec in [
        DatasetSpec("AM", "Amazon0601", 0.4e6, 3.4e6, 8.39, "powerlaw", 4000, 2.6),
        DatasetSpec("AS", "As-skitter", 1.7e6, 11.1e6, 6.54, "powerlaw", 6000, 2.3),
        DatasetSpec("CP", "cit-Patents", 3.8e6, 16.5e6, 4.38, "powerlaw", 8000, 2.6),
        DatasetSpec("LJ", "LiveJournal", 4.8e6, 68.9e6, 14.23, "powerlaw", 8000, 2.2),
        DatasetSpec("OR", "Orkut", 3.1e6, 117.2e6, 38.14, "powerlaw", 6000, 2.1),
        DatasetSpec("RE", "Reddit", 0.2e6, 11.6e6, 49.82, "powerlaw", 2000, 2.0),
        DatasetSpec("WG", "web-Google", 0.8e6, 5.1e6, 5.83, "powerlaw", 5000, 2.4),
        DatasetSpec("YE", "Yelp", 0.7e6, 6.9e6, 9.73, "powerlaw", 4000, 2.3),
        DatasetSpec("FR", "Friendster", 65.6e6, 1.8e9, 27.53, "rmat", 14000, 2.1, True),
        DatasetSpec("TW", "Twitter", 41.6e6, 1.5e9, 35.25, "rmat", 12000, 2.0, True),
    ]
}

# Graphs that fit "in memory" in the paper's Figures 10-12 (FR/TW excluded).
IN_MEMORY_DATASETS = [abbr for abbr, spec in TABLE2_DATASETS.items() if not spec.out_of_memory]
ALL_DATASETS = list(TABLE2_DATASETS)


def generate_dataset(
    abbr: str,
    *,
    seed: int = 0,
    scale_factor: float = 1.0,
    weighted: bool = False,
    weight_distribution: str = "uniform",
) -> CSRGraph:
    """Generate the scaled-down stand-in for a Table II dataset.

    Parameters
    ----------
    abbr:
        Dataset abbreviation, e.g. ``"LJ"`` or ``"TW"``.
    seed:
        Seed for the generator (all benchmarks use seeds derived from the
        experiment id so runs are reproducible).
    scale_factor:
        Multiplier on the registered stand-in vertex count; benchmark sweeps
        use this to shrink or enlarge workloads.
    weighted:
        When true, attach random edge weights so biased algorithms (node2vec,
        biased random walk, biased neighbor sampling) have non-trivial edge
        biases.
    weight_distribution:
        ``"uniform"`` draws weights in ``[0.1, 1.0]``; ``"heavy_tailed"``
        draws Pareto-distributed weights so a few edges dominate each
        neighbor pool's transition probability -- the regime where selection
        collisions are frequent and the paper's collision-mitigation
        optimisations matter most (Figures 10-12).
    """
    spec = TABLE2_DATASETS.get(abbr.upper())
    if spec is None:
        raise KeyError(f"unknown dataset abbreviation {abbr!r}; known: {sorted(TABLE2_DATASETS)}")
    num_vertices = max(16, int(spec.scaled_vertices * scale_factor))
    if spec.family == "powerlaw":
        graph = powerlaw_graph(
            num_vertices, spec.paper_avg_degree, exponent=spec.exponent, seed=seed
        )
    elif spec.family == "rmat":
        scale = max(4, int(np.ceil(np.log2(num_vertices))))
        graph = rmat_graph(scale, spec.paper_avg_degree / 2.0, seed=seed)
    elif spec.family == "uniform":
        graph = erdos_renyi_graph(num_vertices, spec.paper_avg_degree, seed=seed)
    else:  # pragma: no cover - registry is static
        raise ValueError(f"unknown generator family {spec.family!r}")
    if weighted:
        rng = np.random.default_rng(seed + 1)
        if weight_distribution == "uniform":
            weights = rng.uniform(0.1, 1.0, size=graph.num_edges)
        elif weight_distribution == "heavy_tailed":
            weights = rng.lognormal(mean=0.0, sigma=1.8, size=graph.num_edges) + 0.05
        else:
            raise ValueError(f"unknown weight_distribution {weight_distribution!r}")
        graph = graph.with_weights(weights)
    return graph
