"""Simple persistence for CSR graphs.

Two formats are supported:

* NPZ -- the CSR arrays saved via :func:`numpy.savez_compressed` (or
  uncompressed via ``save_npz(..., compressed=False)``); fast and lossless,
  used by the benchmark harness to cache generated datasets.  Uncompressed
  NPZ files can additionally be **memory-mapped** (``load_npz(...,
  mmap=True)``): the CSR arrays become read-only views into the page cache
  instead of heap copies, which is how the sampling service's store loads
  multi-gigabyte graphs without doubling their footprint.
* edge list -- whitespace-separated ``src dst [weight]`` text, compatible
  with the SNAP download format the paper's datasets ship in, so a user with
  access to the original data can drop it in directly.
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph

__all__ = ["save_npz", "load_npz", "save_edge_list", "load_edge_list"]

PathLike = Union[str, os.PathLike]


def save_npz(graph: CSRGraph, path: PathLike, *, compressed: bool = True) -> None:
    """Save a graph's CSR arrays to an NPZ file.

    ``compressed=False`` stores the members raw (ZIP_STORED), which makes
    the file memory-mappable via ``load_npz(path, mmap=True)``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {"row_ptr": graph.row_ptr, "col_idx": graph.col_idx}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    if compressed:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)


def load_npz(path: PathLike, *, mmap: bool = False) -> CSRGraph:
    """Load a graph previously saved with :func:`save_npz`.

    With ``mmap=True`` the CSR arrays are memory-mapped read-only views of
    the file instead of heap copies -- the OS pages data in on demand and
    shares it across processes.  This requires the NPZ members to be stored
    uncompressed (``save_npz(..., compressed=False)``); compressed files
    fall back to an ordinary copying load.
    """
    path = Path(path)
    if mmap:
        arrays = _mmap_npz_members(path)
        if arrays is not None:
            return CSRGraph(
                arrays["row_ptr"], arrays["col_idx"], arrays.get("weights")
            )
    with np.load(path) as data:
        weights = data["weights"] if "weights" in data.files else None
        return CSRGraph(data["row_ptr"], data["col_idx"], weights)


def _mmap_npz_members(path: Path) -> "Dict[str, np.ndarray] | None":
    """Memory-map every ``.npy`` member of an uncompressed NPZ archive.

    Returns ``None`` when any member is compressed (DEFLATE cannot be
    mapped).  An NPZ archive is a ZIP file; for a ZIP_STORED member the raw
    ``.npy`` bytes sit contiguously in the file, so after walking the local
    file header and the npy header the array data can be handed straight to
    :class:`numpy.memmap`.
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as fh:
        for info in archive.infolist():
            if not info.filename.endswith(".npy"):
                continue
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            # Local file header: 30 fixed bytes, then the (variable) file
            # name and extra field; the stored member data follows directly.
            fh.seek(info.header_offset + 26)
            name_len, extra_len = np.frombuffer(fh.read(4), dtype="<u2")
            data_offset = info.header_offset + 30 + int(name_len) + int(extra_len)
            fh.seek(data_offset)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            else:
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            if fortran or dtype.hasobject:
                return None
            arrays[info.filename[: -len(".npy")]] = np.memmap(
                path, dtype=dtype, mode="r", offset=fh.tell(), shape=shape
            )
    return arrays


def save_edge_list(graph: CSRGraph, path: PathLike, *, header: bool = True) -> None:
    """Write the graph as a ``src dst [weight]`` text edge list."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    edges = graph.edge_array()
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        if graph.weights is not None:
            for (src, dst), w in zip(edges, graph.weights):
                fh.write(f"{int(src)} {int(dst)} {float(w):.6g}\n")
        else:
            for src, dst in edges:
                fh.write(f"{int(src)} {int(dst)}\n")


def load_edge_list(path: PathLike, *, num_vertices: int | None = None) -> CSRGraph:
    """Load a SNAP-style text edge list (``#`` lines are comments)."""
    srcs, dsts, weights = [], [], []
    has_weights = False
    with open(Path(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) >= 3:
                has_weights = True
                weights.append(float(parts[2]))
            else:
                weights.append(1.0)
    edges = np.column_stack([srcs, dsts]) if srcs else np.empty((0, 2), dtype=np.int64)
    return from_edge_list(
        edges,
        num_vertices=num_vertices,
        weights=np.asarray(weights) if has_weights else None,
    )
