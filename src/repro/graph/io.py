"""Simple persistence for CSR graphs.

Two formats are supported:

* NPZ -- the CSR arrays saved via :func:`numpy.savez_compressed`; fast and
  lossless, used by the benchmark harness to cache generated datasets.
* edge list -- whitespace-separated ``src dst [weight]`` text, compatible
  with the SNAP download format the paper's datasets ship in, so a user with
  access to the original data can drop it in directly.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph

__all__ = ["save_npz", "load_npz", "save_edge_list", "load_edge_list"]

PathLike = Union[str, os.PathLike]


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save a graph's CSR arrays to a compressed NPZ file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {"row_ptr": graph.row_ptr, "col_idx": graph.col_idx}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(path, **arrays)


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph previously saved with :func:`save_npz`."""
    with np.load(Path(path)) as data:
        weights = data["weights"] if "weights" in data.files else None
        return CSRGraph(data["row_ptr"], data["col_idx"], weights)


def save_edge_list(graph: CSRGraph, path: PathLike, *, header: bool = True) -> None:
    """Write the graph as a ``src dst [weight]`` text edge list."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    edges = graph.edge_array()
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        if graph.weights is not None:
            for (src, dst), w in zip(edges, graph.weights):
                fh.write(f"{int(src)} {int(dst)} {float(w):.6g}\n")
        else:
            for src, dst in edges:
                fh.write(f"{int(src)} {int(dst)}\n")


def load_edge_list(path: PathLike, *, num_vertices: int | None = None) -> CSRGraph:
    """Load a SNAP-style text edge list (``#`` lines are comments)."""
    srcs, dsts, weights = [], [], []
    has_weights = False
    with open(Path(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) >= 3:
                has_weights = True
                weights.append(float(parts[2]))
            else:
                weights.append(1.0)
    edges = np.column_stack([srcs, dsts]) if srcs else np.empty((0, 2), dtype=np.int64)
    return from_edge_list(
        edges,
        num_vertices=num_vertices,
        weights=np.asarray(weights) if has_weights else None,
    )
