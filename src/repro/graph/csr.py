"""Compressed sparse row (CSR) graph representation.

The paper stores the input graph in CSR form: a ``row_ptr`` array of length
``|V| + 1`` and a ``col_idx`` array of length ``|E|`` holding the neighbor
lists back to back.  Sampling kernels need, for a frontier vertex ``v``, the
slice ``col_idx[row_ptr[v]:row_ptr[v+1]]`` (its neighbor pool) together with
the per-edge weights used by :func:`EdgeBias`.

The structure is immutable after construction; every array is validated and
stored in a canonical dtype so downstream kernels can rely on the layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph"]

_VERTEX_DTYPE = np.int64
_WEIGHT_DTYPE = np.float64


@dataclass(frozen=True)
class CSRGraph:
    """An immutable directed graph in compressed sparse row format.

    Parameters
    ----------
    row_ptr:
        ``int64`` array of shape ``(num_vertices + 1,)``.  ``row_ptr[v]`` is
        the offset of vertex ``v``'s neighbor list inside ``col_idx``.
    col_idx:
        ``int64`` array of shape ``(num_edges,)`` with the destination vertex
        of every edge, grouped by source vertex.
    weights:
        Optional ``float64`` array of shape ``(num_edges,)`` with per-edge
        weights.  When omitted every edge has weight ``1.0``.

    Notes
    -----
    Vertices are integers ``0 .. num_vertices - 1``.  Self loops and parallel
    edges are allowed (several sampling algorithms produce or tolerate them);
    neighbor lists are kept in construction order.
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    weights: Optional[np.ndarray] = None
    _degrees: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        row_ptr = np.ascontiguousarray(self.row_ptr, dtype=_VERTEX_DTYPE)
        col_idx = np.ascontiguousarray(self.col_idx, dtype=_VERTEX_DTYPE)
        if row_ptr.ndim != 1 or row_ptr.size < 1:
            raise ValueError("row_ptr must be a 1-D array with at least one entry")
        if col_idx.ndim != 1:
            raise ValueError("col_idx must be a 1-D array")
        if row_ptr[0] != 0:
            raise ValueError("row_ptr[0] must be 0")
        if row_ptr[-1] != col_idx.size:
            raise ValueError(
                f"row_ptr[-1] ({int(row_ptr[-1])}) must equal the number of edges "
                f"({col_idx.size})"
            )
        if np.any(np.diff(row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        num_vertices = row_ptr.size - 1
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= num_vertices):
            raise ValueError("col_idx contains vertex ids outside [0, num_vertices)")

        weights = self.weights
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=_WEIGHT_DTYPE)
            if weights.shape != col_idx.shape:
                raise ValueError("weights must have one entry per edge")
            if np.any(weights < 0):
                raise ValueError("edge weights must be non-negative")
            if not np.all(np.isfinite(weights)):
                raise ValueError("edge weights must be finite")

        object.__setattr__(self, "row_ptr", row_ptr)
        object.__setattr__(self, "col_idx", col_idx)
        object.__setattr__(self, "weights", weights)
        object.__setattr__(self, "_degrees", np.diff(row_ptr))
        self.row_ptr.setflags(write=False)
        self.col_idx.setflags(write=False)
        if self.weights is not None:
            self.weights.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return int(self.row_ptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the graph."""
        return int(self.col_idx.size)

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an ``int64`` array."""
        return self._degrees

    @property
    def average_degree(self) -> float:
        """Mean out-degree; 0.0 for an empty graph."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    @property
    def is_weighted(self) -> bool:
        """Whether explicit per-edge weights were supplied."""
        return self.weights is not None

    @property
    def nbytes(self) -> int:
        """Total memory footprint of the CSR arrays in bytes.

        This is the quantity the out-of-memory scheduler compares against the
        simulated device memory capacity.
        """
        total = self.row_ptr.nbytes + self.col_idx.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return int(total)

    # ------------------------------------------------------------------ #
    # Neighbor access
    # ------------------------------------------------------------------ #
    def degree(self, vertex: int) -> int:
        """Out-degree of a single vertex."""
        self._check_vertex(vertex)
        return int(self._degrees[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbor list of ``vertex`` as a read-only view."""
        self._check_vertex(vertex)
        start, end = self.row_ptr[vertex], self.row_ptr[vertex + 1]
        return self.col_idx[start:end]

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """Edge weights of ``vertex``'s neighbor list (ones when unweighted)."""
        self._check_vertex(vertex)
        start, end = self.row_ptr[vertex], self.row_ptr[vertex + 1]
        if self.weights is None:
            return np.ones(int(end - start), dtype=_WEIGHT_DTYPE)
        return self.weights[start:end]

    def edge_range(self, vertex: int) -> Tuple[int, int]:
        """``(start, end)`` offsets of ``vertex``'s neighbor list in ``col_idx``."""
        self._check_vertex(vertex)
        return int(self.row_ptr[vertex]), int(self.row_ptr[vertex + 1])

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether a directed edge ``src -> dst`` exists."""
        return bool(np.any(self.neighbors(src) == dst))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all directed edges as ``(src, dst)`` pairs."""
        for v in range(self.num_vertices):
            start, end = self.row_ptr[v], self.row_ptr[v + 1]
            for u in self.col_idx[start:end]:
                yield int(v), int(u)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(num_edges, 2)`` array of ``(src, dst)`` pairs."""
        src = np.repeat(np.arange(self.num_vertices, dtype=_VERTEX_DTYPE), self._degrees)
        return np.column_stack([src, self.col_idx])

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def with_weights(self, weights: Sequence[float]) -> "CSRGraph":
        """Return a copy of this graph with the given per-edge weights."""
        return CSRGraph(self.row_ptr.copy(), self.col_idx.copy(), np.asarray(weights))

    def reverse(self) -> "CSRGraph":
        """Return the graph with every edge direction flipped."""
        edges = self.edge_array()
        order = np.argsort(edges[:, 1], kind="stable")
        rev_src = edges[order, 1]
        rev_dst = edges[order, 0]
        counts = np.bincount(rev_src, minlength=self.num_vertices)
        row_ptr = np.zeros(self.num_vertices + 1, dtype=_VERTEX_DTYPE)
        np.cumsum(counts, out=row_ptr[1:])
        weights = None
        if self.weights is not None:
            weights = self.weights[order]
        return CSRGraph(row_ptr, rev_dst, weights)

    def subgraph_by_vertex_range(self, lo: int, hi: int) -> "CSRGraph":
        """CSR slice holding only the adjacency lists of vertices ``[lo, hi)``.

        Vertex ids are *not* remapped: the slice keeps global destination ids
        so a partition can insert sampled vertices into other partitions'
        frontier queues, exactly as the paper's out-of-memory design requires.
        The returned graph still has ``num_vertices`` rows; rows outside the
        range are empty.
        """
        if not (0 <= lo <= hi <= self.num_vertices):
            raise ValueError(f"invalid vertex range [{lo}, {hi})")
        row_ptr = np.zeros(self.num_vertices + 1, dtype=_VERTEX_DTYPE)
        local_counts = self._degrees[lo:hi]
        row_ptr[lo + 1 : hi + 1] = np.cumsum(local_counts)
        row_ptr[hi + 1 :] = row_ptr[hi]
        start, end = self.row_ptr[lo], self.row_ptr[hi]
        col_idx = self.col_idx[start:end].copy()
        weights = None
        if self.weights is not None:
            weights = self.weights[start:end].copy()
        return CSRGraph(row_ptr, col_idx, weights)

    # ------------------------------------------------------------------ #
    # Dunder helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if not (
            np.array_equal(self.row_ptr, other.row_ptr)
            and np.array_equal(self.col_idx, other.col_idx)
        ):
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None:
            return bool(np.allclose(self.weights, other.weights))
        return True

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges}, "
            f"{kind})"
        )

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= vertex < self.num_vertices):
            raise IndexError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )
