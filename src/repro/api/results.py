"""Sampling results: per-instance samples plus cost and kernel records.

The benchmarks need three things from a finished run: the sampled edges (to
compute SEPS and to hand to downstream consumers such as GNN training), the
operation counters (iterations, probes, conflicts, transfers -- the raw
material of Figures 11, 12, 14 and 15), and the per-kernel launches so the
simulated kernel time can be computed under any device spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api.instance import InstanceState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec, V100_SPEC
from repro.gpusim.kernel import KernelLaunch
from repro.graph.builder import from_edge_list
from repro.graph.csr import CSRGraph

__all__ = ["InstanceSample", "SampleResult", "concat_sample_edges"]


def concat_sample_edges(samples: List["InstanceSample"]) -> np.ndarray:
    """All samples' edges concatenated into one ``(n, 2)`` array."""
    parts = [s.edges for s in samples if s.num_edges]
    if not parts:
        return np.empty((0, 2), dtype=np.int64)
    return np.vstack(parts)


@dataclass(frozen=True)
class InstanceSample:
    """The sample produced by one instance: its seeds and sampled edges."""

    instance_id: int
    seeds: np.ndarray
    edges: np.ndarray

    @property
    def num_edges(self) -> int:
        """Number of sampled edges."""
        return int(self.edges.shape[0])

    def vertices(self) -> np.ndarray:
        """Distinct vertices touched by this instance."""
        return np.unique(np.concatenate([self.seeds, self.edges.ravel()])) if self.num_edges else np.unique(self.seeds)

    def to_subgraph(self, num_vertices: int) -> CSRGraph:
        """The sampled edges as a CSR graph over the original vertex ids."""
        return from_edge_list(self.edges, num_vertices=num_vertices)


@dataclass
class SampleResult:
    """Aggregate result of a sampling run."""

    samples: List[InstanceSample]
    cost: CostModel
    kernels: List[KernelLaunch] = field(default_factory=list)
    #: Per-selection do-while iteration counts (Fig. 11 metric).
    iteration_counts: List[int] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        """Number of sampling instances."""
        return len(self.samples)

    @property
    def total_sampled_edges(self) -> int:
        """Total sampled edges across instances (SEPS numerator)."""
        return int(sum(s.num_edges for s in self.samples))

    def edges_per_instance(self) -> np.ndarray:
        """Sampled edge count of each instance."""
        return np.array([s.num_edges for s in self.samples], dtype=np.int64)

    def all_edges(self) -> np.ndarray:
        """All sampled edges concatenated into one ``(n, 2)`` array."""
        return concat_sample_edges(self.samples)

    def slice_instances(
        self,
        start: int,
        stop: int,
        *,
        iteration_counts: Optional[List[int]] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "SampleResult":
        """Result restricted to the instance range ``[start, stop)``.

        The sampling service runs many requests as one fused batch and
        demultiplexes per-request results by instance range.  Samples are
        shared (not copied); cost and kernel records stay those of the whole
        batch -- pass ``iteration_counts`` to substitute the range's own
        counts and ``metadata`` to extend the batch metadata.
        """
        if not (0 <= start <= stop <= len(self.samples)):
            raise ValueError(
                f"invalid instance range [{start}, {stop}) for "
                f"{len(self.samples)} instances"
            )
        merged = dict(self.metadata)
        if metadata:
            merged.update(metadata)
        return SampleResult(
            samples=self.samples[start:stop],
            cost=self.cost.copy(),
            kernels=list(self.kernels),
            iteration_counts=(
                list(self.iteration_counts)
                if iteration_counts is None
                else list(iteration_counts)
            ),
            metadata=merged,
        )

    # ------------------------------------------------------------------ #
    def kernel_time(self, spec: DeviceSpec = V100_SPEC) -> float:
        """Total simulated kernel time (the paper's SEPS denominator)."""
        if self.kernels:
            return float(sum(k.duration(spec) for k in self.kernels))
        return float(self.cost.simulated_time(spec))

    def seps(self, spec: DeviceSpec = V100_SPEC) -> float:
        """Sampled edges per simulated second."""
        time = self.kernel_time(spec)
        if time <= 0:
            return float("inf") if self.total_sampled_edges else 0.0
        return self.total_sampled_edges / time

    def mean_iterations(self) -> float:
        """Average do-while iterations per selected vertex (Fig. 11)."""
        if not self.iteration_counts:
            return 0.0
        return float(np.mean(self.iteration_counts))

    def summary(self, spec: DeviceSpec = V100_SPEC) -> Dict[str, float]:
        """Flat summary dictionary used by the benchmark harness."""
        return {
            "instances": self.num_instances,
            "sampled_edges": self.total_sampled_edges,
            "kernel_time_s": self.kernel_time(spec),
            "seps": self.seps(spec),
            "mean_iterations": self.mean_iterations(),
            "collision_probes": self.cost.collision_probes,
            "selection_collisions": self.cost.selection_collisions,
            "atomic_conflicts": self.cost.atomic_conflicts,
            "partition_transfers": self.cost.partition_transfers,
            **{f"meta_{k}": v for k, v in self.metadata.items() if isinstance(v, (int, float))},
        }

    @staticmethod
    def from_instances(
        instances: List[InstanceState],
        cost: CostModel,
        *,
        kernels: Optional[List[KernelLaunch]] = None,
        iteration_counts: Optional[List[int]] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "SampleResult":
        """Build a result from finished instance states."""
        samples = [
            InstanceSample(
                instance_id=inst.instance_id,
                seeds=np.asarray(inst.seeds, dtype=np.int64),
                edges=inst.sampled_edges(),
            )
            for inst in instances
        ]
        return SampleResult(
            samples=samples,
            cost=cost,
            kernels=kernels or [],
            iteration_counts=iteration_counts or [],
            metadata=metadata or {},
        )
