"""Parameter-based configuration of a sampling run.

The paper splits user involvement into *parameter-based* options (simple
knobs such as ``FrontierSize`` and ``NeighborSize``) and *API-based* options
(the bias functions).  :class:`SamplingConfig` holds the former plus the
framework-level switches evaluated in Section VI (collision strategy,
collision detector, per-vertex vs per-layer selection).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Union

from repro.selection.collision import CollisionStrategy

__all__ = ["SelectionScope", "PoolPolicy", "SamplingConfig"]


class SelectionScope(str, enum.Enum):
    """Whether NeighborSize applies per frontier vertex or per layer.

    Neighbor / forest-fire sampling select ``NeighborSize`` neighbors for each
    frontier vertex independently (``PER_VERTEX``); layer sampling selects
    ``NeighborSize`` neighbors from the union of all frontier vertices'
    neighbors (``PER_LAYER``), as described in Section II-A.
    """

    PER_VERTEX = "per_vertex"
    PER_LAYER = "per_layer"


class PoolPolicy(str, enum.Enum):
    """How the frontier pool evolves between iterations.

    ``NEXT_LAYER``
        The pool of iteration ``t+1`` is exactly the vertices ``UPDATE``
        returned at iteration ``t`` (BFS-style traversal sampling and
        ordinary random walks).
    ``REPLACE_SELECTED``
        The selected frontier vertices are removed from the pool and the
        vertices returned by ``UPDATE`` are inserted, keeping the pool size
        constant (multi-dimensional random walk, Fig. 4).
    """

    NEXT_LAYER = "next_layer"
    REPLACE_SELECTED = "replace_selected"


@dataclass(frozen=True)
class SamplingConfig:
    """Parameters of one sampling / random-walk job.

    Attributes
    ----------
    frontier_size:
        Number of vertices selected from the frontier pool each iteration
        (line 4 of Fig. 2(b)).  ``0`` means "use the whole pool".
    neighbor_size:
        Number of neighbors selected per frontier vertex (or per layer, see
        ``scope``); line 6 of Fig. 2(b).
    depth:
        Number of MAIN-loop iterations (walk length for random walks).
    with_replacement:
        Random walks allow repeated vertices (True); traversal sampling does
        not (False).
    scope:
        Per-vertex or per-layer neighbor selection.
    pool_policy:
        Frontier-pool evolution policy.
    strategy:
        Collision-mitigation strategy used when selecting without
        replacement.
    detector:
        Collision detector: ``"linear"``, ``"bitmap"`` or ``"strided_bitmap"``.
    seed:
        Base seed of the counter RNG; every instance derives its own streams.
    track_visited:
        Maintain a per-instance visited set so ``update`` hooks can filter
        previously sampled vertices (traversal sampling).
    """

    frontier_size: int = 1
    neighbor_size: int = 1
    depth: int = 2
    with_replacement: bool = False
    scope: SelectionScope = SelectionScope.PER_VERTEX
    pool_policy: PoolPolicy = PoolPolicy.NEXT_LAYER
    strategy: Union[str, CollisionStrategy] = CollisionStrategy.BIPARTITE
    detector: str = "strided_bitmap"
    seed: int = 0
    track_visited: bool = True

    def __post_init__(self) -> None:
        if self.frontier_size < 0:
            raise ValueError("frontier_size must be >= 0 (0 means whole pool)")
        if self.neighbor_size < 1:
            raise ValueError("neighbor_size must be >= 1")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        object.__setattr__(self, "scope", SelectionScope(self.scope))
        object.__setattr__(self, "pool_policy", PoolPolicy(self.pool_policy))
        object.__setattr__(self, "strategy", CollisionStrategy.coerce(self.strategy))
        if self.detector not in ("linear", "bitmap", "strided_bitmap"):
            raise ValueError(f"unknown detector {self.detector!r}")

    def replace(self, **overrides) -> "SamplingConfig":
        """Copy of this config with selected fields overridden."""
        return replace(self, **overrides)
