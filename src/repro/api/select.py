"""Warp-centric SELECT and neighbor gathering (Section IV-A).

``warp_select`` is the GPU-side SELECT primitive of Fig. 5: build the CTPS of
the candidate biases with a warp-level Kogge-Stone scan, then dedicate one
lane per requested selection, resolving collisions with the configured
strategy and detector.  ``gather_neighbors`` is GATHERNEIGHBORS: it fetches a
frontier vertex's adjacency slice and charges the corresponding global-memory
traffic.

``batch_walk_step`` is a vectorised fast path for random-walk workloads
(NeighborSize = 1, sampling with replacement): it advances *every* active
walker by one step with a handful of NumPy operations while charging the same
per-walker costs the warp-accurate path would.  The SEPS benchmarks
(Figures 9, 16, 17) use it so that simulating tens of thousands of walker
steps stays fast on the host.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.api.bias import EdgePool
from repro.api.instance import InstanceState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.gpusim.warp import WarpExecutor
from repro.graph.csr import CSRGraph
from repro.selection.collision import (
    CollisionStrategy,
    SelectionResult,
    select_without_replacement,
)
from repro.selection.its import sample_with_replacement

__all__ = ["gather_neighbors", "warp_select", "batch_walk_step"]


def gather_neighbors(
    graph: CSRGraph,
    vertex: int,
    instance: InstanceState,
    cost: Optional[CostModel] = None,
) -> EdgePool:
    """GATHERNEIGHBORS: fetch a frontier vertex's neighbor pool.

    Charges the CSR row read (neighbor ids and weights) to the cost model.
    """
    neighbors = graph.neighbors(vertex)
    weights = graph.neighbor_weights(vertex)
    if cost is not None:
        cost.charge_global_bytes(neighbors.nbytes + weights.nbytes + 16)
    return EdgePool(src=int(vertex), neighbors=neighbors, weights=weights,
                    instance=instance, graph=graph)


def warp_select(
    biases: np.ndarray,
    count: int,
    warp: WarpExecutor,
    *coords: int,
    with_replacement: bool = False,
    strategy: Union[str, CollisionStrategy] = CollisionStrategy.BIPARTITE,
    detector: str = "strided_bitmap",
) -> SelectionResult:
    """Warp-centric SELECT over a candidate pool.

    Parameters mirror :func:`repro.selection.collision.select_without_replacement`;
    with ``with_replacement=True`` the collision machinery is bypassed (random
    walk semantics) and every selection takes exactly one iteration.
    """
    biases = np.asarray(biases, dtype=np.float64)
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return SelectionResult(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0, 0)

    if with_replacement:
        indices = sample_with_replacement(biases, count, warp.rng,
                                          *(list(coords) + [warp.warp_id]), cost=warp.cost)
        warp.charge_step(1, active_lanes=min(count, warp.warp_size))
        return SelectionResult(
            indices=indices,
            iterations=np.ones(count, dtype=np.int64),
            probes=0,
            collisions=0,
        )

    result = select_without_replacement(
        biases,
        count,
        warp.rng,
        *(list(coords) + [warp.warp_id]),
        strategy=strategy,
        detector=detector,
        cost=warp.cost,
    )
    warp.charge_divergent_loop(result.iterations)
    return result


def batch_walk_step(
    graph: CSRGraph,
    current: np.ndarray,
    rng: CounterRNG,
    step: int,
    *,
    edge_bias: str = "uniform",
    cost: Optional[CostModel] = None,
    active: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance every walker by one step (vectorised random-walk fast path).

    Parameters
    ----------
    graph:
        The graph being walked.
    current:
        Current vertex of every walker, shape ``(num_walkers,)``.
    rng, step:
        Counter RNG and the step index (walkers use their array position as
        the lane coordinate).
    edge_bias:
        ``"uniform"`` for unweighted transition probabilities or ``"weight"``
        to bias by edge weight (the graph must be weighted).
    cost:
        Cost model charged with per-walker CTPS build + search work.
    active:
        Optional boolean mask of walkers to advance; inactive walkers keep
        their vertex.

    Returns
    -------
    (next_vertices, moved):
        The next vertex of every walker and a boolean mask of walkers that
        actually moved (walkers on zero-degree vertices stay put).
    """
    if edge_bias not in ("uniform", "weight"):
        raise ValueError(f"unknown edge_bias {edge_bias!r}")
    current = np.asarray(current, dtype=np.int64)
    num_walkers = current.size
    if active is None:
        active = np.ones(num_walkers, dtype=bool)
    active = np.asarray(active, dtype=bool)
    next_vertices = current.copy()
    moved = np.zeros(num_walkers, dtype=bool)
    if num_walkers == 0 or not active.any():
        return next_vertices, moved

    degrees = graph.degrees[current]
    movable = active & (degrees > 0)
    if not movable.any():
        return next_vertices, moved

    idx = np.nonzero(movable)[0]
    starts = graph.row_ptr[current[idx]]
    degs = degrees[idx]
    rs = np.atleast_1d(rng.uniform(idx.astype(np.int64), np.int64(step)))

    if edge_bias == "uniform" or graph.weights is None:
        offsets = np.minimum((rs * degs).astype(np.int64), degs - 1)
        chosen = graph.col_idx[starts + offsets]
    elif edge_bias == "weight":
        # Segment-local inverse transform sampling on the global weight
        # cumsum: target = cumsum[start-1] + r * row_total.
        cumsum = _edge_weight_cumsum(graph)
        lo = np.where(starts > 0, cumsum[starts - 1], 0.0)
        hi = cumsum[starts + degs - 1]
        targets = lo + rs * (hi - lo)
        pos = np.searchsorted(cumsum, targets, side="right")
        pos = np.minimum(pos, starts + degs - 1)
        pos = np.maximum(pos, starts)
        chosen = graph.col_idx[pos]

    next_vertices[idx] = chosen
    moved[idx] = True

    if cost is not None:
        # Per walker: CSR row gather, CTPS build over its degree, one RNG
        # draw, one binary search; charged in aggregate.
        cost.rng_draws += int(idx.size)
        cost.selection_attempts += int(idx.size)
        cost.charge_global_bytes(int(np.sum(degs) * 8) + int(idx.size) * 16)
        log_degs = np.ceil(np.log2(np.maximum(degs, 2)))
        cost.binary_search_steps += int(log_degs.sum())
        cost.prefix_sum_steps += int((log_degs * degs).sum()) if edge_bias == "weight" else int(degs.sum())
        cost.charge_warp_step(int(idx.size), active_lanes=1)
        cost.sampled_edges += int(idx.size)
    return next_vertices, moved


_CUMSUM_CACHE: dict[int, np.ndarray] = {}


def _edge_weight_cumsum(graph: CSRGraph) -> np.ndarray:
    """Cached cumulative sum of the graph's edge weights (static biases)."""
    key = id(graph)
    cached = _CUMSUM_CACHE.get(key)
    if cached is None or cached.size != graph.num_edges:
        weights = graph.weights if graph.weights is not None else np.ones(graph.num_edges)
        cached = np.cumsum(weights)
        _CUMSUM_CACHE[key] = cached
    return cached
