"""Frontier queues: the (VertexID, InstanceID, CurrDepth) structure.

Section IV-B describes the frontier queue as a structure of three arrays --
``VertexID``, ``InstanceID`` and ``CurrDepth`` -- that tracks the sampling
process.  In-memory sampling uses one queue; out-of-memory sampling keeps one
queue *per partition* so a partition can insert newly sampled vertices into
the queues of other partitions (Section V-B), and batched multi-instance
sampling mixes entries from many instances in the same queue (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

import numpy as np

__all__ = ["FrontierEntry", "FrontierQueue"]


@dataclass(frozen=True)
class FrontierEntry:
    """One queue entry: a vertex to expand for a given instance at a given depth."""

    vertex: int
    instance: int
    depth: int


class FrontierQueue:
    """FIFO queue of frontier entries stored as parallel arrays."""

    def __init__(self, entries: Iterable[FrontierEntry] = ()):
        self._vertices: List[int] = []
        self._instances: List[int] = []
        self._depths: List[int] = []
        for entry in entries:
            self.push(entry.vertex, entry.instance, entry.depth)

    # ------------------------------------------------------------------ #
    def push(self, vertex: int, instance: int, depth: int) -> None:
        """Append one entry."""
        self._vertices.append(int(vertex))
        self._instances.append(int(instance))
        self._depths.append(int(depth))

    def push_many(self, vertices: np.ndarray, instance: int, depth: int) -> None:
        """Append several vertices of the same instance and depth."""
        vertices = np.asarray(vertices, dtype=np.int64).reshape(-1)
        self.push_batch(
            vertices,
            np.full(vertices.size, int(instance), dtype=np.int64),
            np.full(vertices.size, int(depth), dtype=np.int64),
        )

    def push_batch(
        self, vertices: np.ndarray, instances: np.ndarray, depths: np.ndarray
    ) -> None:
        """Append whole entry arrays at once (the engine's fully-array path).

        ``instances`` and ``depths`` may be scalars or arrays broadcastable
        to ``vertices``; entries keep the order of ``vertices``.
        """
        vertices = np.asarray(vertices, dtype=np.int64).reshape(-1)
        instances = np.broadcast_to(
            np.asarray(instances, dtype=np.int64), vertices.shape
        )
        depths = np.broadcast_to(np.asarray(depths, dtype=np.int64), vertices.shape)
        self._vertices.extend(vertices.tolist())
        self._instances.extend(instances.tolist())
        self._depths.extend(depths.tolist())

    def extend(self, other: "FrontierQueue") -> None:
        """Append every entry of another queue."""
        self._vertices.extend(other._vertices)
        self._instances.extend(other._instances)
        self._depths.extend(other._depths)

    def pop_all(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Remove and return all entries as (vertices, instances, depths) arrays."""
        out = self.as_arrays()
        self.clear()
        return out

    def drain(self, max_entries: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Remove and return up to ``max_entries`` oldest entries."""
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        n = min(max_entries, len(self))
        vertices = np.asarray(self._vertices[:n], dtype=np.int64)
        instances = np.asarray(self._instances[:n], dtype=np.int64)
        depths = np.asarray(self._depths[:n], dtype=np.int64)
        del self._vertices[:n], self._instances[:n], self._depths[:n]
        return vertices, instances, depths

    def clear(self) -> None:
        """Remove every entry."""
        self._vertices.clear()
        self._instances.clear()
        self._depths.clear()

    # ------------------------------------------------------------------ #
    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copy of the queue contents as (vertices, instances, depths) arrays."""
        return (
            np.asarray(self._vertices, dtype=np.int64),
            np.asarray(self._instances, dtype=np.int64),
            np.asarray(self._depths, dtype=np.int64),
        )

    def nbytes(self) -> int:
        """Approximate memory footprint of the queue (three int64 per entry)."""
        return len(self) * 3 * 8

    def instances_present(self) -> np.ndarray:
        """Distinct instance ids that currently have entries in the queue."""
        return np.unique(np.asarray(self._instances, dtype=np.int64))

    def __len__(self) -> int:
        return len(self._vertices)

    def __bool__(self) -> bool:
        return bool(self._vertices)

    def __iter__(self) -> Iterator[FrontierEntry]:
        for v, i, d in zip(self._vertices, self._instances, self._depths):
            yield FrontierEntry(v, i, d)

    def __repr__(self) -> str:
        return f"FrontierQueue(size={len(self)})"
