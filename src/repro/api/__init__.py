"""C-SAW core: the bias-centric sampling framework (Sections III and IV).

The public surface mirrors the paper's API (Fig. 2):

* :class:`~repro.api.bias.SamplingProgram` -- the user-facing triple of
  ``vertex_bias`` / ``edge_bias`` / ``update`` functions (vectorised over
  candidate pools) plus pool-policy knobs, corresponding to the paper's
  ``VERTEXBIAS`` / ``EDGEBIAS`` / ``UPDATE``.
* :class:`~repro.api.config.SamplingConfig` -- the parameter-based options
  (``FrontierSize``, ``NeighborSize``, ``Depth``, collision strategy,
  collision detector, replacement, per-vertex vs per-layer selection scope).
* :class:`~repro.api.sampler.GraphSampler` -- the MAIN loop of Fig. 2(b),
  executing on the simulated GPU with warp-centric SELECT.
* :class:`~repro.api.results.SampleResult` -- per-instance sampled edges plus
  the cost/kernel records the metrics and benchmarks consume.
* :class:`~repro.api.frontier.FrontierQueue` -- the (VertexID, InstanceID,
  CurrDepth) queue structure shared with the out-of-memory engine.
"""

from repro.api.bias import (
    SamplingProgram,
    UniformProgram,
    EdgePool,
    SegmentedEdgePool,
    FrontierPoolView,
)
from repro.api.config import SamplingConfig, SelectionScope, PoolPolicy
from repro.api.frontier import FrontierQueue, FrontierEntry
from repro.api.instance import InstanceState, make_instances
from repro.api.requests import SampleRequest, SampleResponse
from repro.api.results import SampleResult, InstanceSample
from repro.api.sampler import GraphSampler, sample_graph
from repro.api.select import warp_select, gather_neighbors, batch_walk_step

__all__ = [
    "SamplingProgram",
    "UniformProgram",
    "EdgePool",
    "SegmentedEdgePool",
    "FrontierPoolView",
    "SamplingConfig",
    "SelectionScope",
    "PoolPolicy",
    "FrontierQueue",
    "FrontierEntry",
    "InstanceState",
    "make_instances",
    "SampleRequest",
    "SampleResponse",
    "SampleResult",
    "InstanceSample",
    "GraphSampler",
    "sample_graph",
    "warp_select",
    "gather_neighbors",
    "batch_walk_step",
]
